//! Shadow-state I/O sanitizer: the dynamic counterpart of `xlint`.
//!
//! Native tooling (ASan, Miri, the race detector) cannot see through a
//! *simulated* block device: to the host allocator a freed block is still
//! perfectly valid memory, and a write slipping past an [`io_barrier`]
//! reorders nothing the OS can observe. `ShadowState` closes that gap by
//! mirroring, per block, the allocation state, pin discipline, and deferred
//! write set that [`Disk`](crate::Disk) is supposed to maintain -- and
//! failing loudly (as [`ExtError::ShadowViolation`]) the moment an operation
//! contradicts the mirror.
//!
//! Checks:
//!
//! - **use-before-alloc** -- a logical read/write of an in-range block that
//!   was never handed out by `alloc_block`.
//! - **read-after-free / write-after-free** -- a logical access to a block
//!   after `free_block`, before any reallocation of the id. The devices
//!   themselves cannot catch this: a freed block id is still in range.
//! - **write-to-pinned-shared** -- a logical write (or exclusive pin) of a
//!   block while a shared [`PinGuard`](crate::PinGuard) on it is alive,
//!   which would mutate bytes a reader holds borrowed.
//! - **write-survived-barrier** -- a deferred write that was queued before an
//!   [`io_barrier`] is still pending after the barrier reported success,
//!   i.e. the scheduler let a write reorder across the barrier.
//! - **budget-frame-leak** -- at pool teardown (when the pool's frame
//!   reservation guard drops), the cache's [`MemoryBudget`] did not return
//!   to its enable-time baseline: frames leaked.
//!
//! The sanitizer is enabled by constructing a `Disk` with the environment
//! variable `NEXSORT_SHADOW=1` set (CI runs the whole test suite that way),
//! or explicitly via [`Disk::enable_shadow`](crate::Disk::enable_shadow).
//! When disabled it costs one `Option` check per logical transfer.
//!
//! [`io_barrier`]: crate::Disk::io_barrier

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};

use crate::budget::MemoryBudget;
use crate::error::{ExtError, Result};

/// Allocation state the sanitizer believes a block to be in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockState {
    /// Handed out by `alloc_block` and not freed since.
    Allocated,
    /// Returned by `free_block`; any access before reallocation is a fault.
    Freed,
}

/// Mirror of the allocation / pin / barrier discipline of one [`Disk`].
///
/// All methods are cheap (`BTreeMap`/`BTreeSet` operations keyed by block
/// id) and deterministic, so enabling the sanitizer never perturbs the
/// simulated I/O schedule -- it only observes it.
///
/// [`Disk`]: crate::Disk
#[derive(Debug)]
pub struct ShadowState {
    /// Blocks below this id existed before the sanitizer attached; their
    /// allocation history is unknown, so they are treated as allocated.
    preexisting: u64,
    state: RefCell<BTreeMap<u64, BlockState>>,
    /// Live shared pin count per block (from [`crate::PinGuard`]).
    shared_pins: RefCell<BTreeMap<u64, usize>>,
    /// Blocks with a live exclusive pin (from [`crate::PinMutGuard`]).
    excl_pins: RefCell<BTreeSet<u64>>,
    /// Blocks with a deferred (write-behind) write that has not yet landed.
    pending: RefCell<BTreeSet<u64>>,
    /// The cache's budget and its `used_frames()` baseline at enable time.
    budget_watch: RefCell<Option<(MemoryBudget, usize)>>,
}

impl ShadowState {
    /// A sanitizer attached to a device that currently has `preexisting`
    /// blocks (their history is unknown and is not checked).
    pub fn new(preexisting: u64) -> Self {
        Self {
            preexisting,
            state: RefCell::new(BTreeMap::new()),
            shared_pins: RefCell::new(BTreeMap::new()),
            excl_pins: RefCell::new(BTreeSet::new()),
            pending: RefCell::new(BTreeSet::new()),
            budget_watch: RefCell::new(None),
        }
    }

    /// Construct only when `NEXSORT_SHADOW=1` is set in the environment.
    pub fn from_env(preexisting: u64) -> Option<Self> {
        if std::env::var_os("NEXSORT_SHADOW").is_some_and(|v| v == "1") {
            Some(Self::new(preexisting))
        } else {
            None
        }
    }

    /// Record a fresh allocation of `id`.
    pub fn note_alloc(&self, id: u64) {
        self.state.borrow_mut().insert(id, BlockState::Allocated);
    }

    /// Record that `id` was freed; its deferred writes were purged with it.
    pub fn note_free(&self, id: u64) {
        self.state.borrow_mut().insert(id, BlockState::Freed);
        self.pending.borrow_mut().remove(&id);
    }

    /// Validate a logical read of `id` on a device with `total` blocks.
    pub fn check_read(&self, id: u64, total: u64) -> Result<()> {
        self.check_state(id, total, "read-after-free", "use-before-alloc")
    }

    /// Validate a logical write of `id`: allocation state plus the pin
    /// discipline (no shared pin may be alive).
    pub fn check_write(&self, id: u64, total: u64) -> Result<()> {
        self.check_state(id, total, "write-after-free", "use-before-alloc")?;
        if self.shared_pins.borrow().get(&id).copied().unwrap_or(0) > 0 {
            return Err(ExtError::ShadowViolation { check: "write-to-pinned-shared", block: id });
        }
        Ok(())
    }

    fn check_state(
        &self,
        id: u64,
        total: u64,
        after_free: &'static str,
        before_alloc: &'static str,
    ) -> Result<()> {
        match self.state.borrow().get(&id) {
            Some(BlockState::Freed) => {
                Err(ExtError::ShadowViolation { check: after_free, block: id })
            }
            Some(BlockState::Allocated) => Ok(()),
            None if id < self.preexisting => Ok(()),
            // In range but never allocated through this disk.
            None if id < total => Err(ExtError::ShadowViolation { check: before_alloc, block: id }),
            // Out of range: the device itself reports `BadBlock`.
            None => Ok(()),
        }
    }

    /// Record a new pin on `id` (`shared` distinguishes `PinGuard` from
    /// `PinMutGuard`).
    pub fn note_pin(&self, id: u64, shared: bool) {
        if shared {
            *self.shared_pins.borrow_mut().entry(id).or_insert(0) += 1;
        } else {
            self.excl_pins.borrow_mut().insert(id);
        }
    }

    /// Record that a pin on `id` was dropped.
    pub fn note_unpin(&self, id: u64, shared: bool) {
        if shared {
            let mut pins = self.shared_pins.borrow_mut();
            if let Some(n) = pins.get_mut(&id) {
                *n -= 1;
                if *n == 0 {
                    pins.remove(&id);
                }
            }
        } else {
            self.excl_pins.borrow_mut().remove(&id);
        }
    }

    /// Record that a write of `id` was parked on the write-behind queue.
    pub fn note_deferred(&self, id: u64) {
        self.pending.borrow_mut().insert(id);
    }

    /// Record that a physical write of `id` reached the device.
    pub fn note_landed(&self, id: u64) {
        self.pending.borrow_mut().remove(&id);
    }

    /// Record that the write-behind queue was discarded wholesale (crash
    /// recovery): the parked writes will never land, by design, so they
    /// must not trip the next barrier check.
    pub fn note_purged(&self) {
        self.pending.borrow_mut().clear();
    }

    /// After an `io_barrier` reports success, no deferred write queued
    /// before it may still be pending.
    pub fn check_barrier(&self) -> Result<()> {
        if let Some(&block) = self.pending.borrow().iter().next() {
            return Err(ExtError::ShadowViolation { check: "write-survived-barrier", block });
        }
        Ok(())
    }

    /// Start watching `budget`: record the baseline `used_frames()` that the
    /// pool teardown must restore.
    pub fn watch_budget(&self, budget: &MemoryBudget) {
        *self.budget_watch.borrow_mut() = Some((budget.clone(), budget.used_frames()));
    }

    /// At pool teardown: the watched budget must be back at its baseline,
    /// otherwise frames reserved against the cache's budget leaked.
    pub fn check_budget_restored(&self) -> Result<()> {
        let mut watch = self.budget_watch.borrow_mut();
        if let Some((budget, baseline)) = watch.take() {
            let used = budget.used_frames();
            if used != baseline {
                return Err(ExtError::ShadowViolation {
                    check: "budget-frame-leak",
                    block: used.abs_diff(baseline) as u64,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violation_check(r: Result<()>) -> &'static str {
        match r {
            Err(ExtError::ShadowViolation { check, .. }) => check,
            other => panic!("expected a shadow violation, got {other:?}"),
        }
    }

    #[test]
    fn alloc_free_lifecycle_is_tracked() {
        let sh = ShadowState::new(0);
        sh.note_alloc(3);
        assert!(sh.check_read(3, 4).is_ok());
        assert!(sh.check_write(3, 4).is_ok());
        sh.note_free(3);
        assert_eq!(violation_check(sh.check_read(3, 4)), "read-after-free");
        assert_eq!(violation_check(sh.check_write(3, 4)), "write-after-free");
        // Reallocation of the id heals it.
        sh.note_alloc(3);
        assert!(sh.check_read(3, 4).is_ok());
    }

    #[test]
    fn in_range_unallocated_blocks_are_use_before_alloc() {
        let sh = ShadowState::new(2);
        // Pre-existing blocks have unknown history: allowed.
        assert!(sh.check_read(0, 8).is_ok());
        assert!(sh.check_read(1, 8).is_ok());
        // In range, never allocated through this disk: flagged.
        assert_eq!(violation_check(sh.check_read(5, 8)), "use-before-alloc");
        // Out of range: left for the device's BadBlock.
        assert!(sh.check_read(9, 8).is_ok());
    }

    #[test]
    fn shared_pins_block_writes_until_released() {
        let sh = ShadowState::new(0);
        sh.note_alloc(1);
        sh.note_pin(1, true);
        sh.note_pin(1, true);
        assert_eq!(violation_check(sh.check_write(1, 2)), "write-to-pinned-shared");
        sh.note_unpin(1, true);
        assert_eq!(violation_check(sh.check_write(1, 2)), "write-to-pinned-shared");
        sh.note_unpin(1, true);
        assert!(sh.check_write(1, 2).is_ok());
        // Exclusive pins do not forbid the owner's writes.
        sh.note_pin(1, false);
        assert!(sh.check_write(1, 2).is_ok());
        sh.note_unpin(1, false);
    }

    #[test]
    fn negative_a_deferred_write_surviving_a_barrier_trips() {
        let sh = ShadowState::new(0);
        sh.note_alloc(5);
        sh.note_deferred(5);
        // A buggy scheduler would report barrier success with the write
        // still parked: the sanitizer refuses.
        assert_eq!(violation_check(sh.check_barrier()), "write-survived-barrier");
        sh.note_landed(5);
        assert!(sh.check_barrier().is_ok());
    }

    #[test]
    fn negative_a_leaked_frame_reservation_trips_the_budget_watch() {
        let budget = MemoryBudget::new(8);
        let sh = ShadowState::new(0);
        sh.watch_budget(&budget);
        let leak = budget.reserve(3).expect("frames available");
        assert_eq!(violation_check(sh.check_budget_restored()), "budget-frame-leak");
        drop(leak);
        // Re-arm and release properly: clean.
        sh.watch_budget(&budget);
        let guard = budget.reserve(3).expect("frames available");
        drop(guard);
        assert!(sh.check_budget_restored().is_ok());
    }

    mod through_the_disk {
        use super::violation_check;
        use crate::budget::MemoryBudget;
        use crate::pool::{CachePolicy, WriteMode};
        use crate::stats::IoCat;
        use crate::Disk;

        #[test]
        fn negative_read_after_free_trips() {
            let disk = Disk::new_mem(64);
            disk.enable_shadow();
            let id = disk.alloc_block();
            disk.write_block(id, &[7u8; 64], IoCat::RunWrite).unwrap();
            disk.free_block(id).unwrap();
            let mut buf = vec![0u8; 64];
            let err = disk.read_block(id, &mut buf, IoCat::RunRead).unwrap_err();
            assert_eq!(violation_check(Err(err)), "read-after-free");
            // Writing the freed block is caught too.
            let err = disk.write_block(id, &buf, IoCat::RunWrite).unwrap_err();
            assert_eq!(violation_check(Err(err)), "write-after-free");
            // Reallocating the id heals it.
            let id2 = disk.alloc_block();
            assert_eq!(id, id2);
            disk.write_block(id2, &buf, IoCat::RunWrite).unwrap();
        }

        #[test]
        fn negative_write_to_shared_pinned_block_trips() {
            let disk = Disk::new_mem(64);
            disk.enable_shadow();
            let budget = MemoryBudget::new(4);
            disk.enable_cache(&budget, 2, CachePolicy::Lru, WriteMode::Through).unwrap();
            let id = disk.alloc_block();
            disk.write_block(id, &[1u8; 64], IoCat::RunWrite).unwrap();
            let pin = disk.pin(id, IoCat::RunRead).unwrap();
            let err = disk.write_block(id, &[2u8; 64], IoCat::RunWrite).unwrap_err();
            assert_eq!(violation_check(Err(err)), "write-to-pinned-shared");
            let err = disk.pin_mut(id, IoCat::RunWrite).unwrap_err();
            assert_eq!(violation_check(Err(err)), "write-to-pinned-shared");
            drop(pin);
            // The pin is gone: the same write is legal again.
            disk.write_block(id, &[2u8; 64], IoCat::RunWrite).unwrap();
            disk.disable_cache().unwrap();
        }

        #[test]
        fn negative_budget_frame_leak_at_pool_teardown_trips() {
            let disk = Disk::new_mem(64);
            disk.enable_shadow();
            let budget = MemoryBudget::new(4);
            disk.enable_cache(&budget, 2, CachePolicy::Lru, WriteMode::Through).unwrap();
            // A reservation against the cache's budget that outlives the
            // pool is a leak the teardown check must catch.
            let leak = budget.reserve(1).expect("frames available");
            let err = disk.disable_cache().unwrap_err();
            assert_eq!(violation_check(Err(err)), "budget-frame-leak");
            drop(leak);
        }

        #[test]
        fn clean_runs_stay_silent_under_the_sanitizer() {
            let disk = Disk::new_mem(64);
            disk.enable_shadow();
            let budget = MemoryBudget::new(4);
            disk.enable_cache(&budget, 2, CachePolicy::Lru, WriteMode::Back).unwrap();
            let a = disk.alloc_block();
            let b = disk.alloc_block();
            disk.write_block(a, &[1u8; 64], IoCat::RunWrite).unwrap();
            disk.write_block(b, &[2u8; 64], IoCat::RunWrite).unwrap();
            let mut buf = vec![0u8; 64];
            disk.read_block(a, &mut buf, IoCat::RunRead).unwrap();
            assert_eq!(buf[0], 1);
            disk.free_block(b).unwrap();
            disk.disable_cache().unwrap();
            assert_eq!(budget.used_frames(), 0);
        }
    }
}
