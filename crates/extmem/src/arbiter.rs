//! Cross-thread arbitration of one global frame budget.
//!
//! [`MemoryBudget`](crate::MemoryBudget) is deliberately single-threaded
//! (`Rc`/`Cell`): it meters one sort's internal memory on one thread. A
//! long-lived server runs *many* sorts on real OS threads, all drawing from
//! the same physical memory, so a second layer sits above the per-job
//! budgets: a [`BudgetArbiter`] owns the machine-wide frame total and hands
//! out [`BudgetLease`]s, one per job. A job seeds its own thread-local
//! `MemoryBudget` from its lease ([`BudgetLease::budget`]) and runs exactly
//! as before; the arbiter only decides *admission* -- when the job may hold
//! those frames at all.
//!
//! # Fairness
//!
//! Grants are strictly FIFO over a deterministic waiter queue. The waiter at
//! the head of the queue blocks every waiter behind it, even when a later,
//! smaller request would fit in the currently-free frames. This costs some
//! utilization but buys the property the server needs under contention:
//! no request -- large or small -- can be starved by a stream of
//! opportunistic competitors, because its position in the queue only ever
//! improves. (First-fit would let small jobs leapfrog a big one forever;
//! biggest-first would let a big job starve the small ones. FIFO starves
//! nobody.)
//!
//! The grant logic itself lives in the lock-free-of-threads [`ArbState`]
//! state machine, so the fairness and accounting invariants are testable
//! deterministically, without spawning threads.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

use crate::budget::MemoryBudget;
use crate::error::{ExtError, Result};

/// The deterministic core: who holds frames, who waits, in what order.
#[derive(Debug)]
struct ArbState {
    total: usize,
    used: usize,
    high_water: usize,
    next_ticket: u64,
    /// FIFO queue of waiting requests: `(ticket, frames)`.
    queue: VecDeque<(u64, usize)>,
}

impl ArbState {
    fn new(total: usize) -> Self {
        Self { total, used: 0, high_water: 0, next_ticket: 0, queue: VecDeque::new() }
    }

    /// Join the waiter queue; returns the ticket that names the request.
    fn enqueue(&mut self, frames: usize) -> u64 {
        let t = self.next_ticket;
        self.next_ticket += 1;
        self.queue.push_back((t, frames));
        t
    }

    /// True when `ticket` is at the head of the queue and its frames fit:
    /// the only state in which a grant is allowed.
    fn grantable(&self, ticket: u64) -> bool {
        match self.queue.front() {
            Some(&(head, frames)) => head == ticket && self.used + frames <= self.total,
            None => false,
        }
    }

    /// Grant the head request (must be [`grantable`](Self::grantable)).
    fn grant_head(&mut self) -> usize {
        let (_, frames) = self.queue.pop_front().unwrap_or((0, 0));
        self.used += frames;
        self.high_water = self.high_water.max(self.used);
        frames
    }

    /// Return `frames` to the pool.
    fn release(&mut self, frames: usize) {
        self.used = self.used.saturating_sub(frames);
    }

    /// Abandon a queued request (a waiter giving up must not wedge the
    /// queue head forever). The blocking [`BudgetArbiter::acquire`] never
    /// gives up, so only tests exercise this today.
    #[cfg(test)]
    fn abandon(&mut self, ticket: u64) {
        self.queue.retain(|&(t, _)| t != ticket);
    }
}

/// A thread-safe, strictly-FIFO arbiter over a global frame total. Cloning
/// shares the arbiter; see the [module docs](self) for the fairness model.
#[derive(Clone, Debug)]
pub struct BudgetArbiter {
    inner: Arc<(Mutex<ArbState>, Condvar)>,
}

impl BudgetArbiter {
    /// An arbiter over `total_frames` globally-shared block frames.
    pub fn new(total_frames: usize) -> Self {
        Self { inner: Arc::new((Mutex::new(ArbState::new(total_frames)), Condvar::new())) }
    }

    /// Total frames under arbitration.
    pub fn total_frames(&self) -> usize {
        self.lock().total
    }

    /// Frames currently leased out.
    pub fn used_frames(&self) -> usize {
        self.lock().used
    }

    /// Frames currently free.
    pub fn free_frames(&self) -> usize {
        let st = self.lock();
        st.total - st.used
    }

    /// Highest simultaneous lease total ever observed. Monotone: it never
    /// decreases over the arbiter's lifetime.
    pub fn high_water_frames(&self) -> usize {
        self.lock().high_water
    }

    /// Requests currently parked in the waiter queue.
    pub fn waiters(&self) -> usize {
        self.lock().queue.len()
    }

    /// Block until `frames` can be leased, in strict arrival order. Fails
    /// immediately (without queueing) only when the request can *never* be
    /// satisfied because it exceeds the arbiter's total.
    pub fn acquire(&self, frames: usize) -> Result<BudgetLease> {
        let (lock, cv) = &*self.inner;
        let mut st = lock.lock().unwrap_or_else(|e| e.into_inner());
        if frames > st.total {
            return Err(ExtError::BudgetExceeded { requested: frames, free: st.total - st.used });
        }
        let ticket = st.enqueue(frames);
        while !st.grantable(ticket) {
            st = cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        let granted = st.grant_head();
        // The next waiter in line may also fit in what remains.
        cv.notify_all();
        Ok(BudgetLease { arbiter: self.clone(), frames: granted })
    }

    /// Lease `frames` only if that is possible *right now* without cutting
    /// the line: the queue must be empty and the frames free. `None` means
    /// "would have to wait".
    pub fn try_acquire(&self, frames: usize) -> Option<BudgetLease> {
        let mut st = self.lock();
        if frames > st.total || !st.queue.is_empty() || st.used + frames > st.total {
            return None;
        }
        st.used += frames;
        st.high_water = st.high_water.max(st.used);
        Some(BudgetLease { arbiter: self.clone(), frames })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ArbState> {
        self.inner.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// An exclusive lease of frames from a [`BudgetArbiter`]; dropping it
/// returns the frames and wakes the queue head.
#[derive(Debug)]
pub struct BudgetLease {
    arbiter: BudgetArbiter,
    frames: usize,
}

impl BudgetLease {
    /// Number of frames held.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// A fresh single-threaded [`MemoryBudget`] of exactly the leased size,
    /// for the job that owns this lease to meter its own structures with.
    pub fn budget(&self) -> MemoryBudget {
        MemoryBudget::new(self.frames)
    }
}

impl Drop for BudgetLease {
    fn drop(&mut self) {
        let (lock, cv) = &*self.arbiter.inner;
        let mut st = lock.lock().unwrap_or_else(|e| e.into_inner());
        st.release(self.frames);
        drop(st);
        cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn grants_in_fifo_order_even_when_later_requests_fit() {
        let mut st = ArbState::new(10);
        let a = st.enqueue(8);
        assert!(st.grantable(a));
        assert_eq!(st.grant_head(), 8);
        let big = st.enqueue(8); // cannot fit while `a` holds 8
        let small = st.enqueue(1); // would fit, but is behind `big`
        assert!(!st.grantable(big));
        assert!(!st.grantable(small), "FIFO: the small request must not leapfrog");
        st.release(8);
        assert!(st.grantable(big), "head goes first once frames free up");
        assert!(!st.grantable(small));
        assert_eq!(st.grant_head(), 8);
        st.release(8);
        assert!(st.grantable(small));
    }

    #[test]
    fn abandon_unwedges_the_queue() {
        let mut st = ArbState::new(4);
        st.enqueue(4);
        st.grant_head();
        let stuck = st.enqueue(4);
        let behind = st.enqueue(2);
        st.release(4);
        assert!(st.grantable(stuck));
        st.abandon(stuck);
        assert!(st.grantable(behind), "abandoning the head promotes the next waiter");
    }

    #[test]
    fn over_total_requests_fail_fast() {
        let arb = BudgetArbiter::new(4);
        match arb.acquire(5) {
            Err(ExtError::BudgetExceeded { requested, free }) => {
                assert_eq!((requested, free), (5, 4));
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
        assert_eq!(arb.waiters(), 0, "an impossible request never queues");
    }

    #[test]
    fn try_acquire_never_cuts_the_line() {
        let arb = BudgetArbiter::new(4);
        let hold = arb.acquire(3).unwrap();
        assert!(arb.try_acquire(2).is_none(), "does not fit");
        let one = arb.try_acquire(1).expect("fits, queue empty");
        drop(one);
        drop(hold);
        assert_eq!(arb.used_frames(), 0);
        assert_eq!(arb.high_water_frames(), 4);
    }

    #[test]
    fn contended_threads_settle_to_zero_used() {
        let arb = BudgetArbiter::new(8);
        let mut handles = Vec::new();
        for i in 0..6 {
            let a = arb.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    let lease = a.acquire(1 + i % 4).unwrap();
                    assert!(lease.frames() <= 8);
                    std::hint::black_box(&lease);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(arb.used_frames(), 0);
        assert_eq!(arb.waiters(), 0);
        assert!(arb.high_water_frames() <= 8, "never over-committed");
    }

    #[test]
    fn lease_budget_is_sized_to_the_lease() {
        let arb = BudgetArbiter::new(16);
        let lease = arb.acquire(5).unwrap();
        let b = lease.budget();
        assert_eq!(b.total_frames(), 5);
        assert!(b.reserve(5).is_ok());
    }

    proptest! {
        /// Deterministic no-starvation sweep: for any interleaving of
        /// requests and releases, (1) grants happen in strict arrival
        /// order, (2) every request is eventually granted once enough
        /// frames free up (nobody starves), (3) usage never exceeds the
        /// total, and (4) the high-water mark is monotone and equal to the
        /// max usage observed.
        #[test]
        fn fifo_no_starvation_and_monotone_high_water(
            total in 1usize..12,
            ops in proptest::collection::vec((0usize..6, 1usize..12), 1..40),
        ) {
            let mut st = ArbState::new(total);
            let mut held: Vec<(u64, usize)> = Vec::new(); // granted, not yet released
            let mut granted_order: Vec<u64> = Vec::new();
            let mut last_high = 0usize;
            let mut max_used = 0usize;
            for (op, n) in ops {
                if op < 4 {
                    // Request `n` frames (clamped to the total so it is
                    // satisfiable; impossible requests are rejected before
                    // queueing in the real API).
                    st.enqueue(n.min(total).max(1));
                } else if let Some((t, frames)) = held.pop() {
                    let _ = t;
                    st.release(frames);
                }
                // Drain every grant that is now legal; the sync wrapper
                // does exactly this after each release.
                while let Some(&(head, frames)) = st.queue.front() {
                    if !st.grantable(head) {
                        break;
                    }
                    st.grant_head();
                    held.push((head, frames));
                    granted_order.push(head);
                }
                prop_assert!(st.used <= st.total, "over-committed: {} > {}", st.used, st.total);
                prop_assert!(st.high_water >= last_high, "high water regressed");
                last_high = st.high_water;
                max_used = max_used.max(st.used);
            }
            // (1) FIFO: tickets were granted in strictly increasing order.
            prop_assert!(granted_order.windows(2).all(|w| w[0] < w[1]),
                "grants out of arrival order: {granted_order:?}");
            // (2) no starvation: release everything and the queue drains.
            for (_, frames) in held.drain(..) {
                st.release(frames);
            }
            while let Some(&(head, frames)) = st.queue.front() {
                prop_assert!(st.grantable(head), "queue wedged with all frames free");
                st.grant_head();
                granted_order.push(head);
                st.release(frames);
            }
            prop_assert!(st.queue.is_empty());
            // (4) high water equals the maximum simultaneous usage seen.
            prop_assert!(st.high_water >= max_used);
        }
    }
}
