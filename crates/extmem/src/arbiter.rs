//! Cross-thread arbitration of one global frame budget.
//!
//! [`MemoryBudget`](crate::MemoryBudget) is deliberately single-threaded
//! (`Rc`/`Cell`): it meters one sort's internal memory on one thread. A
//! long-lived server runs *many* sorts on real OS threads, all drawing from
//! the same physical memory, so a second layer sits above the per-job
//! budgets: a [`BudgetArbiter`] owns the machine-wide frame total and hands
//! out [`BudgetLease`]s, one per job. A job seeds its own thread-local
//! `MemoryBudget` from its lease ([`BudgetLease::budget`]) and runs exactly
//! as before; the arbiter only decides *admission* -- when the job may hold
//! those frames at all.
//!
//! # Fairness
//!
//! Grants are strictly FIFO over a deterministic waiter queue. The waiter at
//! the head of the queue blocks every waiter behind it, even when a later,
//! smaller request would fit in the currently-free frames. This costs some
//! utilization but buys the property the server needs under contention:
//! no request -- large or small -- can be starved by a stream of
//! opportunistic competitors, because its position in the queue only ever
//! improves. (First-fit would let small jobs leapfrog a big one forever;
//! biggest-first would let a big job starve the small ones. FIFO starves
//! nobody.)
//!
//! Strict FIFO has one loophole a shared server cares about: a single
//! *tenant* can keep the queue saturated with its own jobs and make every
//! other tenant wait behind its backlog. An optional per-tenant cap closes
//! it ([`BudgetArbiter::set_tenant_cap`]): a tenant already holding `cap`
//! outstanding leases becomes temporarily *ineligible*, and the grant rule
//! changes from "head of the queue" to "first **eligible** request in the
//! queue" -- still FIFO among eligible requests, so nobody leapfrogs anyone
//! who is allowed to run. An ineligible request keeps its queue position
//! and becomes eligible again the moment one of its tenant's own leases
//! releases, so it cannot starve either. Untagged requests (no tenant) are
//! always eligible. A cap of 0 disables the mechanism entirely and the
//! arbiter behaves exactly as before.
//!
//! The grant logic itself lives in the lock-free-of-threads [`ArbState`]
//! state machine, so the fairness and accounting invariants are testable
//! deterministically, without spawning threads.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use crate::locksan::{self, TrackedCondvar, TrackedGuard, TrackedMutex};

use crate::budget::MemoryBudget;
use crate::error::{ExtError, Result};

/// One queued request.
#[derive(Debug, Clone)]
struct Waiter {
    ticket: u64,
    frames: usize,
    tenant: Option<String>,
}

/// The deterministic core: who holds frames, who waits, in what order.
#[derive(Debug)]
struct ArbState {
    total: usize,
    used: usize,
    high_water: usize,
    next_ticket: u64,
    /// FIFO queue of waiting requests.
    queue: VecDeque<Waiter>,
    /// Max outstanding leases per tenant; 0 disables the cap.
    tenant_cap: usize,
    /// Outstanding lease count per tenant (entries removed at zero).
    outstanding: HashMap<String, usize>,
}

impl ArbState {
    fn new(total: usize) -> Self {
        Self {
            total,
            used: 0,
            high_water: 0,
            next_ticket: 0,
            queue: VecDeque::new(),
            tenant_cap: 0,
            outstanding: HashMap::new(),
        }
    }

    /// Join the waiter queue; returns the ticket that names the request.
    #[cfg(test)]
    fn enqueue(&mut self, frames: usize) -> u64 {
        self.enqueue_as(frames, None)
    }

    /// Join the waiter queue on behalf of `tenant`.
    fn enqueue_as(&mut self, frames: usize, tenant: Option<&str>) -> u64 {
        let t = self.next_ticket;
        self.next_ticket += 1;
        self.queue.push_back(Waiter { ticket: t, frames, tenant: tenant.map(str::to_owned) });
        t
    }

    /// A request is *eligible* unless its tenant is at the outstanding-lease
    /// cap. Untagged requests and a cap of 0 are always eligible.
    fn eligible(&self, w: &Waiter) -> bool {
        if self.tenant_cap == 0 {
            return true;
        }
        match &w.tenant {
            None => true,
            Some(t) => self.outstanding.get(t).copied().unwrap_or(0) < self.tenant_cap,
        }
    }

    /// The first eligible waiter in arrival order, if any.
    fn first_eligible(&self) -> Option<&Waiter> {
        self.queue.iter().find(|w| self.eligible(w))
    }

    /// True when `ticket` is the first *eligible* request in the queue and
    /// its frames fit: the only state in which a grant is allowed. With no
    /// tenant cap this degenerates to "head of the queue".
    fn grantable(&self, ticket: u64) -> bool {
        match self.first_eligible() {
            Some(w) => w.ticket == ticket && self.used + w.frames <= self.total,
            None => false,
        }
    }

    /// Grant `ticket` (must be [`grantable`](Self::grantable)); returns the
    /// granted waiter, or `None` for a ticket that is not queued.
    fn grant(&mut self, ticket: u64) -> Option<Waiter> {
        let pos = self.queue.iter().position(|w| w.ticket == ticket)?;
        let w = self.queue.remove(pos)?;
        self.used += w.frames;
        self.high_water = self.high_water.max(self.used);
        if let Some(t) = &w.tenant {
            *self.outstanding.entry(t.clone()).or_insert(0) += 1;
        }
        Some(w)
    }

    /// Return `frames` to the pool, crediting `tenant`'s outstanding count.
    fn release(&mut self, frames: usize, tenant: Option<&str>) {
        self.used = self.used.saturating_sub(frames);
        if let Some(t) = tenant {
            if let Some(n) = self.outstanding.get_mut(t) {
                *n = n.saturating_sub(1);
                if *n == 0 {
                    self.outstanding.remove(t);
                }
            }
        }
    }

    /// Abandon a queued request (a waiter giving up must not wedge the
    /// queue head forever). The blocking [`BudgetArbiter::acquire`] never
    /// gives up, so only tests exercise this today.
    #[cfg(test)]
    fn abandon(&mut self, ticket: u64) {
        self.queue.retain(|w| w.ticket != ticket);
    }
}

/// A thread-safe, strictly-FIFO arbiter over a global frame total. Cloning
/// shares the arbiter; see the [module docs](self) for the fairness model.
#[derive(Clone, Debug)]
pub struct BudgetArbiter {
    inner: Arc<(TrackedMutex<ArbState>, TrackedCondvar)>,
}

impl BudgetArbiter {
    /// An arbiter over `total_frames` globally-shared block frames.
    pub fn new(total_frames: usize) -> Self {
        Self {
            inner: Arc::new((
                TrackedMutex::new("arbiter.state", ArbState::new(total_frames)),
                TrackedCondvar::new(),
            )),
        }
    }

    /// Total frames under arbitration.
    pub fn total_frames(&self) -> usize {
        self.lock_state().total
    }

    /// Frames currently leased out.
    pub fn used_frames(&self) -> usize {
        self.lock_state().used
    }

    /// Frames currently free.
    pub fn free_frames(&self) -> usize {
        let st = self.lock_state();
        st.total - st.used
    }

    /// Highest simultaneous lease total ever observed. Monotone: it never
    /// decreases over the arbiter's lifetime.
    pub fn high_water_frames(&self) -> usize {
        self.lock_state().high_water
    }

    /// Requests currently parked in the waiter queue.
    pub fn waiters(&self) -> usize {
        self.lock_state().queue.len()
    }

    /// Cap the number of leases any single tenant may hold at once; 0
    /// (the default) disables the cap. See the [module docs](self).
    pub fn set_tenant_cap(&self, cap: usize) {
        self.lock_state().tenant_cap = cap;
        self.inner.1.notify_all();
    }

    /// Outstanding leases currently held by `tenant`.
    pub fn tenant_outstanding(&self, tenant: &str) -> usize {
        self.lock_state().outstanding.get(tenant).copied().unwrap_or(0)
    }

    /// Block until `frames` can be leased, in strict arrival order. Fails
    /// immediately (without queueing) only when the request can *never* be
    /// satisfied because it exceeds the arbiter's total.
    pub fn acquire(&self, frames: usize) -> Result<BudgetLease> {
        self.acquire_as(frames, None)
    }

    /// [`acquire`](Self::acquire) on behalf of `tenant`: the request counts
    /// against the per-tenant outstanding-lease cap, and waits (without
    /// blocking other tenants) while its tenant is at the cap.
    pub fn acquire_as(&self, frames: usize, tenant: Option<&str>) -> Result<BudgetLease> {
        let cv = &self.inner.1;
        let mut st = self.lock_state();
        if frames > st.total {
            return Err(ExtError::BudgetExceeded { requested: frames, free: st.total - st.used });
        }
        let ticket = st.enqueue_as(frames, tenant);
        while !st.grantable(ticket) {
            st = cv.wait(st);
        }
        let Some(w) = st.grant(ticket) else {
            // Unreachable (a grantable ticket is queued), but a lost ticket
            // must surface as a refusal rather than a panic.
            return Err(ExtError::BudgetExceeded { requested: frames, free: st.total - st.used });
        };
        // The next eligible waiter may also fit in what remains.
        cv.notify_all();
        Ok(BudgetLease { arbiter: self.clone(), frames: w.frames, tenant: w.tenant })
    }

    /// Lease `frames` only if that is possible *right now* without cutting
    /// the line: the queue must be empty and the frames free. `None` means
    /// "would have to wait".
    pub fn try_acquire(&self, frames: usize) -> Option<BudgetLease> {
        let mut st = self.lock_state();
        if frames > st.total || !st.queue.is_empty() || st.used + frames > st.total {
            return None;
        }
        st.used += frames;
        st.high_water = st.high_water.max(st.used);
        Some(BudgetLease { arbiter: self.clone(), frames, tenant: None })
    }

    /// The single acquisition choke point for the arbiter lock: every
    /// mutation of [`ArbState`] goes through here, which is what lets the
    /// static checker (xlint R11-R14) and the runtime sanitizer identify
    /// arbiter critical sections.
    fn lock_state(&self) -> TrackedGuard<'_, ArbState> {
        let st = self.inner.0.lock();
        locksan::access("arbiter.state");
        st
    }
}

/// An exclusive lease of frames from a [`BudgetArbiter`]; dropping it
/// returns the frames and wakes the queue head.
#[derive(Debug)]
pub struct BudgetLease {
    arbiter: BudgetArbiter,
    frames: usize,
    tenant: Option<String>,
}

impl BudgetLease {
    /// Number of frames held.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// A fresh single-threaded [`MemoryBudget`] of exactly the leased size,
    /// for the job that owns this lease to meter its own structures with.
    pub fn budget(&self) -> MemoryBudget {
        MemoryBudget::new(self.frames)
    }

    /// The tenant this lease is charged to, if any.
    pub fn tenant(&self) -> Option<&str> {
        self.tenant.as_deref()
    }
}

impl Drop for BudgetLease {
    fn drop(&mut self) {
        let mut st = self.arbiter.lock_state();
        st.release(self.frames, self.tenant.as_deref());
        drop(st);
        self.arbiter.inner.1.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn grants_in_fifo_order_even_when_later_requests_fit() {
        let mut st = ArbState::new(10);
        let a = st.enqueue(8);
        assert!(st.grantable(a));
        assert_eq!(st.grant(a).unwrap().frames, 8);
        let big = st.enqueue(8); // cannot fit while `a` holds 8
        let small = st.enqueue(1); // would fit, but is behind `big`
        assert!(!st.grantable(big));
        assert!(!st.grantable(small), "FIFO: the small request must not leapfrog");
        st.release(8, None);
        assert!(st.grantable(big), "head goes first once frames free up");
        assert!(!st.grantable(small));
        assert_eq!(st.grant(big).unwrap().frames, 8);
        st.release(8, None);
        assert!(st.grantable(small));
    }

    #[test]
    fn abandon_unwedges_the_queue() {
        let mut st = ArbState::new(4);
        let first = st.enqueue(4);
        st.grant(first).unwrap();
        let stuck = st.enqueue(4);
        let behind = st.enqueue(2);
        st.release(4, None);
        assert!(st.grantable(stuck));
        st.abandon(stuck);
        assert!(st.grantable(behind), "abandoning the head promotes the next waiter");
    }

    #[test]
    fn capped_tenant_steps_aside_and_resumes_in_place() {
        let mut st = ArbState::new(10);
        st.tenant_cap = 1;
        let g1 = st.enqueue_as(2, Some("greedy"));
        assert!(st.grantable(g1));
        st.grant(g1).unwrap();
        let g2 = st.enqueue_as(2, Some("greedy")); // at the cap now
        let meek = st.enqueue_as(2, Some("meek"));
        assert!(!st.grantable(g2), "tenant at its cap is ineligible");
        assert!(st.grantable(meek), "first eligible request wins, not the head");
        st.grant(meek).unwrap();
        // Greedy's first lease releases: its queued request becomes
        // eligible again at its original position.
        st.release(2, Some("greedy"));
        assert!(st.grantable(g2));
    }

    #[test]
    fn over_total_requests_fail_fast() {
        let arb = BudgetArbiter::new(4);
        match arb.acquire(5) {
            Err(ExtError::BudgetExceeded { requested, free }) => {
                assert_eq!((requested, free), (5, 4));
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
        assert_eq!(arb.waiters(), 0, "an impossible request never queues");
    }

    #[test]
    fn try_acquire_never_cuts_the_line() {
        let arb = BudgetArbiter::new(4);
        let hold = arb.acquire(3).unwrap();
        assert!(arb.try_acquire(2).is_none(), "does not fit");
        let one = arb.try_acquire(1).expect("fits, queue empty");
        drop(one);
        drop(hold);
        assert_eq!(arb.used_frames(), 0);
        assert_eq!(arb.high_water_frames(), 4);
    }

    #[test]
    fn contended_threads_settle_to_zero_used() {
        let arb = BudgetArbiter::new(8);
        let mut handles = Vec::new();
        for i in 0..6 {
            let a = arb.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    let lease = a.acquire(1 + i % 4).unwrap();
                    assert!(lease.frames() <= 8);
                    std::hint::black_box(&lease);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(arb.used_frames(), 0);
        assert_eq!(arb.waiters(), 0);
        assert!(arb.high_water_frames() <= 8, "never over-committed");
    }

    #[test]
    fn lease_budget_is_sized_to_the_lease() {
        let arb = BudgetArbiter::new(16);
        let lease = arb.acquire(5).unwrap();
        let b = lease.budget();
        assert_eq!(b.total_frames(), 5);
        assert!(b.reserve(5).is_ok());
    }

    proptest! {
        /// Deterministic no-starvation sweep: for any interleaving of
        /// requests and releases, (1) grants happen in strict arrival
        /// order, (2) every request is eventually granted once enough
        /// frames free up (nobody starves), (3) usage never exceeds the
        /// total, and (4) the high-water mark is monotone and equal to the
        /// max usage observed.
        #[test]
        fn fifo_no_starvation_and_monotone_high_water(
            total in 1usize..12,
            ops in proptest::collection::vec((0usize..6, 1usize..12), 1..40),
        ) {
            let mut st = ArbState::new(total);
            let mut held: Vec<(u64, usize)> = Vec::new(); // granted, not yet released
            let mut granted_order: Vec<u64> = Vec::new();
            let mut last_high = 0usize;
            let mut max_used = 0usize;
            for (op, n) in ops {
                if op < 4 {
                    // Request `n` frames (clamped to the total so it is
                    // satisfiable; impossible requests are rejected before
                    // queueing in the real API).
                    st.enqueue(n.min(total).max(1));
                } else if let Some((t, frames)) = held.pop() {
                    let _ = t;
                    st.release(frames, None);
                }
                // Drain every grant that is now legal; the sync wrapper
                // does exactly this after each release.
                while let Some(w) = st.queue.front().cloned() {
                    if !st.grantable(w.ticket) {
                        break;
                    }
                    st.grant(w.ticket).unwrap();
                    held.push((w.ticket, w.frames));
                    granted_order.push(w.ticket);
                }
                prop_assert!(st.used <= st.total, "over-committed: {} > {}", st.used, st.total);
                prop_assert!(st.high_water >= last_high, "high water regressed");
                last_high = st.high_water;
                max_used = max_used.max(st.used);
            }
            // (1) FIFO: tickets were granted in strictly increasing order.
            prop_assert!(granted_order.windows(2).all(|w| w[0] < w[1]),
                "grants out of arrival order: {granted_order:?}");
            // (2) no starvation: release everything and the queue drains.
            for (_, frames) in held.drain(..) {
                st.release(frames, None);
            }
            while let Some(w) = st.queue.front().cloned() {
                prop_assert!(st.grantable(w.ticket), "queue wedged with all frames free");
                st.grant(w.ticket).unwrap();
                granted_order.push(w.ticket);
                st.release(w.frames, None);
            }
            prop_assert!(st.queue.is_empty());
            // (4) high water equals the maximum simultaneous usage seen.
            prop_assert!(st.high_water >= max_used);
        }

        /// One greedy tenant floods the queue ahead of everyone else and
        /// never releases voluntarily. With a tenant cap in force, every
        /// other tenant's request must still be granted -- the greedy
        /// backlog parks at the cap instead of walling off the queue.
        #[test]
        fn greedy_tenant_cannot_starve_others(
            total in 3usize..12,
            cap in 1usize..3,
            backlog in 4usize..30,
            others in 1usize..4,
        ) {
            let mut st = ArbState::new(total);
            st.tenant_cap = cap;
            // The greedy tenant's flood arrives first...
            let flood: Vec<u64> =
                (0..backlog).map(|_| st.enqueue_as(1, Some("greedy"))).collect();
            // ...then one request per well-behaved tenant.
            let meek: Vec<u64> = (0..others)
                .map(|i| st.enqueue_as(1, Some(&format!("tenant-{i}"))))
                .collect();
            // Drain grants exactly like the sync wrapper; nobody releases.
            let mut granted: Vec<u64> = Vec::new();
            while let Some(t) = st.first_eligible().map(|w| w.ticket) {
                if !st.grantable(t) {
                    break; // out of frames
                }
                st.grant(t).unwrap();
                granted.push(t);
            }
            // The greedy tenant holds exactly its cap (frames permitting)...
            let greedy_granted = flood.iter().filter(|t| granted.contains(t)).count();
            prop_assert_eq!(greedy_granted, cap.min(total));
            // ...and every other tenant that fits in the remaining frames
            // was served despite arriving behind the whole flood.
            let meek_granted = meek.iter().filter(|t| granted.contains(t)).count();
            prop_assert_eq!(meek_granted, others.min(total - cap.min(total)));
            prop_assert!(st.used <= st.total);
        }
    }
}
