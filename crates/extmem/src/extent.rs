//! Extents: byte sequences laid out over device blocks, with forward,
//! backward, and append cursors.
//!
//! An [`Extent`] is the unit of on-disk storage for everything in the system:
//! the input document, sorted runs, merge scratch, and the backing store of
//! the external stacks. Cursors hold exactly one internal-memory block frame
//! (reserved from the [`MemoryBudget`]) and count one block transfer each
//! time the frame is refilled or flushed, so a sequential pass over an extent
//! of `L` bytes costs exactly `ceil(L / B)` I/Os -- the unit the paper's
//! analysis is written in. Those are *logical* I/Os: with a buffer pool
//! enabled on the [`Disk`], a re-scan of a recently written or read extent
//! can be served from resident frames at zero physical transfers, without
//! changing the `ceil(L / B)` logical count.

use std::rc::Rc;

use crate::budget::{FrameGuard, MemoryBudget};
use crate::device::Disk;
use crate::error::{ExtError, Result};
use crate::stats::IoCat;

/// A byte sequence stored across whole device blocks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Extent {
    blocks: Vec<u64>,
    len: u64,
}

impl Extent {
    /// An empty extent occupying no blocks.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if the extent holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of device blocks backing the extent.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The block ids, in order.
    pub fn blocks(&self) -> &[u64] {
        &self.blocks
    }

    pub(crate) fn set_raw(&mut self, blocks: Vec<u64>, len: u64) {
        self.blocks = blocks;
        self.len = len;
    }

    /// Assemble an extent from raw parts (`blocks` in order plus the byte
    /// length): `ExtStack::range_extent` internally, and reattachment from a
    /// persisted job manifest after a daemon restart. The caller vouches
    /// that the blocks are live on the target disk.
    pub fn from_raw(blocks: Vec<u64>, len: u64) -> Self {
        let mut ext = Self::empty();
        ext.set_raw(blocks, len);
        ext
    }

    /// Swap the block at `idx` for `block` -- the extent's length and layout
    /// are unchanged; only the backing device block moves. Used by the repair
    /// path to relocate a run block off a quarantined sector.
    pub(crate) fn replace_block(&mut self, idx: usize, block: u64) {
        self.blocks[idx] = block;
    }

    /// Return all blocks to the device allocator. The extent becomes empty.
    pub fn free(&mut self, disk: &Disk) -> Result<()> {
        for &b in &self.blocks {
            disk.free_block(b)?;
        }
        self.blocks.clear();
        self.len = 0;
        Ok(())
    }
}

/// Minimal byte-source abstraction so record codecs can run over extents,
/// stack ranges, and in-memory slices alike.
pub trait ByteReader {
    /// Fill `buf` completely or fail with `UnexpectedEof`.
    fn read_exact(&mut self, buf: &mut [u8]) -> Result<()>;
    /// Bytes left to read.
    fn remaining(&self) -> u64;

    /// Read a single byte.
    fn read_u8(&mut self) -> Result<u8> {
        let mut b = [0u8; 1];
        self.read_exact(&mut b)?;
        Ok(b[0])
    }

    /// Read a little-endian `u32`.
    fn read_u32(&mut self) -> Result<u32> {
        let mut b = [0u8; 4];
        self.read_exact(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Read a little-endian `u64`.
    fn read_u64(&mut self) -> Result<u64> {
        let mut b = [0u8; 8];
        self.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }
}

impl<R: ByteReader + ?Sized> ByteReader for &mut R {
    fn read_exact(&mut self, buf: &mut [u8]) -> Result<()> {
        (**self).read_exact(buf)
    }

    fn remaining(&self) -> u64 {
        (**self).remaining()
    }
}

/// Minimal byte-sink abstraction, mirror of [`ByteReader`].
pub trait ByteSink {
    /// Append all of `buf`.
    fn write_all(&mut self, buf: &[u8]) -> Result<()>;

    /// Append a single byte.
    fn write_u8(&mut self, v: u8) -> Result<()> {
        self.write_all(&[v])
    }

    /// Append a little-endian `u32`.
    fn write_u32(&mut self, v: u32) -> Result<()> {
        self.write_all(&v.to_le_bytes())
    }

    /// Append a little-endian `u64`.
    fn write_u64(&mut self, v: u64) -> Result<()> {
        self.write_all(&v.to_le_bytes())
    }
}

impl ByteSink for Vec<u8> {
    fn write_all(&mut self, buf: &[u8]) -> Result<()> {
        self.extend_from_slice(buf);
        Ok(())
    }
}

/// A [`ByteReader`] over an in-memory slice.
pub struct SliceReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> SliceReader<'a> {
    /// Read from the start of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }
}

impl ByteReader for SliceReader<'_> {
    fn read_exact(&mut self, buf: &mut [u8]) -> Result<()> {
        let available = self.data.len() - self.pos;
        if buf.len() > available {
            return Err(ExtError::UnexpectedEof { wanted: buf.len(), available });
        }
        buf.copy_from_slice(&self.data[self.pos..self.pos + buf.len()]);
        self.pos += buf.len();
        Ok(())
    }

    fn remaining(&self) -> u64 {
        (self.data.len() - self.pos) as u64
    }
}

/// Append-only writer building an [`Extent`], holding one block frame.
pub struct ExtentWriter {
    disk: Rc<Disk>,
    cat: IoCat,
    _frame: FrameGuard,
    buf: Vec<u8>,
    blocks: Vec<u64>,
    len: u64,
}

impl ExtentWriter {
    /// Start a new extent; charges writes to `cat`; pins one frame.
    pub fn new(disk: Rc<Disk>, budget: &MemoryBudget, cat: IoCat) -> Result<Self> {
        let frame = budget.reserve(1)?;
        let bs = disk.block_size();
        Ok(Self {
            disk,
            cat,
            _frame: frame,
            buf: Vec::with_capacity(bs),
            blocks: Vec::new(),
            len: 0,
        })
    }

    /// Bytes written so far.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn flush_block(&mut self) -> Result<()> {
        let id = self.disk.alloc_block();
        self.disk.write_block(id, &self.buf, self.cat)?;
        self.blocks.push(id);
        self.buf.clear();
        Ok(())
    }

    /// Flush any partial block and return the finished extent.
    pub fn finish(mut self) -> Result<Extent> {
        if !self.buf.is_empty() {
            self.flush_block()?;
        }
        Ok(Extent { blocks: std::mem::take(&mut self.blocks), len: self.len })
    }
}

impl ByteSink for ExtentWriter {
    fn write_all(&mut self, mut buf: &[u8]) -> Result<()> {
        let bs = self.disk.block_size();
        while !buf.is_empty() {
            let space = bs - self.buf.len();
            let take = space.min(buf.len());
            self.buf.extend_from_slice(&buf[..take]);
            self.len += take as u64;
            buf = &buf[take..];
            if self.buf.len() == bs {
                self.flush_block()?;
            }
        }
        Ok(())
    }
}

/// Forward cursor over an extent, holding one block frame; supports seeking.
pub struct ExtentReader {
    disk: Rc<Disk>,
    cat: IoCat,
    _frame: FrameGuard,
    blocks: Vec<u64>,
    len: u64,
    pos: u64,
    frame: Vec<u8>,
    loaded: Option<usize>,
}

impl ExtentReader {
    /// Read `extent` from the start; charges reads to `cat`; pins one frame.
    pub fn new(disk: Rc<Disk>, budget: &MemoryBudget, extent: &Extent, cat: IoCat) -> Result<Self> {
        let frame = budget.reserve(1)?;
        let bs = disk.block_size();
        Ok(Self {
            disk,
            cat,
            _frame: frame,
            blocks: extent.blocks.clone(),
            len: extent.len,
            pos: 0,
            frame: vec![0u8; bs],
            loaded: None,
        })
    }

    /// Current byte offset.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Total byte length of the extent.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if the extent is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Jump to an absolute offset. Costs nothing until the next read.
    pub fn seek(&mut self, pos: u64) {
        debug_assert!(pos <= self.len);
        self.pos = pos;
    }

    fn load(&mut self, block_idx: usize) -> Result<()> {
        if self.loaded != Some(block_idx) {
            let prev = self.loaded;
            self.disk.read_block(self.blocks[block_idx], &mut self.frame, self.cat)?;
            self.loaded = Some(block_idx);
            // Sequential scans (each load one block past the previous, from
            // the extent's start) trigger read-ahead of the next window into
            // the buffer pool. Issued after the synchronous read so the
            // physical order -- and the fault layer's op indexing -- of the
            // demand path is unchanged. Seek-driven random access never
            // prefetches.
            let sequential = match prev {
                Some(p) => p + 1 == block_idx,
                None => block_idx == 0,
            };
            if sequential {
                let depth = self.disk.prefetch_depth();
                if depth > 0 {
                    let end = (block_idx + 1 + depth).min(self.blocks.len());
                    self.disk.prefetch(&self.blocks[block_idx + 1..end], self.cat);
                }
            }
        }
        Ok(())
    }
}

impl ByteReader for ExtentReader {
    fn read_exact(&mut self, buf: &mut [u8]) -> Result<()> {
        let available = (self.len - self.pos) as usize;
        if buf.len() > available {
            return Err(ExtError::UnexpectedEof { wanted: buf.len(), available });
        }
        let bs = self.disk.block_size() as u64;
        let mut filled = 0;
        while filled < buf.len() {
            let block_idx = (self.pos / bs) as usize;
            let off = (self.pos % bs) as usize;
            self.load(block_idx)?;
            let take = (bs as usize - off).min(buf.len() - filled);
            buf[filled..filled + take].copy_from_slice(&self.frame[off..off + take]);
            filled += take;
            self.pos += take as u64;
        }
        Ok(())
    }

    fn remaining(&self) -> u64 {
        self.len - self.pos
    }
}

/// Backward cursor over an extent: reads ranges that *end* at the cursor.
///
/// Used by the stream-reversal pre-pass that resolves end-of-element sort
/// keys before an external subtree sort (see `nexsort::subtree`). A full
/// backward pass costs `ceil(L / B)` reads, same as a forward pass.
pub struct ExtentRevCursor {
    disk: Rc<Disk>,
    cat: IoCat,
    _frame: FrameGuard,
    blocks: Vec<u64>,
    pos: u64,
    frame: Vec<u8>,
    loaded: Option<usize>,
}

impl ExtentRevCursor {
    /// Position the cursor at the end of `extent`.
    pub fn new(disk: Rc<Disk>, budget: &MemoryBudget, extent: &Extent, cat: IoCat) -> Result<Self> {
        let frame = budget.reserve(1)?;
        let bs = disk.block_size();
        Ok(Self {
            disk,
            cat,
            _frame: frame,
            blocks: extent.blocks.clone(),
            pos: extent.len,
            frame: vec![0u8; bs],
            loaded: None,
        })
    }

    /// Bytes remaining before the cursor (i.e. still readable).
    pub fn remaining(&self) -> u64 {
        self.pos
    }

    /// Reposition the cursor at an absolute offset (it will read the bytes
    /// *before* `pos`). Costs nothing until the next read.
    pub fn seek_to(&mut self, pos: u64) {
        self.pos = pos;
    }

    fn load(&mut self, block_idx: usize) -> Result<()> {
        if self.loaded != Some(block_idx) {
            self.disk.read_block(self.blocks[block_idx], &mut self.frame, self.cat)?;
            self.loaded = Some(block_idx);
        }
        Ok(())
    }

    /// Read the `buf.len()` bytes immediately before the cursor (in forward
    /// order) and move the cursor back past them.
    pub fn read_back(&mut self, buf: &mut [u8]) -> Result<()> {
        if (buf.len() as u64) > self.pos {
            return Err(ExtError::UnexpectedEof {
                wanted: buf.len(),
                available: self.pos as usize,
            });
        }
        let bs = self.disk.block_size() as u64;
        let start = self.pos - buf.len() as u64;
        // Fill from the tail backward so the resident frame walks down-block,
        // keeping a sequential backward pass at one load per block.
        let mut end = self.pos;
        while end > start {
            let last = end - 1;
            let block_idx = (last / bs) as usize;
            let block_start = block_idx as u64 * bs;
            let lo = start.max(block_start);
            self.load(block_idx)?;
            let src_lo = (lo - block_start) as usize;
            let src_hi = (end - block_start) as usize;
            let dst_lo = (lo - start) as usize;
            let dst_hi = (end - start) as usize;
            buf[dst_lo..dst_hi].copy_from_slice(&self.frame[src_lo..src_hi]);
            end = lo;
        }
        self.pos = start;
        Ok(())
    }

    /// Read a little-endian `u32` that ends at the cursor.
    pub fn read_back_u32(&mut self) -> Result<u32> {
        let mut b = [0u8; 4];
        self.read_back(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::IoCat;

    fn setup(block_size: usize, frames: usize) -> (Rc<Disk>, MemoryBudget) {
        (Disk::new_mem(block_size), MemoryBudget::new(frames))
    }

    fn build_extent(disk: &Rc<Disk>, budget: &MemoryBudget, data: &[u8]) -> Extent {
        let mut w = ExtentWriter::new(disk.clone(), budget, IoCat::SortScratch).unwrap();
        w.write_all(data).unwrap();
        w.finish().unwrap()
    }

    #[test]
    fn write_then_read_roundtrip_across_blocks() {
        let (disk, budget) = setup(16, 4);
        let data: Vec<u8> = (0..100u8).collect();
        let ext = build_extent(&disk, &budget, &data);
        assert_eq!(ext.len(), 100);
        assert_eq!(ext.num_blocks(), 7); // ceil(100/16)
        let mut r = ExtentReader::new(disk, &budget, &ext, IoCat::SortScratch).unwrap();
        let mut out = vec![0u8; 100];
        r.read_exact(&mut out).unwrap();
        assert_eq!(out, data);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn sequential_pass_costs_exactly_ceil_len_over_b_ios() {
        let (disk, budget) = setup(64, 4);
        let data = vec![7u8; 1000];
        let before = disk.stats().snapshot();
        let ext = build_extent(&disk, &budget, &data);
        let after_write = disk.stats().snapshot().since(&before);
        assert_eq!(after_write.writes(IoCat::SortScratch), 16); // ceil(1000/64)

        let before = disk.stats().snapshot();
        let mut r = ExtentReader::new(disk.clone(), &budget, &ext, IoCat::SortScratch).unwrap();
        let mut out = vec![0u8; 1000];
        r.read_exact(&mut out).unwrap();
        let after_read = disk.stats().snapshot().since(&before);
        assert_eq!(after_read.reads(IoCat::SortScratch), 16);
    }

    #[test]
    fn reads_spanning_block_boundaries_assemble_correctly() {
        let (disk, budget) = setup(8, 4);
        let data: Vec<u8> = (0..40u8).collect();
        let ext = build_extent(&disk, &budget, &data);
        let mut r = ExtentReader::new(disk, &budget, &ext, IoCat::SortScratch).unwrap();
        let mut chunk = [0u8; 13]; // deliberately not aligned to 8
        r.read_exact(&mut chunk).unwrap();
        assert_eq!(&chunk[..], &data[0..13]);
        r.read_exact(&mut chunk).unwrap();
        assert_eq!(&chunk[..], &data[13..26]);
    }

    #[test]
    fn eof_is_detected_before_any_partial_fill() {
        let (disk, budget) = setup(8, 4);
        let ext = build_extent(&disk, &budget, b"hello");
        let mut r = ExtentReader::new(disk, &budget, &ext, IoCat::SortScratch).unwrap();
        let mut buf = [0u8; 6];
        match r.read_exact(&mut buf) {
            Err(ExtError::UnexpectedEof { wanted: 6, available: 5 }) => {}
            other => panic!("expected EOF error, got {other:?}"),
        }
    }

    #[test]
    fn seek_supports_random_access() {
        let (disk, budget) = setup(8, 4);
        let data: Vec<u8> = (0..64u8).collect();
        let ext = build_extent(&disk, &budget, &data);
        let mut r = ExtentReader::new(disk, &budget, &ext, IoCat::SortScratch).unwrap();
        r.seek(40);
        assert_eq!(r.read_u8().unwrap(), 40);
        r.seek(7);
        assert_eq!(r.read_u8().unwrap(), 7);
        assert_eq!(r.position(), 8);
    }

    #[test]
    fn rev_cursor_reads_backward_in_forward_order() {
        let (disk, budget) = setup(8, 4);
        let data: Vec<u8> = (0..30u8).collect();
        let ext = build_extent(&disk, &budget, &data);
        let mut rc = ExtentRevCursor::new(disk, &budget, &ext, IoCat::SortScratch).unwrap();
        let mut tail = [0u8; 12];
        rc.read_back(&mut tail).unwrap();
        assert_eq!(&tail[..], &data[18..30]);
        let mut mid = [0u8; 10];
        rc.read_back(&mut mid).unwrap();
        assert_eq!(&mid[..], &data[8..18]);
        assert_eq!(rc.remaining(), 8);
        let mut head = [0u8; 9];
        assert!(rc.read_back(&mut head).is_err());
    }

    #[test]
    fn backward_pass_costs_one_read_per_block() {
        let (disk, budget) = setup(32, 4);
        let data = vec![1u8; 320];
        let ext = build_extent(&disk, &budget, &data);
        let before = disk.stats().snapshot();
        let mut rc = ExtentRevCursor::new(disk.clone(), &budget, &ext, IoCat::RunRead).unwrap();
        let mut buf = [0u8; 5];
        while rc.remaining() >= 5 {
            rc.read_back(&mut buf).unwrap();
        }
        let delta = disk.stats().snapshot().since(&before);
        assert_eq!(delta.reads(IoCat::RunRead), 10); // 320/32 blocks, each loaded once
    }

    #[test]
    fn cursors_reserve_and_release_budget_frames() {
        let (disk, budget) = setup(8, 2);
        let ext = build_extent(&disk, &budget, b"abc");
        assert_eq!(budget.used_frames(), 0);
        {
            let _r1 = ExtentReader::new(disk.clone(), &budget, &ext, IoCat::InputRead).unwrap();
            let _r2 = ExtentReader::new(disk.clone(), &budget, &ext, IoCat::InputRead).unwrap();
            assert_eq!(budget.used_frames(), 2);
            assert!(ExtentReader::new(disk.clone(), &budget, &ext, IoCat::InputRead).is_err());
        }
        assert_eq!(budget.used_frames(), 0);
    }

    #[test]
    fn freeing_an_extent_recycles_its_blocks() {
        let (disk, budget) = setup(8, 4);
        let mut ext = build_extent(&disk, &budget, &[9u8; 100]);
        let before = disk.num_blocks();
        ext.free(&disk).unwrap();
        assert!(ext.is_empty());
        // New allocations should reuse the freed blocks, not grow the device.
        let _ext2 = build_extent(&disk, &budget, &[3u8; 100]);
        assert_eq!(disk.num_blocks(), before);
    }

    #[test]
    fn slice_reader_matches_extent_reader_semantics() {
        let data = b"0123456789";
        let mut r = SliceReader::new(data);
        let mut b = [0u8; 4];
        r.read_exact(&mut b).unwrap();
        assert_eq!(&b, b"0123");
        assert_eq!(r.remaining(), 6);
        assert_eq!(r.position(), 4);
        let mut too_big = [0u8; 7];
        assert!(r.read_exact(&mut too_big).is_err());
    }

    #[test]
    fn numeric_helpers_roundtrip() {
        let mut v: Vec<u8> = Vec::new();
        v.write_u8(7).unwrap();
        v.write_u32(0xDEADBEEF).unwrap();
        v.write_u64(0x0123_4567_89AB_CDEF).unwrap();
        let mut r = SliceReader::new(&v);
        assert_eq!(r.read_u8().unwrap(), 7);
        assert_eq!(r.read_u32().unwrap(), 0xDEADBEEF);
        assert_eq!(r.read_u64().unwrap(), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn empty_extent_behaves() {
        let (disk, budget) = setup(8, 4);
        let w = ExtentWriter::new(disk.clone(), &budget, IoCat::SortScratch).unwrap();
        assert!(w.is_empty());
        let ext = w.finish().unwrap();
        assert!(ext.is_empty());
        assert_eq!(ext.num_blocks(), 0);
        let mut r = ExtentReader::new(disk, &budget, &ext, IoCat::SortScratch).unwrap();
        assert!(r.is_empty());
        assert!(r.read_u8().is_err());
    }

    #[test]
    fn rescans_keep_the_logical_cost_but_hit_a_warm_pool() {
        let (disk, budget) = setup(16, 4);
        let cache_budget = MemoryBudget::new(8);
        disk.enable_cache(&cache_budget, 8, crate::CachePolicy::Lru, crate::WriteMode::Through)
            .unwrap();
        let data: Vec<u8> = (0..100u8).collect();
        let ext = build_extent(&disk, &budget, &data); // 7 blocks, written through
        let mut out = vec![0u8; 100];
        for _ in 0..3 {
            let mut r = ExtentReader::new(disk.clone(), &budget, &ext, IoCat::SortScratch).unwrap();
            r.read_exact(&mut out).unwrap();
            assert_eq!(out, data);
        }
        let snap = disk.stats().snapshot();
        // Every pass still costs ceil(L/B) = 7 logical reads -- the paper's
        // quantity is cache-invariant.
        assert_eq!(snap.reads(IoCat::SortScratch), 21);
        // But only the first pass faulted the blocks in (pool holds all 7).
        assert_eq!(snap.phys_reads(IoCat::SortScratch), 7);
        assert_eq!(snap.total_cache_hits(), 14);
    }
}
