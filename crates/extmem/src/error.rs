//! Error type shared across the external-memory substrate.

use std::fmt;

/// Errors surfaced by the external-memory substrate.
///
/// The substrate simulates a block device, so most failures are logic errors
/// (out-of-range block, truncated stream) rather than true I/O failures; the
/// `Io` variant carries real OS errors from the file-backed device.
#[derive(Debug)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum ExtError {
    /// A block id referenced a block that was never allocated.
    BadBlock { block: u64, total: u64 },
    /// A read ran past the end of an extent or run.
    UnexpectedEof { wanted: usize, available: usize },
    /// A stack operation referenced bytes below the bottom of the stack.
    StackUnderflow { wanted: usize, len: usize },
    /// The memory budget would be exceeded by a reservation.
    BudgetExceeded { requested: usize, free: usize },
    /// A run id referenced a run that does not exist in the store.
    BadRun { run: u32, total: u32 },
    /// A record or structure failed to decode.
    Corrupt(String),
    /// An underlying OS error from the file-backed device.
    Io(std::io::Error),
}

impl fmt::Display for ExtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtError::BadBlock { block, total } => {
                write!(f, "block {block} out of range (device has {total})")
            }
            ExtError::UnexpectedEof { wanted, available } => {
                write!(f, "unexpected end of data: wanted {wanted} bytes, {available} available")
            }
            ExtError::StackUnderflow { wanted, len } => {
                write!(f, "stack underflow: wanted {wanted} bytes, stack holds {len}")
            }
            ExtError::BudgetExceeded { requested, free } => {
                write!(f, "memory budget exceeded: requested {requested} frames, {free} free")
            }
            ExtError::BadRun { run, total } => {
                write!(f, "run {run} out of range (store has {total})")
            }
            ExtError::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
            ExtError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for ExtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExtError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ExtError {
    fn from(e: std::io::Error) -> Self {
        ExtError::Io(e)
    }
}

/// Convenience alias used throughout the substrate.
pub type Result<T> = std::result::Result<T, ExtError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let s = ExtError::BadBlock { block: 9, total: 4 }.to_string();
        assert!(s.contains('9') && s.contains('4'));
        let s = ExtError::UnexpectedEof { wanted: 10, available: 3 }.to_string();
        assert!(s.contains("10") && s.contains('3'));
        let s = ExtError::StackUnderflow { wanted: 2, len: 1 }.to_string();
        assert!(s.contains("underflow"));
        let s = ExtError::BudgetExceeded { requested: 5, free: 2 }.to_string();
        assert!(s.contains("budget"));
        let s = ExtError::BadRun { run: 7, total: 0 }.to_string();
        assert!(s.contains("run 7"));
        let s = ExtError::Corrupt("bad tag".into()).to_string();
        assert!(s.contains("bad tag"));
    }

    #[test]
    fn io_error_converts_and_chains() {
        let e: ExtError = std::io::Error::other("boom").into();
        assert!(e.to_string().contains("boom"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&ExtError::Corrupt("x".into())).is_none());
    }
}
