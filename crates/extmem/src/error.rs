//! Error type shared across the external-memory substrate.

use std::fmt;

/// Errors surfaced by the external-memory substrate.
///
/// The substrate simulates a block device, so most failures are logic errors
/// (out-of-range block, truncated stream) rather than true I/O failures; the
/// `Io` variant carries real OS errors from the file-backed device.
#[derive(Debug)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum ExtError {
    /// A block id referenced a block that was never allocated.
    BadBlock { block: u64, total: u64 },
    /// A read ran past the end of an extent or run.
    UnexpectedEof { wanted: usize, available: usize },
    /// A stack operation referenced bytes below the bottom of the stack.
    StackUnderflow { wanted: usize, len: usize },
    /// The memory budget would be exceeded by a reservation.
    BudgetExceeded { requested: usize, free: usize },
    /// A run id referenced a run that does not exist in the store.
    BadRun { run: u32, total: u32 },
    /// A record or structure failed to decode.
    Corrupt(String),
    /// An underlying OS error from the file-backed device.
    Io(std::io::Error),
    /// A block's stored content no longer matches its recorded checksum:
    /// corruption was detected (rather than silently propagated).
    ChecksumMismatch { block: u64 },
    /// A block was freed twice without an intervening allocation.
    DoubleFree { block: u64 },
    /// A transfer kept failing after the retry policy's attempt budget.
    /// `last` is the error of the final attempt.
    RetriesExhausted { attempts: u32, last: Box<ExtError> },
    /// A buffer-pool operation needed a block whose frame is pinned (e.g.
    /// freeing a block while a `PinGuard` on it is alive).
    FramePinned { block: u64 },
    /// The buffer pool needed a victim frame but every frame is pinned.
    AllFramesPinned { frames: usize },
    /// A pin was requested on a disk whose buffer pool is not enabled.
    CacheDisabled,
    /// The shadow-state sanitizer (see `shadow.rs`, enabled with
    /// `NEXSORT_SHADOW=1`) observed an operation that violates the
    /// substrate's allocation / pin / barrier discipline. `check` names the
    /// violated check (e.g. `read-after-free`); `block` is the offending
    /// block id (for `budget-frame-leak`, the number of leaked frames).
    ShadowViolation { check: &'static str, block: u64 },
    /// A `CrashDevice` reached its armed crash point: the device image is
    /// frozen and every transfer fails until the controller thaws it.
    /// `after_ios` is the physical I/O index at which the crash fired.
    SimulatedCrash { after_ios: u64 },
    /// Journal replay found a record that cannot be explained by a torn
    /// tail: a checksum mismatch followed by further data, a sequence-number
    /// break, or a record overrunning the journal extent. `offset` is the
    /// byte offset of the offending record within the journal.
    JournalCorrupt { offset: u64, reason: &'static str },
    /// A block reconstructed from its parity group (or scrubbed in place)
    /// does not match the per-block checksum sealed in the journal: the
    /// redundancy itself is inconsistent.
    ParityMismatch { block: u64 },
    /// A transfer addressed a block that the health map has quarantined
    /// after a hard media fault; quarantined blocks are never reused.
    BlockQuarantined { block: u64 },
    /// More members of one parity group hard-failed than the group's single
    /// parity block can reconstruct; the run must be re-derived from its
    /// source or the job fails.
    UnrecoverableGroup { run: u32, lost: u64 },
    /// The lock-discipline sanitizer (see `locksan.rs`, enabled with
    /// `NEXSORT_LOCKSAN=1`) observed a concurrency-discipline violation:
    /// a lock-order inversion that could deadlock, or a shared-state access
    /// with neither a happens-before edge nor a common lock. `check` names
    /// the violated check; `detail` describes the offending locks or site.
    LockSanViolation { check: &'static str, detail: String },
}

impl ExtError {
    /// Whether retrying the failed operation could plausibly succeed.
    ///
    /// Device-level errors (`Io`) and detected corruption (`ChecksumMismatch`,
    /// which a re-read heals when the damage happened on the read path) are
    /// transient; everything else is a logic error, a hard media fault, or an
    /// exhausted retry budget, where retrying again is pointless.
    ///
    /// Every variant is classified explicitly (no wildcard arm) so that
    /// adding a variant forces a decision here; xlint rule R10 enforces this.
    pub fn is_transient(&self) -> bool {
        match self {
            ExtError::Io(_) | ExtError::ChecksumMismatch { .. } => true,
            ExtError::BadBlock { .. }
            | ExtError::UnexpectedEof { .. }
            | ExtError::StackUnderflow { .. }
            | ExtError::BudgetExceeded { .. }
            | ExtError::BadRun { .. }
            | ExtError::Corrupt(_)
            | ExtError::DoubleFree { .. }
            | ExtError::RetriesExhausted { .. }
            | ExtError::FramePinned { .. }
            | ExtError::AllFramesPinned { .. }
            | ExtError::CacheDisabled
            | ExtError::ShadowViolation { .. }
            | ExtError::SimulatedCrash { .. }
            | ExtError::JournalCorrupt { .. }
            | ExtError::ParityMismatch { .. }
            | ExtError::BlockQuarantined { .. }
            | ExtError::UnrecoverableGroup { .. }
            | ExtError::LockSanViolation { .. } => false,
        }
    }

    /// Whether this error marks a *hard media fault* on one block: content
    /// that will never read back correctly no matter how often it is retried.
    /// These are the faults the parity layer repairs (a `ChecksumMismatch`
    /// that survives the retry policy, or one raised with retries disabled).
    pub fn is_hard_media_fault(&self) -> bool {
        match self {
            ExtError::ChecksumMismatch { .. } | ExtError::BlockQuarantined { .. } => true,
            ExtError::RetriesExhausted { last, .. } => last.is_hard_media_fault(),
            ExtError::BadBlock { .. }
            | ExtError::UnexpectedEof { .. }
            | ExtError::StackUnderflow { .. }
            | ExtError::BudgetExceeded { .. }
            | ExtError::BadRun { .. }
            | ExtError::Corrupt(_)
            | ExtError::Io(_)
            | ExtError::DoubleFree { .. }
            | ExtError::FramePinned { .. }
            | ExtError::AllFramesPinned { .. }
            | ExtError::CacheDisabled
            | ExtError::ShadowViolation { .. }
            | ExtError::SimulatedCrash { .. }
            | ExtError::JournalCorrupt { .. }
            | ExtError::ParityMismatch { .. }
            | ExtError::UnrecoverableGroup { .. }
            | ExtError::LockSanViolation { .. } => false,
        }
    }
}

impl fmt::Display for ExtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtError::BadBlock { block, total } => {
                write!(f, "block {block} out of range (device has {total})")
            }
            ExtError::UnexpectedEof { wanted, available } => {
                write!(f, "unexpected end of data: wanted {wanted} bytes, {available} available")
            }
            ExtError::StackUnderflow { wanted, len } => {
                write!(f, "stack underflow: wanted {wanted} bytes, stack holds {len}")
            }
            ExtError::BudgetExceeded { requested, free } => {
                write!(f, "memory budget exceeded: requested {requested} frames, {free} free")
            }
            ExtError::BadRun { run, total } => {
                write!(f, "run {run} out of range (store has {total})")
            }
            ExtError::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
            ExtError::Io(e) => write!(f, "I/O error: {e}"),
            ExtError::ChecksumMismatch { block } => {
                write!(f, "checksum mismatch on block {block}: corruption detected")
            }
            ExtError::DoubleFree { block } => {
                write!(f, "double free of block {block}")
            }
            ExtError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts; last error: {last}")
            }
            ExtError::FramePinned { block } => {
                write!(f, "block {block} is pinned in the buffer pool")
            }
            ExtError::AllFramesPinned { frames } => {
                write!(f, "all {frames} buffer-pool frames are pinned; cannot evict")
            }
            ExtError::CacheDisabled => {
                write!(f, "buffer pool is not enabled on this disk")
            }
            ExtError::ShadowViolation { check, block } => {
                write!(f, "shadow sanitizer caught {check} (block {block})")
            }
            ExtError::SimulatedCrash { after_ios } => {
                write!(f, "simulated crash after {after_ios} physical I/Os: device frozen")
            }
            ExtError::JournalCorrupt { offset, reason } => {
                write!(f, "journal corrupt at offset {offset}: {reason}")
            }
            ExtError::ParityMismatch { block } => {
                write!(f, "parity mismatch on block {block}: redundancy is inconsistent")
            }
            ExtError::BlockQuarantined { block } => {
                write!(f, "block {block} is quarantined after a hard media fault")
            }
            ExtError::UnrecoverableGroup { run, lost } => {
                write!(
                    f,
                    "parity group of run {run} is unrecoverable (block {lost} lost beyond parity)"
                )
            }
            ExtError::LockSanViolation { check, detail } => {
                write!(f, "lock sanitizer caught {check}: {detail}")
            }
        }
    }
}

impl std::error::Error for ExtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExtError::Io(e) => Some(e),
            ExtError::RetriesExhausted { last, .. } => Some(last),
            ExtError::BadBlock { .. }
            | ExtError::UnexpectedEof { .. }
            | ExtError::StackUnderflow { .. }
            | ExtError::BudgetExceeded { .. }
            | ExtError::BadRun { .. }
            | ExtError::Corrupt(_)
            | ExtError::ChecksumMismatch { .. }
            | ExtError::DoubleFree { .. }
            | ExtError::FramePinned { .. }
            | ExtError::AllFramesPinned { .. }
            | ExtError::CacheDisabled
            | ExtError::ShadowViolation { .. }
            | ExtError::SimulatedCrash { .. }
            | ExtError::JournalCorrupt { .. }
            | ExtError::ParityMismatch { .. }
            | ExtError::BlockQuarantined { .. }
            | ExtError::UnrecoverableGroup { .. }
            | ExtError::LockSanViolation { .. } => None,
        }
    }
}

impl From<std::io::Error> for ExtError {
    fn from(e: std::io::Error) -> Self {
        ExtError::Io(e)
    }
}

/// Convenience alias used throughout the substrate.
pub type Result<T> = std::result::Result<T, ExtError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let s = ExtError::BadBlock { block: 9, total: 4 }.to_string();
        assert!(s.contains('9') && s.contains('4'));
        let s = ExtError::UnexpectedEof { wanted: 10, available: 3 }.to_string();
        assert!(s.contains("10") && s.contains('3'));
        let s = ExtError::StackUnderflow { wanted: 2, len: 1 }.to_string();
        assert!(s.contains("underflow"));
        let s = ExtError::BudgetExceeded { requested: 5, free: 2 }.to_string();
        assert!(s.contains("budget"));
        let s = ExtError::BadRun { run: 7, total: 0 }.to_string();
        assert!(s.contains("run 7"));
        let s = ExtError::Corrupt("bad tag".into()).to_string();
        assert!(s.contains("bad tag"));
    }

    #[test]
    fn io_error_converts_and_chains() {
        let e: ExtError = std::io::Error::other("boom").into();
        assert!(e.to_string().contains("boom"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&ExtError::Corrupt("x".into())).is_none());
    }

    #[test]
    fn fault_variants_display_and_chain() {
        let s = ExtError::ChecksumMismatch { block: 12 }.to_string();
        assert!(s.contains("12") && s.contains("checksum"));
        let s = ExtError::DoubleFree { block: 3 }.to_string();
        assert!(s.contains("double free") && s.contains('3'));
        let inner = ExtError::ChecksumMismatch { block: 5 };
        let e = ExtError::RetriesExhausted { attempts: 4, last: Box::new(inner) };
        assert!(e.to_string().contains('4') && e.to_string().contains("block 5"));
        let src = std::error::Error::source(&e).expect("chains to the last error");
        assert!(src.to_string().contains("block 5"));
    }

    #[test]
    fn pool_variants_display() {
        let s = ExtError::FramePinned { block: 4 }.to_string();
        assert!(s.contains("pinned") && s.contains('4'));
        let s = ExtError::AllFramesPinned { frames: 2 }.to_string();
        assert!(s.contains("pinned") && s.contains('2'));
        let s = ExtError::CacheDisabled.to_string();
        assert!(s.contains("not enabled"));
        assert!(!ExtError::FramePinned { block: 0 }.is_transient());
        assert!(!ExtError::AllFramesPinned { frames: 0 }.is_transient());
        assert!(!ExtError::CacheDisabled.is_transient());
    }

    #[test]
    fn shadow_violation_displays_and_is_fatal() {
        let e = ExtError::ShadowViolation { check: "read-after-free", block: 7 };
        assert!(e.to_string().contains("read-after-free") && e.to_string().contains('7'));
        assert!(!e.is_transient());
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn crash_and_journal_variants_display_and_are_fatal() {
        let e = ExtError::SimulatedCrash { after_ios: 17 };
        assert!(e.to_string().contains("17") && e.to_string().contains("frozen"));
        assert!(!e.is_transient(), "a crash must not be retried away");
        assert!(std::error::Error::source(&e).is_none());
        let e = ExtError::JournalCorrupt { offset: 96, reason: "checksum mismatch" };
        assert!(e.to_string().contains("96") && e.to_string().contains("checksum"));
        assert!(!e.is_transient());
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn transience_classification() {
        assert!(ExtError::Io(std::io::Error::other("x")).is_transient());
        assert!(ExtError::ChecksumMismatch { block: 0 }.is_transient());
        assert!(!ExtError::DoubleFree { block: 0 }.is_transient());
        assert!(!ExtError::BadBlock { block: 0, total: 0 }.is_transient());
        assert!(!ExtError::Corrupt("x".into()).is_transient());
        let last = Box::new(ExtError::ChecksumMismatch { block: 0 });
        assert!(!ExtError::RetriesExhausted { attempts: 3, last }.is_transient());
    }

    #[test]
    fn parity_variants_display_and_classify() {
        let e = ExtError::ParityMismatch { block: 11 };
        assert!(e.to_string().contains("11") && e.to_string().contains("parity"));
        assert!(!e.is_transient());
        assert!(std::error::Error::source(&e).is_none());
        let e = ExtError::BlockQuarantined { block: 6 };
        assert!(e.to_string().contains('6') && e.to_string().contains("quarantined"));
        assert!(!e.is_transient());
        let e = ExtError::UnrecoverableGroup { run: 3, lost: 40 };
        assert!(e.to_string().contains("run 3") && e.to_string().contains("40"));
        assert!(!e.is_transient());
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn locksan_violation_displays_and_is_fatal() {
        let e = ExtError::LockSanViolation {
            check: "lock-order-inversion",
            detail: "`arbiter.state` after `server.core`".into(),
        };
        assert!(e.to_string().contains("lock-order-inversion"));
        assert!(e.to_string().contains("server.core"));
        assert!(!e.is_transient(), "a discipline violation must never be retried away");
        assert!(!e.is_hard_media_fault());
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn hard_media_faults_are_recognised_through_retry_wrappers() {
        assert!(ExtError::ChecksumMismatch { block: 2 }.is_hard_media_fault());
        assert!(ExtError::BlockQuarantined { block: 2 }.is_hard_media_fault());
        let last = Box::new(ExtError::ChecksumMismatch { block: 2 });
        assert!(ExtError::RetriesExhausted { attempts: 4, last }.is_hard_media_fault());
        let last = Box::new(ExtError::Io(std::io::Error::other("flaky")));
        assert!(!ExtError::RetriesExhausted { attempts: 4, last }.is_hard_media_fault());
        assert!(!ExtError::Io(std::io::Error::other("x")).is_hard_media_fault());
        assert!(!ExtError::UnrecoverableGroup { run: 0, lost: 0 }.is_hard_media_fault());
    }
}
