//! Layered assembly of a device stack: one sanctioned site instead of an
//! ad-hoc `match` ladder in every front end.
//!
//! The substrate's device middleware composes in a fixed order (bottom to
//! top): backing device(s) -> stripe -> fault injection -> checksums ->
//! crash injection -> the accounting [`Disk`] -> page cache -> I/O
//! scheduler. Before this module, that assembly lived inline in
//! `cli::make_disk`; a server spawning one stack per job, the benches, and
//! the tests all need the same composition, so [`DiskBuilder`] makes it an
//! explicit, inspectable value. [`DiskBuilder::describe`] renders the
//! configured stack as a canonical string, which is how tests assert that
//! two assembly paths (say, the CLI and a server job) built *identical*
//! stacks.
//!
//! This module is the device layer's one sanctioned raw-assembly site: it
//! may name [`BlockDevice`] implementations directly (xlint rule R1 lists
//! it), so front ends no longer need `xlint::allow(R1)` pragmas.

use std::path::{Path, PathBuf};
use std::rc::Rc;

use crate::budget::MemoryBudget;
use crate::device::{BlockDevice, Disk, FileDevice, MemDevice};
use crate::fault::{CrashController, CrashPlan, FaultInjector, FaultPlan, RetryPolicy};
use crate::pool::{CachePolicy, WriteMode};
use crate::sched::SchedConfig;

/// What backs the bottom of the stack.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Backing {
    /// Host-RAM blocks (tests, benches, default).
    Mem,
    /// A device file at the given path (striped stacks use `PATH.0..N-1`).
    File(PathBuf),
}

/// A configuration error caught at [`DiskBuilder::build`] time: the
/// requested layers cannot compose.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildError(String);

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "device stack: {}", self.0)
    }
}

impl std::error::Error for BuildError {}

/// A fully-assembled stack: the accounting disk plus the handles of its
/// injection layers (empty/`None` for layers not configured).
pub struct DiskStack {
    /// The accounting front door every consumer talks to.
    pub disk: Rc<Disk>,
    /// One fault injector per backing device, in stripe order (empty when
    /// fault injection is off).
    pub injectors: Vec<FaultInjector>,
    /// The crash controller, when a crash layer was configured.
    pub crash: Option<CrashController>,
}

impl std::fmt::Debug for DiskStack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskStack")
            .field("stripe", &self.disk.stripe_width())
            .field("injectors", &self.injectors.len())
            .field("crash", &self.crash.is_some())
            .finish()
    }
}

/// Builder for a layered device stack; see the [module docs](self).
///
/// ```
/// use nexsort_extmem::{CachePolicy, DiskBuilder, SchedConfig, WriteMode};
/// let stack = DiskBuilder::new(512)
///     .stripe(4)
///     .cache(8, CachePolicy::Lru, WriteMode::Back)
///     .sched(SchedConfig { workers: 4, prefetch_depth: 8, write_behind: true,
///                          ..SchedConfig::default() })
///     .build()
///     .unwrap();
/// assert_eq!(stack.disk.stripe_width(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct DiskBuilder {
    block_size: usize,
    backing: Backing,
    open_existing: bool,
    stripe: usize,
    faults: Vec<FaultPlan>,
    crash: Option<CrashPlan>,
    retry: Option<RetryPolicy>,
    cache: Option<(usize, CachePolicy, WriteMode)>,
    cache_budget: Option<MemoryBudget>,
    sched: Option<SchedConfig>,
    shadow: bool,
}

impl DiskBuilder {
    /// A builder over in-memory backing with the given block size.
    pub fn new(block_size: usize) -> Self {
        Self {
            block_size,
            backing: Backing::Mem,
            open_existing: false,
            stripe: 1,
            faults: Vec::new(),
            crash: None,
            retry: None,
            cache: None,
            cache_budget: None,
            sched: None,
            shadow: false,
        }
    }

    /// Back the stack with a device file at `path` (created/truncated).
    /// With [`stripe`](Self::stripe) `> 1`, files `PATH.0..PATH.N-1` are
    /// used instead.
    pub fn file(mut self, path: &Path) -> Self {
        self.backing = Backing::File(path.to_path_buf());
        self.open_existing = false;
        self
    }

    /// Back the stack with *existing* device file(s) at `path`, preserving
    /// their contents -- the resume/scrub path after a restart.
    pub fn open_file(mut self, path: &Path) -> Self {
        self.backing = Backing::File(path.to_path_buf());
        self.open_existing = true;
        self
    }

    /// Stripe the stack round-robin over `n` backing devices.
    pub fn stripe(mut self, n: usize) -> Self {
        self.stripe = n.max(1);
        self
    }

    /// Inject faults per `plan` on every backing device, each device's plan
    /// reseeded by its stripe index (seed + i), under a shared checksum
    /// layer. Mutually exclusive with [`crash`](Self::crash).
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = vec![plan];
        self
    }

    /// Like [`faults`](Self::faults) with an explicit plan per device
    /// (`plans.len()` must equal the stripe width at build time).
    pub fn faults_per_device(mut self, plans: Vec<FaultPlan>) -> Self {
        self.faults = plans;
        self
    }

    /// Add a crash-injection layer above the stripe, armed per `plan`.
    pub fn crash(mut self, plan: CrashPlan) -> Self {
        self.crash = Some(plan);
        self
    }

    /// Retry transient faults per `policy`.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Enable the pinning page cache with `frames` frames from a dedicated
    /// budget (see [`cache_from`](Self::cache_from) to meter the frames
    /// from a caller-owned budget, e.g. a server job's lease).
    pub fn cache(mut self, frames: usize, policy: CachePolicy, mode: WriteMode) -> Self {
        self.cache = Some((frames, policy, mode));
        self.cache_budget = None;
        self
    }

    /// [`cache`](Self::cache), reserving the frames from `budget` instead
    /// of a fresh dedicated one.
    pub fn cache_from(
        mut self,
        budget: &MemoryBudget,
        frames: usize,
        policy: CachePolicy,
        mode: WriteMode,
    ) -> Self {
        self.cache = Some((frames, policy, mode));
        self.cache_budget = Some(budget.clone());
        self
    }

    /// Enable the asynchronous I/O scheduler.
    pub fn sched(mut self, cfg: SchedConfig) -> Self {
        self.sched = Some(cfg);
        self
    }

    /// Force-attach the shadow-state sanitizer (it also auto-attaches when
    /// `NEXSORT_SHADOW=1` is set in the environment).
    pub fn shadow(mut self, on: bool) -> Self {
        self.shadow = on;
        self
    }

    /// The `i`-th backing file of a striped file stack: `PATH.i`.
    pub fn stripe_path(path: &Path, i: usize) -> PathBuf {
        let mut os = path.as_os_str().to_owned();
        os.push(format!(".{i}"));
        PathBuf::from(os)
    }

    /// A canonical one-line rendering of the configured stack. Two builders
    /// describe identically iff they assemble identical stacks, so tests
    /// compare assembly paths by comparing descriptions.
    pub fn describe(&self) -> String {
        let backing = match &self.backing {
            Backing::Mem => "mem".to_string(),
            Backing::File(p) => {
                format!("file:{}{}", p.display(), if self.open_existing { ":open" } else { "" })
            }
        };
        let faults =
            if self.faults.is_empty() { "none".to_string() } else { format!("{:?}", self.faults) };
        let cache = match &self.cache {
            None => "none".to_string(),
            Some((frames, policy, mode)) => format!(
                "{frames}/{policy:?}/{mode:?}{}",
                if self.cache_budget.is_some() { "/leased" } else { "/dedicated" }
            ),
        };
        let sched = match &self.sched {
            None => "none".to_string(),
            Some(c) => format!(
                "w{}/p{}/{}q{}",
                c.workers,
                c.prefetch_depth,
                if c.write_behind { "wb/" } else { "" },
                c.queue_capacity
            ),
        };
        format!(
            "block={} backing={} stripe={} faults={} crash={:?} retry={:?} cache={} sched={} \
             shadow={}",
            self.block_size,
            backing,
            self.stripe,
            faults,
            self.crash,
            self.retry,
            cache,
            sched,
            self.shadow,
        )
    }

    /// One backing device (index `i` of the stripe set). Files created so
    /// far are tracked in `created` so a mid-set failure can clean up.
    fn backing_device(
        &self,
        i: usize,
        created: &mut Vec<PathBuf>,
    ) -> std::result::Result<Box<dyn BlockDevice>, BuildError> {
        Ok(match &self.backing {
            Backing::Mem => Box::new(MemDevice::new(self.block_size)),
            Backing::File(path) => {
                let p = if self.stripe > 1 { Self::stripe_path(path, i) } else { path.clone() };
                let dev = if self.open_existing {
                    FileDevice::open(&p, self.block_size)
                } else {
                    FileDevice::create(&p, self.block_size)
                }
                .map_err(|e| BuildError(format!("cannot open device file {p:?}: {e}")))?;
                if !self.open_existing {
                    created.push(p);
                }
                Box::new(dev)
            }
        })
    }

    /// Assemble the stack. Layer order and composition rules match what
    /// `cli::make_disk` historically built; incompatible layer combinations
    /// fail with a [`BuildError`] naming the conflict.
    pub fn build(self) -> std::result::Result<DiskStack, BuildError> {
        if !self.faults.is_empty() && self.crash.is_some() {
            return Err(BuildError(
                "crash injection cannot be combined with fault injection".into(),
            ));
        }
        if !self.faults.is_empty() && self.stripe > 1 && !matches!(self.backing, Backing::Mem) {
            return Err(BuildError(
                "striped fault injection runs on the in-memory device; drop the file backing"
                    .into(),
            ));
        }
        if !self.faults.is_empty() && self.faults.len() != 1 && self.faults.len() != self.stripe {
            return Err(BuildError(format!(
                "{} fault plans for a {}-wide stripe (need 1 or exactly one per device)",
                self.faults.len(),
                self.stripe
            )));
        }

        let mut created: Vec<PathBuf> = Vec::new();
        let assembled = self.assemble(&mut created);
        if assembled.is_err() {
            // A mid-set failure must not leave partial PATH.0..PATH.i-1
            // files behind.
            for p in &created {
                let _ = std::fs::remove_file(p);
            }
        }
        let (disk, injectors, crash) = assembled?;
        if let Some(policy) = self.retry {
            disk.set_retry_policy(policy);
        }
        if let Some((frames, policy, mode)) = self.cache {
            if frames > 0 {
                // Dedicated budget by default: the pool's frames are extra
                // memory on top of the algorithm's own allowance, so logical
                // I/O counts stay comparable across cache sizes.
                let dedicated;
                let budget = match &self.cache_budget {
                    Some(b) => b,
                    None => {
                        dedicated = MemoryBudget::new(frames);
                        &dedicated
                    }
                };
                disk.enable_cache(budget, frames, policy, mode)
                    .map_err(|e| BuildError(format!("cannot enable the page cache: {e}")))?;
            }
        }
        if let Some(cfg) = self.sched {
            if cfg.workers > 0 {
                disk.enable_sched(cfg);
            }
        }
        if self.shadow {
            disk.enable_shadow();
        }
        Ok(DiskStack { disk, injectors, crash })
    }

    /// The raw device layers, bottom-up, before the accounting disk's own
    /// optional layers (retry, cache, scheduler) are configured.
    #[allow(clippy::type_complexity)]
    fn assemble(
        &self,
        created: &mut Vec<PathBuf>,
    ) -> std::result::Result<(Rc<Disk>, Vec<FaultInjector>, Option<CrashController>), BuildError>
    {
        // Fault injection below, checksums above: the checksum layer is what
        // convicts the corruption the injector plants.
        if !self.faults.is_empty() {
            if self.stripe > 1 {
                let base = &self.faults[0];
                let plans: Vec<FaultPlan> = if self.faults.len() == self.stripe {
                    self.faults.clone()
                } else {
                    (0..self.stripe).map(|i| base.clone().reseeded(i as u64)).collect()
                };
                let (disk, injectors) = Disk::new_striped_faulty(self.block_size, plans);
                return Ok((disk, injectors, None));
            }
            let base = self.backing_device(0, created)?;
            let (disk, injector) = Disk::new_faulty(base, self.faults[0].clone());
            return Ok((disk, vec![injector], None));
        }

        let mut inners: Vec<Box<dyn BlockDevice>> = Vec::with_capacity(self.stripe);
        for i in 0..self.stripe {
            match self.backing_device(i, created) {
                Ok(dev) => inners.push(dev),
                Err(e) => {
                    // Drop already-open handles before the caller unlinks
                    // their files.
                    drop(inners);
                    return Err(e);
                }
            }
        }

        if let Some(plan) = self.crash {
            if self.stripe > 1 {
                let (disk, ctl) = Disk::new_striped_crash_over(inners, plan);
                return Ok((disk, Vec::new(), Some(ctl)));
            }
            let Some(single) = inners.pop() else {
                return Err(BuildError("stripe width must be at least 1".into()));
            };
            let (disk, ctl) = Disk::new_crash(single, plan);
            return Ok((disk, Vec::new(), Some(ctl)));
        }

        if self.stripe > 1 {
            return Ok((Disk::new_striped(inners), Vec::new(), None));
        }
        let Some(single) = inners.pop() else {
            return Err(BuildError("stripe width must be at least 1".into()));
        };
        Ok((Disk::new(single), Vec::new(), None))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::IoCat;

    #[test]
    fn plain_mem_stack_round_trips() {
        let stack = DiskBuilder::new(128).build().unwrap();
        assert!(stack.injectors.is_empty() && stack.crash.is_none());
        let b = stack.disk.alloc_block();
        stack.disk.write_block(b, &[7u8; 128], IoCat::SortScratch).unwrap();
        let mut buf = [0u8; 128];
        stack.disk.read_block(b, &mut buf, IoCat::SortScratch).unwrap();
        assert_eq!(buf, [7u8; 128]);
    }

    #[test]
    fn describe_is_canonical_and_distinguishes_stacks() {
        let a = DiskBuilder::new(512).stripe(4).cache(8, CachePolicy::Lru, WriteMode::Through);
        let b = DiskBuilder::new(512).stripe(4).cache(8, CachePolicy::Lru, WriteMode::Through);
        assert_eq!(a.describe(), b.describe());
        let c = b.clone().cache(8, CachePolicy::Clock, WriteMode::Through);
        assert_ne!(a.describe(), c.describe());
    }

    #[test]
    fn faults_and_crash_conflict() {
        let err = DiskBuilder::new(128)
            .faults(FaultPlan::new(1))
            .crash(CrashPlan::Disarmed)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("cannot be combined"), "{err}");
    }

    #[test]
    fn striped_faults_reseed_per_device() {
        let stack = DiskBuilder::new(128)
            .stripe(3)
            .faults(FaultPlan::new(9).with_read_error_rate(0.5))
            .retry(RetryPolicy::retries(4))
            .build()
            .unwrap();
        assert_eq!(stack.injectors.len(), 3);
        assert_eq!(stack.disk.stripe_width(), 3);
    }

    #[test]
    fn striped_file_crash_stack_builds_and_cleans_up_on_failure() {
        let dir = std::env::temp_dir().join(format!("xbuild-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dev.bin");
        let stack =
            DiskBuilder::new(128).file(&path).stripe(2).crash(CrashPlan::Disarmed).build().unwrap();
        assert!(stack.crash.is_some());
        assert!(DiskBuilder::stripe_path(&path, 0).exists());
        assert!(DiskBuilder::stripe_path(&path, 1).exists());
        drop(stack);
        // A backing that cannot be opened cleans up files created so far.
        let bad = DiskBuilder::new(128).file(&dir.join("no/such/dir/dev.bin")).stripe(2);
        assert!(bad.build().is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_file_preserves_contents() {
        let dir = std::env::temp_dir().join(format!("xbuild-open-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dev.bin");
        let (block, data) = {
            let stack = DiskBuilder::new(64).file(&path).build().unwrap();
            let b = stack.disk.alloc_block();
            let data = [0x5Au8; 64];
            stack.disk.write_block(b, &data, IoCat::RunWrite).unwrap();
            (b, data)
        };
        let reopened = DiskBuilder::new(64).open_file(&path).build().unwrap();
        let mut buf = [0u8; 64];
        reopened.disk.read_block(block, &mut buf, IoCat::RunWrite).unwrap();
        assert_eq!(buf, data);
        std::fs::remove_dir_all(&dir).ok();
    }
}
