//! Internal-memory budget accounting.
//!
//! The external-memory model gives an algorithm `M` blocks of internal
//! memory. The paper's experiments vary exactly this parameter (Figure 5), so
//! the substrate makes the budget explicit: every structure that pins block
//! frames in memory (stream buffers, stack windows, sort buffers, merge
//! fan-in buffers) must reserve them from a shared [`MemoryBudget`] first.
//! Reservations are RAII guards, so frames are returned automatically.

use std::cell::Cell;
use std::rc::Rc;

use crate::error::{ExtError, Result};

#[derive(Debug)]
struct Inner {
    total: usize,
    used: Cell<usize>,
    high_water: Cell<usize>,
}

/// A shared budget of `M` internal-memory block frames.
#[derive(Clone, Debug)]
pub struct MemoryBudget {
    inner: Rc<Inner>,
}

impl MemoryBudget {
    /// A budget of `total_frames` block frames (the paper's `m = M/B`).
    pub fn new(total_frames: usize) -> Self {
        Self {
            inner: Rc::new(Inner {
                total: total_frames,
                used: Cell::new(0),
                high_water: Cell::new(0),
            }),
        }
    }

    /// Total frames in the budget.
    pub fn total_frames(&self) -> usize {
        self.inner.total
    }

    /// Frames currently reserved.
    pub fn used_frames(&self) -> usize {
        self.inner.used.get()
    }

    /// Frames currently free.
    pub fn free_frames(&self) -> usize {
        self.inner.total - self.inner.used.get()
    }

    /// Highest simultaneous reservation seen, for post-hoc verification that
    /// an algorithm stayed within `M`.
    pub fn high_water_frames(&self) -> usize {
        self.inner.high_water.get()
    }

    /// Reserve `n` frames, failing if fewer than `n` are free.
    pub fn reserve(&self, n: usize) -> Result<FrameGuard> {
        let used = self.inner.used.get();
        if used + n > self.inner.total {
            return Err(ExtError::BudgetExceeded { requested: n, free: self.inner.total - used });
        }
        self.inner.used.set(used + n);
        self.inner.high_water.set(self.inner.high_water.get().max(used + n));
        Ok(FrameGuard { budget: self.clone(), frames: n })
    }

    /// Reserve every currently-free frame (possibly zero).
    pub fn reserve_all(&self) -> FrameGuard {
        let free = self.free_frames();
        self.inner.used.set(self.inner.total);
        self.inner.high_water.set(self.inner.high_water.get().max(self.inner.total));
        FrameGuard { budget: self.clone(), frames: free }
    }
}

/// RAII reservation of frames; dropping it releases them.
#[derive(Debug)]
pub struct FrameGuard {
    budget: MemoryBudget,
    frames: usize,
}

impl FrameGuard {
    /// Number of frames held by this guard.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Release `n` of the held frames early (e.g. shrinking a sort buffer).
    pub fn release(&mut self, n: usize) {
        let n = n.min(self.frames);
        self.frames -= n;
        let used = self.budget.inner.used.get();
        self.budget.inner.used.set(used - n);
    }
}

impl Drop for FrameGuard {
    fn drop(&mut self) {
        let used = self.budget.inner.used.get();
        self.budget.inner.used.set(used - self.frames);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release_roundtrip() {
        let b = MemoryBudget::new(10);
        assert_eq!(b.free_frames(), 10);
        let g = b.reserve(4).unwrap();
        assert_eq!(b.used_frames(), 4);
        assert_eq!(g.frames(), 4);
        drop(g);
        assert_eq!(b.used_frames(), 0);
    }

    #[test]
    fn over_reservation_fails_with_free_count() {
        let b = MemoryBudget::new(3);
        let _g = b.reserve(2).unwrap();
        match b.reserve(2) {
            Err(ExtError::BudgetExceeded { requested, free }) => {
                assert_eq!(requested, 2);
                assert_eq!(free, 1);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn high_water_records_peak_usage() {
        let b = MemoryBudget::new(8);
        {
            let _a = b.reserve(3).unwrap();
            let _c = b.reserve(4).unwrap();
        }
        let _d = b.reserve(1).unwrap();
        assert_eq!(b.high_water_frames(), 7);
    }

    #[test]
    fn partial_release_shrinks_a_guard() {
        let b = MemoryBudget::new(5);
        let mut g = b.reserve(5).unwrap();
        g.release(2);
        assert_eq!(b.used_frames(), 3);
        assert_eq!(g.frames(), 3);
        g.release(100); // clamps
        assert_eq!(b.used_frames(), 0);
        drop(g);
        assert_eq!(b.used_frames(), 0);
    }

    #[test]
    fn reserve_all_takes_exactly_the_remainder() {
        let b = MemoryBudget::new(6);
        let _g = b.reserve(2).unwrap();
        let all = b.reserve_all();
        assert_eq!(all.frames(), 4);
        assert_eq!(b.free_frames(), 0);
    }

    #[test]
    fn budget_clones_share_state() {
        let a = MemoryBudget::new(4);
        let b = a.clone();
        let _g = a.reserve(3).unwrap();
        assert_eq!(b.free_frames(), 1);
    }
}
