//! Externally-paged stacks with the paper's no-prefetch policy.
//!
//! NEXSORT keeps three stacks that can outgrow internal memory (Section 3.1):
//! the *data stack* of scanned elements, the *path stack* of subtree start
//! locations, and the *output location stack* driving the output phase. Each
//! is an [`ExtStack`]: a byte stack laid out over device blocks, with a small
//! window of resident block frames (at least two for the path stack, one for
//! the others -- the premise of Lemmas 4.10, 4.11 and 4.13).
//!
//! Paging policy, as assumed by the analysis:
//! * **no prefetch** -- a block is paged in only when a byte on it must be
//!   read (a pop touching it, or a push landing mid-block after a truncate);
//! * page-out happens only when a frame must be reclaimed, and writes only if
//!   the frame is dirty;
//! * replacement prefers frames *above* the access point (their contents have
//!   been consumed), else the deepest frame (top-of-stack blocks stay hot).
//!
//! All paging goes through [`Disk::read_block`] / [`Disk::write_block`], so
//! when the disk has a buffer pool enabled ([`Disk::enable_cache`]) the
//! stack's repaging of hot boundary blocks is absorbed by the pool: logical
//! counts (the lemmas' quantities) are unchanged, physical transfers shrink.

use std::rc::Rc;

use crate::budget::{FrameGuard, MemoryBudget};
use crate::device::Disk;
use crate::error::{ExtError, Result};
use crate::extent::Extent;
use crate::stats::IoCat;

struct ResidentBlock {
    idx: usize,
    buf: Vec<u8>,
    dirty: bool,
}

/// A byte stack paged over device blocks.
pub struct ExtStack {
    disk: Rc<Disk>,
    cat: IoCat,
    _frames: FrameGuard,
    max_resident: usize,
    bs: usize,
    /// Block ids for indices `0..ceil(len/bs)`; only grows/shrinks at the top.
    blocks: Vec<u64>,
    len: u64,
    resident: Vec<ResidentBlock>,
}

impl ExtStack {
    /// A stack charging its paging to `cat`, with `resident_frames` block
    /// frames reserved from `budget` (the paper requires >= 2 for the path
    /// stack and >= 1 for the data and output-location stacks).
    pub fn new(
        disk: Rc<Disk>,
        budget: &MemoryBudget,
        cat: IoCat,
        resident_frames: usize,
    ) -> Result<Self> {
        assert!(resident_frames >= 1, "a stack needs at least one resident frame");
        let frames = budget.reserve(resident_frames)?;
        let bs = disk.block_size();
        Ok(Self {
            disk,
            cat,
            _frames: frames,
            max_resident: resident_frames,
            bs,
            blocks: Vec::new(),
            len: 0,
            resident: Vec::new(),
        })
    }

    /// Current length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if the stack holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of device blocks currently backing the stack.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    fn find_resident(&self, idx: usize) -> Option<usize> {
        self.resident.iter().position(|r| r.idx == idx)
    }

    fn evict_for(&mut self, incoming_idx: usize) -> Result<()> {
        if self.resident.len() < self.max_resident {
            return Ok(());
        }
        // Prefer the frame farthest above the access point (already
        // consumed); otherwise the deepest frame below it.
        let victim = self
            .resident
            .iter()
            .enumerate()
            .filter(|(_, r)| r.idx > incoming_idx)
            .max_by_key(|(_, r)| r.idx)
            .map(|(i, _)| i)
            .or_else(|| {
                self.resident.iter().enumerate().min_by_key(|(_, r)| r.idx).map(|(i, _)| i)
            });
        // The resident set was checked full above, so non-empty; if it ever
        // were empty there is nothing to evict.
        let Some(victim) = victim else { return Ok(()) };
        let r = self.resident.swap_remove(victim);
        if r.dirty {
            self.disk.write_block(self.blocks[r.idx], &r.buf, self.cat)?;
        }
        Ok(())
    }

    /// Make block `idx` resident, paging it in from the device if needed.
    fn ensure_resident(&mut self, idx: usize) -> Result<usize> {
        if let Some(pos) = self.find_resident(idx) {
            return Ok(pos);
        }
        self.evict_for(idx)?;
        let mut buf = vec![0u8; self.bs];
        self.disk.read_block(self.blocks[idx], &mut buf, self.cat)?;
        self.resident.push(ResidentBlock { idx, buf, dirty: false });
        Ok(self.resident.len() - 1)
    }

    /// Append a brand-new top block (no I/O: nothing to page in).
    fn push_new_block(&mut self) -> Result<usize> {
        let idx = self.blocks.len();
        self.evict_for(idx)?;
        self.blocks.push(self.disk.alloc_block());
        self.resident.push(ResidentBlock { idx, buf: vec![0u8; self.bs], dirty: false });
        Ok(self.resident.len() - 1)
    }

    /// Push `data` onto the stack.
    pub fn push(&mut self, mut data: &[u8]) -> Result<()> {
        while !data.is_empty() {
            let off = (self.len % self.bs as u64) as usize;
            let bidx = (self.len / self.bs as u64) as usize;
            let pos = if off == 0 {
                debug_assert_eq!(bidx, self.blocks.len());
                self.push_new_block()?
            } else {
                // Mid-block push: the block exists; after a truncate it may
                // have been paged out, in which case this pages it back in
                // (the "+x" term of Lemma 4.10).
                self.ensure_resident(bidx)?
            };
            let take = (self.bs - off).min(data.len());
            self.resident[pos].buf[off..off + take].copy_from_slice(&data[..take]);
            self.resident[pos].dirty = true;
            self.len += take as u64;
            data = &data[take..];
        }
        Ok(())
    }

    /// Pop the top `n` bytes, returned in forward (bottom-to-top) order.
    pub fn pop(&mut self, n: usize) -> Result<Vec<u8>> {
        if n as u64 > self.len {
            return Err(ExtError::StackUnderflow { wanted: n, len: self.len as usize });
        }
        let start = self.len - n as u64;
        let mut out = vec![0u8; n];
        let bs = self.bs as u64;
        let mut end = self.len;
        while end > start {
            let last = end - 1;
            let bidx = (last / bs) as usize;
            let block_lo = bidx as u64 * bs;
            let lo = start.max(block_lo);
            let pos = self.ensure_resident(bidx)?;
            let src = &self.resident[pos].buf[(lo - block_lo) as usize..(end - block_lo) as usize];
            out[(lo - start) as usize..(end - start) as usize].copy_from_slice(src);
            end = lo;
        }
        self.truncate(start)?;
        Ok(out)
    }

    /// Discard all bytes at or above offset `new_len`, freeing whole blocks.
    pub fn truncate(&mut self, new_len: u64) -> Result<()> {
        if new_len > self.len {
            return Err(ExtError::StackUnderflow {
                wanted: new_len as usize,
                len: self.len as usize,
            });
        }
        let keep_blocks = (new_len as usize).div_ceil(self.bs);
        while self.blocks.len() > keep_blocks {
            let idx = self.blocks.len() - 1;
            if let Some(pos) = self.find_resident(idx) {
                self.resident.swap_remove(pos);
            }
            let Some(id) = self.blocks.pop() else { break };
            self.disk.free_block(id)?;
        }
        self.len = new_len;
        Ok(())
    }

    /// Write all dirty resident frames back to the device, so the backing
    /// blocks can be read through an independent cursor (see
    /// [`ExtStack::range_extent`]).
    pub fn flush(&mut self) -> Result<()> {
        for r in &mut self.resident {
            if r.dirty {
                self.disk.write_block(self.blocks[r.idx], &r.buf, self.cat)?;
                r.dirty = false;
            }
        }
        Ok(())
    }

    /// Flush and expose the stack's backing storage as an [`Extent`], so a
    /// byte range (e.g. a complete subtree, Figure 4 line 10) can be streamed
    /// with an `ExtentReader`/`ExtentRevCursor` without materializing it.
    pub fn range_extent(&mut self) -> Result<Extent> {
        self.flush()?;
        Ok(Extent::from_raw(self.blocks.clone(), self.len))
    }

    /// Push a little-endian `u64` (fixed 8-byte entry).
    pub fn push_u64(&mut self, v: u64) -> Result<()> {
        self.push(&v.to_le_bytes())
    }

    /// Pop a little-endian `u64`.
    pub fn pop_u64(&mut self) -> Result<u64> {
        let b = self.pop(8)?;
        let arr: [u8; 8] = b
            .try_into()
            .map_err(|_| ExtError::Corrupt("stack pop(8) returned a different width".into()))?;
        Ok(u64::from_le_bytes(arr))
    }

    /// Push a little-endian `u32` (fixed 4-byte entry).
    pub fn push_u32(&mut self, v: u32) -> Result<()> {
        self.push(&v.to_le_bytes())
    }

    /// Pop a little-endian `u32`.
    pub fn pop_u32(&mut self) -> Result<u32> {
        let b = self.pop(4)?;
        let arr: [u8; 4] = b
            .try_into()
            .map_err(|_| ExtError::Corrupt("stack pop(4) returned a different width".into()))?;
        Ok(u32::from_le_bytes(arr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extent::{ByteReader, ExtentReader};

    fn setup(bs: usize, frames: usize) -> (Rc<Disk>, MemoryBudget) {
        (Disk::new_mem(bs), MemoryBudget::new(frames))
    }

    #[test]
    fn push_pop_roundtrip_within_one_block() {
        let (disk, budget) = setup(64, 2);
        let mut s = ExtStack::new(disk, &budget, IoCat::PathStack, 1).unwrap();
        s.push(b"hello").unwrap();
        s.push(b" world").unwrap();
        assert_eq!(s.len(), 11);
        assert_eq!(s.pop(6).unwrap(), b" world");
        assert_eq!(s.pop(5).unwrap(), b"hello");
        assert!(s.is_empty());
    }

    #[test]
    fn pop_more_than_len_underflows() {
        let (disk, budget) = setup(16, 2);
        let mut s = ExtStack::new(disk, &budget, IoCat::PathStack, 1).unwrap();
        s.push(b"abc").unwrap();
        assert!(matches!(s.pop(4), Err(ExtError::StackUnderflow { wanted: 4, len: 3 })));
    }

    #[test]
    fn deep_stack_pages_out_and_back_in() {
        let (disk, budget) = setup(16, 4);
        let mut s = ExtStack::new(disk.clone(), &budget, IoCat::DataStack, 1).unwrap();
        let data: Vec<u8> = (0..200u8).collect();
        s.push(&data).unwrap();
        assert!(s.num_blocks() > 1);
        // Everything comes back in order despite paging with a single frame.
        let back = s.pop(200).unwrap();
        assert_eq!(back, data);
        let snap = disk.stats().snapshot();
        assert!(snap.writes(IoCat::DataStack) > 0, "deep pushes must page out");
        assert!(snap.reads(IoCat::DataStack) > 0, "deep pops must page in");
    }

    #[test]
    fn u64_and_u32_entry_helpers() {
        let (disk, budget) = setup(8, 2); // entries straddle tiny blocks
        let mut s = ExtStack::new(disk, &budget, IoCat::OutLocStack, 1).unwrap();
        for i in 0..50u64 {
            s.push_u64(i * 3).unwrap();
            s.push_u32(i as u32).unwrap();
        }
        for i in (0..50u64).rev() {
            assert_eq!(s.pop_u32().unwrap(), i as u32);
            assert_eq!(s.pop_u64().unwrap(), i * 3);
        }
    }

    #[test]
    fn truncate_frees_blocks_and_push_resumes_mid_block() {
        let (disk, budget) = setup(16, 4);
        let mut s = ExtStack::new(disk.clone(), &budget, IoCat::DataStack, 1).unwrap();
        s.push(&[1u8; 100]).unwrap();
        let blocks_before = s.num_blocks();
        s.truncate(10).unwrap();
        assert_eq!(s.len(), 10);
        assert!(s.num_blocks() < blocks_before);
        s.push(b"XY").unwrap();
        let tail = s.pop(3).unwrap();
        assert_eq!(tail, [1, b'X', b'Y']);
    }

    #[test]
    fn range_extent_streams_an_interior_range() {
        let (disk, budget) = setup(16, 4);
        let mut s = ExtStack::new(disk.clone(), &budget, IoCat::DataStack, 1).unwrap();
        let data: Vec<u8> = (0..120u8).collect();
        s.push(&data).unwrap();
        let ext = s.range_extent().unwrap();
        let mut r = ExtentReader::new(disk, &budget, &ext, IoCat::DataStack).unwrap();
        r.seek(40);
        let mut mid = [0u8; 50];
        r.read_exact(&mut mid).unwrap();
        assert_eq!(&mid[..], &data[40..90]);
        // The stack itself is untouched by the range read.
        assert_eq!(s.len(), 120);
        assert_eq!(s.pop(1).unwrap(), [119]);
    }

    #[test]
    fn lifo_workload_with_two_frames_stays_cheap() {
        // Pure LIFO traffic that oscillates inside the top two blocks should
        // cause no paging at all once both are resident.
        let (disk, budget) = setup(32, 4);
        let mut s = ExtStack::new(disk.clone(), &budget, IoCat::PathStack, 2).unwrap();
        s.push(&[0u8; 48]).unwrap(); // top two blocks resident
        let before = disk.stats().snapshot();
        for _ in 0..1000 {
            s.push(&[1u8; 8]).unwrap();
            s.pop(8).unwrap();
        }
        let delta = disk.stats().snapshot().since(&before);
        assert_eq!(delta.grand_total(), 0, "oscillation within resident frames must be free");
    }

    #[test]
    fn paging_cost_of_full_sweep_is_linear_in_blocks() {
        let (disk, budget) = setup(32, 2);
        let mut s = ExtStack::new(disk.clone(), &budget, IoCat::DataStack, 1).unwrap();
        let n_bytes = 32 * 50;
        s.push(&vec![9u8; n_bytes]).unwrap();
        let snap = disk.stats().snapshot();
        // 50 blocks, one frame: all but the top block paged out exactly once.
        assert_eq!(snap.writes(IoCat::DataStack), 49);
        s.pop(n_bytes).unwrap();
        let snap = disk.stats().snapshot();
        assert_eq!(snap.reads(IoCat::DataStack), 49, "each paged-out block read back once");
    }

    #[test]
    fn stack_matches_vec_model_under_random_program() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let (disk, budget) = setup(8, 4);
        let mut s = ExtStack::new(disk, &budget, IoCat::DataStack, 2).unwrap();
        let mut model: Vec<u8> = Vec::new();
        for step in 0..2000 {
            if model.is_empty() || rng.gen_bool(0.55) {
                let n = rng.gen_range(1..20);
                let data: Vec<u8> = (0..n).map(|i| (step + i) as u8).collect();
                s.push(&data).unwrap();
                model.extend_from_slice(&data);
            } else {
                let n = rng.gen_range(1..=model.len().min(25));
                let got = s.pop(n).unwrap();
                let expect: Vec<u8> = model.split_off(model.len() - n);
                assert_eq!(got, expect, "mismatch at step {step}");
            }
            assert_eq!(s.len(), model.len() as u64);
        }
    }

    #[test]
    fn frames_come_from_the_budget() {
        let (disk, budget) = setup(8, 3);
        let _a = ExtStack::new(disk.clone(), &budget, IoCat::PathStack, 2).unwrap();
        assert_eq!(budget.used_frames(), 2);
        assert!(ExtStack::new(disk, &budget, IoCat::DataStack, 2).is_err());
    }

    #[test]
    fn flush_makes_blocks_readable_and_is_idempotent() {
        let (disk, budget) = setup(16, 4);
        let mut s = ExtStack::new(disk.clone(), &budget, IoCat::DataStack, 2).unwrap();
        s.push(&[5u8; 40]).unwrap();
        s.flush().unwrap();
        let w1 = disk.stats().snapshot().writes(IoCat::DataStack);
        s.flush().unwrap(); // nothing dirty: free
        let w2 = disk.stats().snapshot().writes(IoCat::DataStack);
        assert_eq!(w1, w2);
    }

    #[test]
    fn boundary_ping_pong_repaging_is_absorbed_by_a_buffer_pool() {
        // A pop/push cycle straddling a block boundary with one resident
        // frame repages the boundary block every cycle (the "+x" term of
        // Lemma 4.10). A pool absorbs those re-reads: logical paging -- the
        // lemma's quantity -- is identical, physical paging shrinks.
        let run = |disk: &Rc<Disk>| {
            let budget = MemoryBudget::new(2);
            let mut s = ExtStack::new(disk.clone(), &budget, IoCat::DataStack, 1).unwrap();
            s.push(&[7u8; 34]).unwrap(); // bs=16: two full blocks + 2 bytes
            for _ in 0..8 {
                assert_eq!(s.pop(4).unwrap(), [7u8; 4]);
                s.push(&[7u8; 4]).unwrap();
            }
            assert_eq!(s.pop(34).unwrap(), [7u8; 34]);
        };
        let plain = Disk::new_mem(16);
        run(&plain);
        let cached = Disk::new_mem(16);
        let cache_budget = MemoryBudget::new(4);
        cached
            .enable_cache(&cache_budget, 4, crate::CachePolicy::Lru, crate::WriteMode::Through)
            .unwrap();
        run(&cached);
        let p = plain.stats().snapshot();
        let c = cached.stats().snapshot();
        assert_eq!(p.reads(IoCat::DataStack), c.reads(IoCat::DataStack));
        assert_eq!(p.writes(IoCat::DataStack), c.writes(IoCat::DataStack));
        assert!(
            c.phys_reads(IoCat::DataStack) < c.reads(IoCat::DataStack),
            "boundary re-reads must hit the pool: {} phys vs {} logical",
            c.phys_reads(IoCat::DataStack),
            c.reads(IoCat::DataStack)
        );
    }
}
