//! # nexsort-extmem
//!
//! External-memory substrate for the NEXSORT reproduction (Silberstein &
//! Yang, *NEXSORT: Sorting XML in External Memory*, ICDE 2004).
//!
//! The paper implements NEXSORT and its external-merge-sort baseline on TPIE
//! to obtain explicit control and accounting of block I/Os under a bounded
//! internal memory. This crate rebuilds that substrate from scratch:
//!
//! * [`Disk`] / [`BlockDevice`]: a block device (in-memory or file-backed)
//!   whose every transfer is tagged with an [`IoCat`] and counted in
//!   [`IoStats`], reproducing the cost breakdown of Section 4.2;
//! * [`MemoryBudget`]: the model's `M` blocks of internal memory, enforced
//!   via RAII frame reservations (Figure 5 sweeps exactly this knob);
//! * [`Extent`] with forward/backward/append cursors: sequential storage at
//!   `ceil(L/B)` I/Os per pass;
//! * [`ExtStack`]: externally-paged stacks with the paper's no-prefetch
//!   policy (data, path, and output-location stacks of Section 3.1);
//! * [`RunStore`]: sorted runs linked by pointers into a tree (Figure 3);
//! * [`KWayMerger`]: the merging engine for external merge sort;
//! * [`FaultyDevice`] / [`ChecksummedDevice`] / [`RetryPolicy`]: deterministic
//!   fault injection, corruption detection, and transparent retry of
//!   transient failures (see the [`fault`](crate::FaultPlan) types);
//! * the pinning buffer pool ([`Disk::enable_cache`], [`PinGuard`],
//!   [`CachePolicy`], [`WriteMode`]): an optional page cache between the
//!   accounting layer and the device, so *physical* transfers can drop below
//!   the *logical* transfers the paper's analysis counts;
//! * the asynchronous I/O scheduler ([`Disk::enable_sched`], [`SchedConfig`],
//!   [`StripedDevice`]): sequential read-ahead into the pool, write-behind
//!   with barrier semantics, and round-robin striping over independently
//!   faultable devices -- all modeled in deterministic virtual time;
//! * the crash-consistency layer ([`Journal`], [`recover`], [`CrashDevice`]):
//!   a write-ahead manifest journal whose commit records land only after an
//!   I/O barrier, replay with strict torn-tail rules, free-map
//!   reconciliation, and a deterministic crash-point injector.
//!
//! Everything here is deliberately single-threaded (`Rc`/`Cell`). The I/O
//! scheduler models worker overlap in deterministic virtual time rather than
//! OS threads, so the paper's sequential logical I/O accounting -- and every
//! run's bit-for-bit reproducibility -- survives intact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arbiter;
mod budget;
mod build;
mod device;
mod error;
mod extent;
mod fault;
mod journal;
mod kway;
pub mod locksan;
mod pool;
mod recovery;
mod repair;
mod run_store;
mod sched;
mod shadow;
mod stack;
mod stats;

pub use arbiter::{BudgetArbiter, BudgetLease};
pub use budget::{FrameGuard, MemoryBudget};
pub use build::{BuildError, DiskBuilder, DiskStack};
pub use device::{BlockDevice, Disk, FileDevice, MemDevice, TraceEntry};
pub use error::{ExtError, Result};
pub use extent::{
    ByteReader, ByteSink, Extent, ExtentReader, ExtentRevCursor, ExtentWriter, SliceReader,
};
pub use fault::{
    ChecksummedDevice, CrashController, CrashDevice, CrashPlan, DeviceHealth, DiskFailure,
    FaultCounts, FaultInjector, FaultKind, FaultPlan, FaultyDevice, IoPhase, NetFaultCounts,
    NetFaultKind, NetFaultPlan, NetFaultState, NetRetryPolicy, RetryPolicy,
};
pub use journal::{Journal, JournalRecord, JournalStats};
pub use kway::{KWayMerger, MergeStream, VecStream};
pub use pool::{
    CachePolicy, ClockPolicy, EvictionPolicy, LruPolicy, PinGuard, PinMutGuard, WriteMode,
};
pub use recovery::{fold_records, recover, RecoveredState};
pub use repair::{RunParity, RunReader, ScrubReport};
pub use run_store::{RunId, RunStore, RunWriter};
pub use sched::{SchedConfig, StripedDevice};
pub use shadow::ShadowState;
pub use stack::ExtStack;
pub use stats::{CacheEvent, IoCat, IoSnapshot, IoStats, SchedEvent};
