//! Crash recovery: journal replay, state folding, and free-map reconciliation.
//!
//! After a crash (real or injected by [`CrashDevice`](crate::CrashDevice)),
//! the device holds: the journal extent, the input, every data write that
//! landed before the crash -- committed or not -- and an allocator whose
//! live set includes blocks the interrupted sort leaked. [`recover`] turns
//! that into a consistent picture:
//!
//! 1. discard all volatile I/O state ([`Disk::purge_volatile`]) -- after a
//!    crash, the device image is the only truth;
//! 2. locate and replay the journal (strict torn-tail rules, see
//!    [`journal`](crate::journal)), keeping records up to the last commit;
//! 3. fold the committed records into a [`RecoveredState`]: which sealed
//!    runs survive, the pending-merge order, and how far the sort got;
//! 4. reconcile the allocator: every live block not owned by the journal,
//!    a surviving run, or the caller's protected extents (input,
//!    dictionary) was leaked by the crash and is freed.
//!
//! Everything here runs under [`IoPhase::Recovery`] so the I/O it performs
//! is attributed separately in the stats and in failure reports.

use std::collections::BTreeMap;
use std::rc::Rc;

use crate::device::Disk;
use crate::error::Result;
use crate::extent::Extent;
use crate::fault::IoPhase;
use crate::journal::{Journal, JournalRecord, JournalStats};
use crate::repair::RunParity;

/// The committed state of a sort, reconstructed from the journal.
#[derive(Debug, Default)]
pub struct RecoveredState {
    /// Input length recorded at sort start (identity check on resume).
    pub input_len: u64,
    /// Surviving sealed runs: original store token -> extent plus the run's
    /// parity metadata (if sealed with redundancy). Runs consumed by a
    /// committed merge pass or discarded are gone.
    pub runs: Vec<(u32, Extent, Option<RunParity>)>,
    /// Pending-merge order: present once the scan phase was sealed, then
    /// updated per committed merge pass (consumed head removed, output
    /// appended) -- exactly the order the merge loop would hold in memory.
    pub pending: Option<Vec<u32>>,
    /// Number of merge passes whose commit record landed.
    pub committed_passes: u32,
    /// Progress counters from the most recent phase seal.
    pub stats: JournalStats,
    /// Set when the scan phase was sealed: resume skips straight to merging.
    pub scan_done: bool,
    /// Set when the sort finished: `(root token, root_flat)`. Resume then
    /// has nothing to redo at all.
    pub sort_done: Option<(u32, bool)>,
}

impl RecoveredState {
    /// Fold one committed journal record into the state.
    fn apply(&mut self, rec: JournalRecord, live: &mut BTreeMap<u32, (Extent, Option<RunParity>)>) {
        match rec {
            JournalRecord::SortStarted { input_len } => self.input_len = input_len,
            JournalRecord::RunSealed { token, len, blocks, parity } => {
                let mut ext = Extent::empty();
                ext.set_raw(blocks, len);
                live.insert(token, (ext, parity));
            }
            JournalRecord::MergePassStarted { .. } => {}
            JournalRecord::MergePassCommitted { pass, output, consumed } => {
                self.committed_passes = self.committed_passes.max(pass);
                for t in &consumed {
                    live.remove(t);
                }
                if let Some(pending) = self.pending.as_mut() {
                    pending.retain(|t| !consumed.contains(t));
                    pending.push(output);
                }
            }
            JournalRecord::RunDiscarded { token } => {
                live.remove(&token);
                if let Some(pending) = self.pending.as_mut() {
                    pending.retain(|&t| t != token);
                }
            }
            JournalRecord::ScanDone { pending, stats } => {
                self.scan_done = true;
                self.pending = Some(pending);
                self.stats = stats;
            }
            JournalRecord::SortDone { root, root_flat, stats } => {
                self.sort_done = Some((root, root_flat));
                self.stats = stats;
            }
            JournalRecord::Commit => {}
        }
    }
}

/// Fold a committed record sequence (as returned by [`Journal::replay`])
/// into a [`RecoveredState`].
pub fn fold_records(records: Vec<JournalRecord>) -> RecoveredState {
    let mut state = RecoveredState::default();
    let mut live: BTreeMap<u32, (Extent, Option<RunParity>)> = BTreeMap::new();
    for rec in records {
        state.apply(rec, &mut live);
    }
    state.runs = live.into_iter().map(|(t, (ext, par))| (t, ext, par)).collect();
    state
}

/// Recover `disk` after a crash: purge volatile state, replay the journal,
/// fold the committed state, and free every leaked block. `protect` names
/// blocks recovery must keep even though no journal record owns them --
/// the input extent and any side structures (dictionary, spec) the resumed
/// sort still reads.
///
/// Returns `None` when the disk carries no journal (nothing to recover);
/// otherwise the positioned [`Journal`] (ready for further appends) and the
/// folded state. Runs under [`IoPhase::Recovery`].
pub fn recover(disk: &Rc<Disk>, protect: &[u64]) -> Result<Option<(Journal, RecoveredState)>> {
    let saved_phase = disk.phase();
    disk.set_phase(IoPhase::Recovery);
    let result = recover_inner(disk, protect);
    disk.set_phase(saved_phase);
    result
}

fn recover_inner(disk: &Rc<Disk>, protect: &[u64]) -> Result<Option<(Journal, RecoveredState)>> {
    disk.purge_volatile();
    let Some(mut journal) = Journal::locate(disk)? else {
        return Ok(None);
    };
    let state = fold_records(journal.replay()?);
    // Reconcile the allocator: a live block belongs to the journal, a
    // surviving run, or a protected extent -- anything else was leaked by
    // the interrupted sort (an unsealed run, uncommitted merge output, a
    // stack page) and is freed for reuse.
    let mut owned: std::collections::BTreeSet<u64> = journal.blocks().iter().copied().collect();
    for (_, ext, par) in &state.runs {
        owned.extend(ext.blocks().iter().copied());
        if let Some(par) = par {
            // Parity blocks are journal-owned too: freeing them would strip
            // the surviving runs of their redundancy.
            owned.extend(par.parity.iter().copied());
        }
    }
    owned.extend(protect.iter().copied());
    for id in disk.live_blocks() {
        if !owned.contains(&id) {
            disk.free_block(id)?;
        }
    }
    Ok(Some((journal, state)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::IoCat;

    #[test]
    fn fold_tracks_runs_pending_and_phases() {
        let stats = JournalStats { n_records: 9, ..JournalStats::default() };
        let records = vec![
            JournalRecord::SortStarted { input_len: 100 },
            JournalRecord::RunSealed { token: 0, len: 10, blocks: vec![3], parity: None },
            JournalRecord::RunSealed { token: 1, len: 10, blocks: vec![4], parity: None },
            JournalRecord::RunSealed { token: 2, len: 10, blocks: vec![5], parity: None },
            JournalRecord::ScanDone { pending: vec![0, 1, 2], stats },
            JournalRecord::Commit,
            JournalRecord::MergePassStarted { pass: 1 },
            JournalRecord::RunSealed { token: 3, len: 20, blocks: vec![6, 7], parity: None },
            JournalRecord::MergePassCommitted { pass: 1, output: 3, consumed: vec![0, 1] },
            JournalRecord::Commit,
        ];
        let state = fold_records(records);
        assert_eq!(state.input_len, 100);
        assert!(state.scan_done);
        assert_eq!(state.sort_done, None);
        assert_eq!(state.committed_passes, 1);
        assert_eq!(state.stats.n_records, 9);
        // Runs 0 and 1 were consumed; 2 and the pass-1 output 3 survive.
        let tokens: Vec<u32> = state.runs.iter().map(|&(t, _, _)| t).collect();
        assert_eq!(tokens, vec![2, 3]);
        // The pending order continues exactly where the merge loop left off.
        assert_eq!(state.pending, Some(vec![2, 3]));
    }

    #[test]
    fn recover_frees_leaked_blocks_but_keeps_owned_ones() {
        let disk = crate::Disk::new_mem(64);
        // "Input": two protected blocks.
        let input: Vec<u64> = (0..2).map(|_| disk.alloc_block()).collect();
        for &b in &input {
            disk.write_block(b, &[1; 64], IoCat::InputRead).unwrap();
        }
        let mut journal = Journal::create(&disk, 4).unwrap();
        // A committed sealed run...
        let run_block = disk.alloc_block();
        disk.write_block(run_block, &[2; 64], IoCat::RunWrite).unwrap();
        journal
            .checkpoint(&[
                JournalRecord::SortStarted { input_len: 128 },
                JournalRecord::RunSealed {
                    token: 0,
                    len: 64,
                    blocks: vec![run_block],
                    parity: None,
                },
            ])
            .unwrap();
        // ...and two leaked blocks from an "interrupted" write.
        let leak_a = disk.alloc_block();
        let leak_b = disk.alloc_block();
        disk.write_block(leak_a, &[3; 64], IoCat::SortScratch).unwrap();
        drop(journal);

        let live_before = disk.live_blocks().len();
        let (journal, state) = recover(&disk, &input).unwrap().expect("journal present");
        assert_eq!(state.input_len, 128);
        assert_eq!(state.runs.len(), 1);
        assert_eq!(state.runs[0].0, 0);
        let live_after: Vec<u64> = disk.live_blocks();
        assert_eq!(live_after.len(), live_before - 2, "exactly the two leaks were freed");
        assert!(!live_after.contains(&leak_a) && !live_after.contains(&leak_b));
        assert!(live_after.contains(&run_block));
        assert!(input.iter().all(|b| live_after.contains(b)));
        assert!(journal.blocks().iter().all(|b| live_after.contains(b)));
        // Recovery I/O was attributed to the RECOVERY phase.
        assert!(disk.stats().snapshot().reads(IoCat::Journal) > 0);
    }

    #[test]
    fn recover_keeps_parity_blocks_of_surviving_runs() {
        let disk = crate::Disk::new_mem(64);
        let mut journal = Journal::create(&disk, 4).unwrap();
        let data_block = disk.alloc_block();
        let parity_block = disk.alloc_block();
        disk.write_block(data_block, &[2; 64], IoCat::RunWrite).unwrap();
        disk.write_block(parity_block, &[2; 64], IoCat::Parity).unwrap();
        journal
            .checkpoint(&[JournalRecord::RunSealed {
                token: 0,
                len: 64,
                blocks: vec![data_block],
                parity: Some(RunParity { group: 1, parity: vec![parity_block], sums: vec![7] }),
            }])
            .unwrap();
        drop(journal);
        let (_j, state) = recover(&disk, &[]).unwrap().unwrap();
        assert_eq!(state.runs[0].2.as_ref().unwrap().parity, vec![parity_block]);
        let live = disk.live_blocks();
        assert!(live.contains(&parity_block), "parity block survived reconciliation");
        assert!(live.contains(&data_block));
    }

    #[test]
    fn recover_on_a_journal_less_disk_is_none() {
        let disk = crate::Disk::new_mem(64);
        let b = disk.alloc_block();
        disk.write_block(b, &[9; 64], IoCat::RunWrite).unwrap();
        assert!(recover(&disk, &[]).unwrap().is_none());
        assert!(disk.live_blocks().contains(&b), "nothing is freed without a journal");
    }

    #[test]
    fn sort_done_state_round_trips() {
        let disk = crate::Disk::new_mem(64);
        let mut journal = Journal::create(&disk, 4).unwrap();
        let root_block = disk.alloc_block();
        journal
            .checkpoint(&[
                JournalRecord::SortStarted { input_len: 10 },
                JournalRecord::RunSealed {
                    token: 0,
                    len: 64,
                    blocks: vec![root_block],
                    parity: None,
                },
                JournalRecord::SortDone {
                    root: 0,
                    root_flat: true,
                    stats: JournalStats { n_records: 3, ..JournalStats::default() },
                },
            ])
            .unwrap();
        drop(journal);
        let (_j, state) = recover(&disk, &[]).unwrap().unwrap();
        assert_eq!(state.sort_done, Some((0, true)));
        assert_eq!(state.stats.n_records, 3);
        assert_eq!(state.runs.len(), 1);
    }
}
