//! The pinning buffer pool (page cache) between [`Disk`] and its device.
//!
//! The paper's analysis gives the algorithm `M` blocks of internal memory and
//! counts every block transfer; our substrate routes all of those transfers
//! through [`Disk`](crate::Disk). This module adds the layer a production
//! engine puts exactly there: a pool of block frames that absorbs re-reads of
//! hot blocks (stack tops, run directory pages, merge fan-in frames) so that
//! *physical* device transfers can drop below the *logical* transfer count
//! the paper analyses -- without changing the logical count at all.
//!
//! Structure:
//!
//! * [`PoolCore`] owns the frames (reserved from a
//!   [`MemoryBudget`](crate::MemoryBudget) via a RAII
//!   [`FrameGuard`](crate::FrameGuard)) and the block -> frame index;
//! * eviction is pluggable behind [`EvictionPolicy`], with [`LruPolicy`] and
//!   [`ClockPolicy`] provided and selectable by [`CachePolicy`];
//! * writes follow a [`WriteMode`]: write-through keeps the device current on
//!   every logical write, write-back defers dirty frames to eviction or an
//!   explicit flush;
//! * [`PinGuard`] / [`PinMutGuard`] give RAII access to a resident frame;
//!   a pinned frame is never chosen as an eviction victim.
//!
//! Determinism matters as much as performance here: the fault layer under
//! the pool injects faults by physical operation index, so victim selection
//! and flush order must be reproducible. The index is a `BTreeMap` and all
//! bulk operations iterate in block order; policies are deterministic.

use std::cell::{Ref, RefCell, RefMut};
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;
use std::str::FromStr;

use crate::budget::FrameGuard;
use crate::device::Disk;
use crate::error::{ExtError, Result};
use crate::stats::IoCat;

/// Which eviction policy a pool uses; the CLI-facing selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CachePolicy {
    /// Least-recently-used: evict the frame untouched the longest.
    #[default]
    Lru,
    /// CLOCK (second chance): one reference bit per frame and a sweeping
    /// hand; a cheap LRU approximation with O(1) metadata per access.
    Clock,
}

impl CachePolicy {
    /// Short name used in flags and reports.
    pub fn name(self) -> &'static str {
        match self {
            CachePolicy::Lru => "lru",
            CachePolicy::Clock => "clock",
        }
    }

    /// Instantiate the policy for a pool of `frames` slots.
    pub fn build(self, frames: usize) -> Box<dyn EvictionPolicy> {
        match self {
            CachePolicy::Lru => Box::new(LruPolicy::new(frames)),
            CachePolicy::Clock => Box::new(ClockPolicy::new(frames)),
        }
    }
}

impl fmt::Display for CachePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for CachePolicy {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, String> {
        match s {
            "lru" => Ok(CachePolicy::Lru),
            "clock" => Ok(CachePolicy::Clock),
            other => Err(format!("unknown cache policy {other:?} (expected lru or clock)")),
        }
    }
}

/// When a logical write reaches the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WriteMode {
    /// Every logical write is written to the device immediately; frames only
    /// serve re-reads. The device (and its checksum layer) is always current.
    #[default]
    Through,
    /// Logical writes land in the frame and are marked dirty; the device
    /// sees them at eviction or at an explicit
    /// [`Disk::cache_flush_all`](crate::Disk::cache_flush_all). Coalesces
    /// repeated writes to the same block into one physical transfer.
    Back,
}

impl WriteMode {
    /// Short name used in flags and reports.
    pub fn name(self) -> &'static str {
        match self {
            WriteMode::Through => "write-through",
            WriteMode::Back => "write-back",
        }
    }
}

impl fmt::Display for WriteMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Chooses eviction victims among a pool's frame slots.
///
/// The pool calls `on_insert` when a block is installed in a slot,
/// `on_access` on every hit, and `on_remove` when a slot is evicted or
/// invalidated. `pick_victim` is consulted only when every slot is occupied;
/// `evictable(slot)` is false for pinned frames, which must never be chosen.
/// Implementations must be deterministic: the fault-injection layer below
/// the pool schedules faults by physical operation index.
pub trait EvictionPolicy {
    /// The policy's report name.
    fn name(&self) -> &'static str;
    /// A block was installed in `slot`.
    fn on_insert(&mut self, slot: usize);
    /// The frame in `slot` was accessed (hit).
    fn on_access(&mut self, slot: usize);
    /// The frame in `slot` was evicted or invalidated.
    fn on_remove(&mut self, slot: usize);
    /// Choose an occupied, evictable slot to evict, or `None` if every
    /// candidate is pinned.
    fn pick_victim(&mut self, evictable: &dyn Fn(usize) -> bool) -> Option<usize>;
}

/// Exact least-recently-used eviction: every insert/access stamps the slot
/// with a monotone tick; the victim is the evictable slot with the smallest
/// stamp. O(frames) per eviction, O(1) per access -- fine at the pool sizes
/// the model considers (a slice of `M`).
#[derive(Debug)]
pub struct LruPolicy {
    stamps: Vec<u64>,
    tick: u64,
}

const VACANT: u64 = u64::MAX;

impl LruPolicy {
    /// A policy for a pool of `frames` slots.
    pub fn new(frames: usize) -> Self {
        Self { stamps: vec![VACANT; frames], tick: 0 }
    }

    fn touch(&mut self, slot: usize) {
        self.stamps[slot] = self.tick;
        self.tick += 1;
    }
}

impl EvictionPolicy for LruPolicy {
    fn name(&self) -> &'static str {
        "lru"
    }

    fn on_insert(&mut self, slot: usize) {
        self.touch(slot);
    }

    fn on_access(&mut self, slot: usize) {
        self.touch(slot);
    }

    fn on_remove(&mut self, slot: usize) {
        self.stamps[slot] = VACANT;
    }

    fn pick_victim(&mut self, evictable: &dyn Fn(usize) -> bool) -> Option<usize> {
        self.stamps
            .iter()
            .enumerate()
            .filter(|&(slot, &stamp)| stamp != VACANT && evictable(slot))
            .min_by_key(|&(_, &stamp)| stamp)
            .map(|(slot, _)| slot)
    }
}

/// CLOCK (second-chance) eviction: a reference bit per slot and a hand that
/// sweeps the slots, clearing set bits and evicting the first evictable slot
/// whose bit is clear.
#[derive(Debug)]
pub struct ClockPolicy {
    referenced: Vec<bool>,
    hand: usize,
}

impl ClockPolicy {
    /// A policy for a pool of `frames` slots.
    pub fn new(frames: usize) -> Self {
        Self { referenced: vec![false; frames], hand: 0 }
    }
}

impl EvictionPolicy for ClockPolicy {
    fn name(&self) -> &'static str {
        "clock"
    }

    fn on_insert(&mut self, slot: usize) {
        self.referenced[slot] = true;
    }

    fn on_access(&mut self, slot: usize) {
        self.referenced[slot] = true;
    }

    fn on_remove(&mut self, _slot: usize) {}

    fn pick_victim(&mut self, evictable: &dyn Fn(usize) -> bool) -> Option<usize> {
        let n = self.referenced.len();
        // Two sweeps clear every set bit; one more step reaches the victim.
        for _ in 0..=2 * n {
            let slot = self.hand;
            self.hand = (self.hand + 1) % n;
            if !evictable(slot) {
                continue;
            }
            if self.referenced[slot] {
                self.referenced[slot] = false;
            } else {
                return Some(slot);
            }
        }
        None
    }
}

struct Frame {
    block: u64,
    data: Rc<RefCell<Vec<u8>>>,
    /// `Some(len)`: the first `len` bytes diverge from the device and must be
    /// written back. Length tracking preserves the device contract that a
    /// write covers a prefix of the block (the checksum layer records
    /// exactly the written prefix).
    dirty_len: Option<usize>,
    /// Category the eventual writeback is charged to (the category of the
    /// logical write that dirtied the frame).
    cat: IoCat,
    pins: u32,
    /// True while the frame holds speculatively prefetched data that no
    /// logical read has consumed yet; used by the I/O scheduler to count
    /// prefetch hits vs. wasted prefetches.
    prefetched: bool,
}

/// How the pool hands out a slot for a new block (see
/// [`PoolCore::acquire_plan`]). On `Evict`, the caller performs any dirty
/// writeback *before* detaching the victim, so a failed writeback leaves the
/// pool unchanged and the error reports the victim block.
pub(crate) enum SlotAcquire {
    /// An unoccupied slot, already detached from the free list.
    Free(usize),
    /// Evict the frame in `slot` (currently holding `block`); `dirty` is the
    /// writeback obligation, `data` the frame contents.
    Evict { slot: usize, block: u64, dirty: Option<(usize, IoCat)>, data: Rc<RefCell<Vec<u8>>> },
}

/// The frame table of a buffer pool. Owned by [`Disk`](crate::Disk); all
/// physical I/O and stats accounting stay in the disk layer, keeping this
/// type purely about residency, dirtiness, pinning, and victim choice.
pub(crate) struct PoolCore {
    frames: Vec<Frame>,
    index: BTreeMap<u64, usize>,
    free: Vec<usize>,
    policy: Box<dyn EvictionPolicy>,
    mode: WriteMode,
    policy_kind: &'static str,
    _reservation: FrameGuard,
}

impl PoolCore {
    pub(crate) fn new(
        reservation: FrameGuard,
        block_size: usize,
        policy: Box<dyn EvictionPolicy>,
        mode: WriteMode,
    ) -> Self {
        let capacity = reservation.frames();
        assert!(capacity > 0, "a buffer pool needs at least one frame");
        let frames = (0..capacity)
            .map(|_| Frame {
                block: u64::MAX,
                data: Rc::new(RefCell::new(vec![0u8; block_size])),
                dirty_len: None,
                cat: IoCat::SortScratch,
                pins: 0,
                prefetched: false,
            })
            .collect();
        // Free slots are popped from the back; keep ascending order of use.
        let free = (0..capacity).rev().collect();
        let policy_kind = policy.name();
        Self {
            frames,
            index: BTreeMap::new(),
            free,
            policy,
            mode,
            policy_kind,
            _reservation: reservation,
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.frames.len()
    }

    pub(crate) fn mode(&self) -> WriteMode {
        self.mode
    }

    pub(crate) fn policy_name(&self) -> &'static str {
        self.policy_kind
    }

    /// Find `block`'s slot and record the access with the policy.
    pub(crate) fn lookup(&mut self, block: u64) -> Option<usize> {
        let slot = *self.index.get(&block)?;
        self.policy.on_access(slot);
        Some(slot)
    }

    /// Find `block`'s slot without counting an access.
    pub(crate) fn peek(&self, block: u64) -> Option<usize> {
        self.index.get(&block).copied()
    }

    pub(crate) fn slot_data(&self, slot: usize) -> Rc<RefCell<Vec<u8>>> {
        Rc::clone(&self.frames[slot].data)
    }

    pub(crate) fn slot_block(&self, slot: usize) -> u64 {
        self.frames[slot].block
    }

    /// Lowest-numbered pinned block, if any frame is pinned.
    pub(crate) fn first_pinned_block(&self) -> Option<u64> {
        self.index.iter().find(|&(_, &slot)| self.frames[slot].pins > 0).map(|(&b, _)| b)
    }

    pub(crate) fn dirty_of(&self, slot: usize) -> Option<(usize, IoCat)> {
        let f = &self.frames[slot];
        f.dirty_len.map(|len| (len, f.cat))
    }

    /// Mark the first `len` bytes of `slot` dirty, to be written back under
    /// `cat`. Widens (never shrinks) an existing dirty prefix so coalesced
    /// writes lose no data.
    pub(crate) fn mark_dirty(&mut self, slot: usize, len: usize, cat: IoCat) {
        let f = &mut self.frames[slot];
        f.dirty_len = Some(f.dirty_len.map_or(len, |old| old.max(len)));
        f.cat = cat;
    }

    pub(crate) fn clean(&mut self, slot: usize) {
        self.frames[slot].dirty_len = None;
    }

    pub(crate) fn pin(&mut self, slot: usize) {
        self.frames[slot].pins += 1;
    }

    /// Drop one pin on `block`'s frame (no-op if the block is not resident,
    /// which cannot happen while a guard is alive).
    pub(crate) fn unpin_block(&mut self, block: u64) {
        if let Some(&slot) = self.index.get(&block) {
            let f = &mut self.frames[slot];
            f.pins = f.pins.saturating_sub(1);
        }
    }

    /// Plan how to obtain a slot for a new block: a free slot if one exists,
    /// otherwise an eviction victim. Nothing is detached yet for the `Evict`
    /// case; the caller completes (or abandons) the plan.
    pub(crate) fn acquire_plan(&mut self) -> Result<SlotAcquire> {
        if let Some(slot) = self.free.pop() {
            return Ok(SlotAcquire::Free(slot));
        }
        let frames = &self.frames;
        let evictable = |slot: usize| frames[slot].pins == 0 && frames[slot].block != u64::MAX;
        match self.policy.pick_victim(&evictable) {
            Some(slot) => {
                let f = &self.frames[slot];
                Ok(SlotAcquire::Evict {
                    slot,
                    block: f.block,
                    dirty: f.dirty_len.map(|len| (len, f.cat)),
                    data: Rc::clone(&f.data),
                })
            }
            None => Err(ExtError::AllFramesPinned { frames: self.capacity() }),
        }
    }

    /// Remove the mapping of `slot` (after any writeback), leaving the slot
    /// loose for `install` or `release_slot`. Returns true when the frame
    /// still held unconsumed prefetched data (a wasted prefetch).
    pub(crate) fn detach(&mut self, slot: usize) -> bool {
        let block = self.frames[slot].block;
        self.index.remove(&block);
        self.policy.on_remove(slot);
        let f = &mut self.frames[slot];
        f.block = u64::MAX;
        f.dirty_len = None;
        f.pins = 0;
        std::mem::take(&mut f.prefetched)
    }

    /// Return a loose slot to the free list (e.g. after a failed load).
    pub(crate) fn release_slot(&mut self, slot: usize) {
        self.free.push(slot);
    }

    /// Map `block` into the loose `slot` (clean, unpinned).
    pub(crate) fn install(&mut self, slot: usize, block: u64) {
        let f = &mut self.frames[slot];
        f.block = block;
        f.dirty_len = None;
        f.pins = 0;
        f.prefetched = false;
        self.index.insert(block, slot);
        self.policy.on_insert(slot);
    }

    /// Flag `slot` as holding speculatively prefetched, not-yet-read data.
    pub(crate) fn set_prefetched(&mut self, slot: usize) {
        self.frames[slot].prefetched = true;
    }

    /// Clear and return `slot`'s prefetched flag (true exactly once, on the
    /// first logical read that consumes the prefetched frame).
    pub(crate) fn take_prefetched(&mut self, slot: usize) -> bool {
        std::mem::take(&mut self.frames[slot].prefetched)
    }

    /// Drop `block`'s frame without writing it back (the block is dead, e.g.
    /// freed). Errors if the frame is pinned. Returns true when the dropped
    /// frame held unconsumed prefetched data.
    pub(crate) fn invalidate(&mut self, block: u64) -> Result<bool> {
        if let Some(&slot) = self.index.get(&block) {
            if self.frames[slot].pins > 0 {
                return Err(ExtError::FramePinned { block });
            }
            let wasted = self.detach(slot);
            self.release_slot(slot);
            return Ok(wasted);
        }
        Ok(false)
    }

    /// Slots holding dirty frames, in ascending block order (deterministic
    /// flush order for the fault layer's operation indexing).
    pub(crate) fn dirty_slots_in_block_order(&self) -> Vec<usize> {
        self.index.values().copied().filter(|&slot| self.frames[slot].dirty_len.is_some()).collect()
    }

    /// Drop every resident frame without writing anything back, clearing any
    /// pins. Crash recovery only: after a simulated crash the device image is
    /// the authoritative state, so frame contents (dirty or not) are dead.
    pub(crate) fn purge_all(&mut self) {
        let blocks: Vec<u64> = self.index.keys().copied().collect();
        for block in blocks {
            if let Some(&slot) = self.index.get(&block) {
                self.frames[slot].pins = 0;
                self.detach(slot);
                self.release_slot(slot);
            }
        }
    }

    /// Number of resident (mapped) frames.
    pub(crate) fn resident(&self) -> usize {
        self.index.len()
    }
}

/// RAII read pin on a resident block frame (see [`Disk::pin`]).
///
/// While the guard is alive the frame cannot be evicted or invalidated;
/// dropping it unpins. The data borrow is per-call, so multiple `PinGuard`s
/// on the same block coexist.
pub struct PinGuard {
    disk: Rc<Disk>,
    block: u64,
    data: Rc<RefCell<Vec<u8>>>,
}

impl PinGuard {
    pub(crate) fn new(disk: Rc<Disk>, block: u64, data: Rc<RefCell<Vec<u8>>>) -> Self {
        Self { disk, block, data }
    }

    /// The pinned block's id.
    pub fn block(&self) -> u64 {
        self.block
    }

    /// Borrow the block contents.
    pub fn data(&self) -> Ref<'_, [u8]> {
        Ref::map(self.data.borrow(), Vec::as_slice)
    }

    /// Run `f` over the block contents.
    pub fn with<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        f(&self.data.borrow())
    }
}

impl Drop for PinGuard {
    fn drop(&mut self) {
        self.disk.cache_unpin(self.block, true);
    }
}

impl fmt::Debug for PinGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PinGuard").field("block", &self.block).finish()
    }
}

/// RAII mutable pin on a resident block frame (see [`Disk::pin_mut`]).
///
/// The frame is marked dirty for its full block when the guard is created;
/// edits land in the frame immediately. In both write modes the device sees
/// them at eviction, [`Disk::cache_flush_all`](crate::Disk::cache_flush_all),
/// or an explicit [`PinMutGuard::commit`] -- unpinning itself never performs
/// I/O, so dropping the guard cannot fail.
pub struct PinMutGuard {
    disk: Rc<Disk>,
    block: u64,
    data: Rc<RefCell<Vec<u8>>>,
}

impl PinMutGuard {
    pub(crate) fn new(disk: Rc<Disk>, block: u64, data: Rc<RefCell<Vec<u8>>>) -> Self {
        Self { disk, block, data }
    }

    /// The pinned block's id.
    pub fn block(&self) -> u64 {
        self.block
    }

    /// Borrow the block contents.
    pub fn data(&self) -> Ref<'_, [u8]> {
        Ref::map(self.data.borrow(), Vec::as_slice)
    }

    /// Mutably borrow the block contents.
    pub fn data_mut(&self) -> RefMut<'_, [u8]> {
        RefMut::map(self.data.borrow_mut(), Vec::as_mut_slice)
    }

    /// Unpin and write the frame to the device now (one physical write).
    /// The write-through analogue for pinned edits.
    pub fn commit(self) -> Result<()> {
        // Drop runs afterwards and unpins; flushing first keeps the frame
        // pinned during its own writeback.
        self.disk.cache_flush(self.block)
    }
}

impl Drop for PinMutGuard {
    fn drop(&mut self) {
        self.disk.cache_unpin(self.block, false);
    }
}

impl fmt::Debug for PinMutGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PinMutGuard").field("block", &self.block).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_policy_parses_and_prints() {
        assert_eq!("lru".parse::<CachePolicy>().unwrap(), CachePolicy::Lru);
        assert_eq!("clock".parse::<CachePolicy>().unwrap(), CachePolicy::Clock);
        assert!("fifo".parse::<CachePolicy>().is_err());
        assert_eq!(CachePolicy::Lru.to_string(), "lru");
        assert_eq!(CachePolicy::Clock.to_string(), "clock");
        assert_eq!(WriteMode::Through.to_string(), "write-through");
        assert_eq!(WriteMode::Back.to_string(), "write-back");
        assert_eq!(CachePolicy::default(), CachePolicy::Lru);
        assert_eq!(WriteMode::default(), WriteMode::Through);
    }

    #[test]
    fn lru_evicts_least_recently_used_and_respects_pins() {
        let mut p = LruPolicy::new(3);
        p.on_insert(0);
        p.on_insert(1);
        p.on_insert(2);
        p.on_access(0); // order now: 1, 2, 0
        assert_eq!(p.pick_victim(&|_| true), Some(1));
        assert_eq!(p.pick_victim(&|s| s != 1), Some(2));
        assert_eq!(p.pick_victim(&|_| false), None);
        p.on_remove(1);
        assert_eq!(p.pick_victim(&|_| true), Some(2), "vacant slots are not victims");
    }

    #[test]
    fn clock_gives_referenced_frames_a_second_chance() {
        let mut p = ClockPolicy::new(3);
        p.on_insert(0);
        p.on_insert(1);
        p.on_insert(2);
        // First sweep clears all bits, then slot 0 is the victim.
        assert_eq!(p.pick_victim(&|_| true), Some(0));
        // Re-reference slot 1: the hand (at 1) clears it and takes slot 2.
        p.on_access(1);
        assert_eq!(p.pick_victim(&|_| true), Some(2));
        assert_eq!(p.pick_victim(&|_| false), None, "all pinned: no victim");
    }

    #[test]
    fn pool_core_tracks_residency_dirt_and_pins() {
        let budget = crate::MemoryBudget::new(4);
        let reservation = budget.reserve(2).unwrap();
        let mut pc = PoolCore::new(reservation, 64, CachePolicy::Lru.build(2), WriteMode::Back);
        assert_eq!(pc.capacity(), 2);
        assert_eq!(pc.resident(), 0);
        assert_eq!(budget.used_frames(), 2, "pool frames stay reserved");

        let SlotAcquire::Free(s0) = pc.acquire_plan().unwrap() else {
            panic!("first acquire must find a free slot")
        };
        pc.install(s0, 10);
        let SlotAcquire::Free(s1) = pc.acquire_plan().unwrap() else {
            panic!("second acquire must find a free slot")
        };
        pc.install(s1, 20);
        assert_eq!(pc.resident(), 2);
        assert_eq!(pc.lookup(10), Some(s0));
        assert_eq!(pc.peek(99), None);

        pc.mark_dirty(s1, 16, IoCat::RunWrite);
        pc.mark_dirty(s1, 8, IoCat::RunWrite); // narrower write: prefix widens only
        assert_eq!(pc.dirty_of(s1), Some((16, IoCat::RunWrite)));
        assert_eq!(pc.dirty_slots_in_block_order(), vec![s1]);

        // Full pool: the next acquire plans an eviction; block 20 was touched
        // more recently via mark-free lookup of 10 above, so 20 is *not* LRU.
        match pc.acquire_plan().unwrap() {
            SlotAcquire::Evict { block, .. } => assert_eq!(block, 20, "10 was re-accessed"),
            SlotAcquire::Free(_) => panic!("pool is full"),
        }

        // Pins exclude a frame from eviction and block invalidation.
        pc.pin(s1);
        match pc.acquire_plan().unwrap() {
            SlotAcquire::Evict { block, .. } => assert_eq!(block, 10),
            SlotAcquire::Free(_) => panic!("pool is full"),
        }
        assert!(matches!(pc.invalidate(20), Err(ExtError::FramePinned { block: 20 })));
        assert_eq!(pc.first_pinned_block(), Some(20));
        pc.unpin_block(20);
        pc.invalidate(20).unwrap();
        assert_eq!(pc.resident(), 1);

        // With every remaining frame pinned, acquire fails loudly.
        let s = pc.peek(10).unwrap();
        pc.pin(s);
        // One slot free (from the invalidation) -- consume it first.
        let SlotAcquire::Free(f) = pc.acquire_plan().unwrap() else { panic!("free slot") };
        pc.install(f, 30);
        pc.pin(f);
        assert!(matches!(pc.acquire_plan(), Err(ExtError::AllFramesPinned { frames: 2 })));
    }
}
