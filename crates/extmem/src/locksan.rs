//! Deterministic lock-discipline sanitizer — the dynamic tier of the
//! concurrency checker (the static tier is xlint R11–R15).
//!
//! Enabled with `NEXSORT_LOCKSAN=1` (mirroring `NEXSORT_SHADOW`) or
//! programmatically via [`force_enable`], the sanitizer instruments every
//! lock acquisition made through [`TrackedMutex`] / [`TrackedCondvar`] and
//! every shared-state touch reported through [`access`]:
//!
//! * **Lock-order tracking (deadlock detection).** Each acquisition while
//!   other tracked locks are held records a `held → new` edge in a global,
//!   name-keyed order graph. An acquisition that would close a cycle —
//!   i.e. some other code path acquires the same pair in the opposite
//!   order — is reported as a `lock-order-inversion` *before* the blocking
//!   acquire, so the violation is observable even when the schedule that
//!   would actually deadlock never happens in the test run. This is the
//!   classic lock-order ("deadlock immunity") check from Eraser-family
//!   tools.
//! * **Lockset + vector-clock race detection.** Each named access site
//!   keeps, per thread, the last access's vector clock and lockset. A new
//!   access by a different thread is a `unsynchronized-access` violation
//!   when the prior access neither happens-before it (vector clocks,
//!   propagated through tracked lock release/acquire) nor shares a common
//!   lock (Eraser lockset intersection).
//!
//! Violations are buffered globally as structured
//! [`ExtError::LockSanViolation`] values — the sanitizer never panics and
//! never blocks the instrumented code path. Tests drain nothing: they read
//! monotone snapshots via [`violations`] / [`violation_count`], which keeps
//! concurrent tests in one binary from stealing each other's reports.
//!
//! The module also hosts [`recover_poison`], the single audited
//! mutex-poisoning recovery site in the workspace (enforced by xlint R15):
//! every recovery is counted so the server can surface the number in its
//! `stats` verb instead of silently swallowing poisoned locks.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::ThreadId;

use crate::error::ExtError;

static FORCED: AtomicBool = AtomicBool::new(false);
static ENV_ENABLED: OnceLock<bool> = OnceLock::new();
static POISON_RECOVERIES: AtomicU64 = AtomicU64::new(0);
static STATE: OnceLock<Mutex<SanState>> = OnceLock::new();

/// Whether the sanitizer is recording. True when `NEXSORT_LOCKSAN=1` was
/// set at first use or [`force_enable`] has been called.
pub fn enabled() -> bool {
    FORCED.load(Ordering::Relaxed)
        || *ENV_ENABLED
            .get_or_init(|| std::env::var_os("NEXSORT_LOCKSAN").is_some_and(|v| v == "1"))
}

/// Turn the sanitizer on for the rest of the process, regardless of the
/// environment. Used by the negative tests so they work without mutating
/// process-global env vars.
pub fn force_enable() {
    FORCED.store(true, Ordering::Relaxed);
}

/// The one audited mutex-poisoning recovery site (xlint R15 rejects the
/// `unwrap_or_else(..into_inner())` pattern everywhere else). A poisoned
/// lock means a thread panicked while holding it; the protected state is
/// still structurally valid (everything here is crash-consistent or
/// re-derivable), so we recover the guard — but we *count* the recovery so
/// it is observable in server stats rather than silently swallowed.
pub fn recover_poison<G>(result: Result<G, PoisonError<G>>) -> G {
    match result {
        Ok(g) => g,
        Err(poisoned) => {
            POISON_RECOVERIES.fetch_add(1, Ordering::Relaxed);
            poisoned.into_inner()
        }
    }
}

/// Number of mutex-poisoning recoveries performed by [`recover_poison`]
/// since process start.
pub fn poison_recoveries() -> u64 {
    POISON_RECOVERIES.load(Ordering::Relaxed)
}

/// Record a touch of the named shared-state site on the current thread.
/// No-op unless the sanitizer is enabled.
pub fn access(site: &'static str) {
    if !enabled() {
        return;
    }
    with_state(|st| st.record_access(site));
}

/// Snapshot of all violations recorded so far, as structured errors. The
/// buffer is monotone — nothing is drained — so concurrent tests can each
/// look for their own seeded violation.
pub fn violations() -> Vec<ExtError> {
    with_state(|st| {
        st.violations
            .iter()
            .map(|v| ExtError::LockSanViolation { check: v.check, detail: v.detail.clone() })
            .collect()
    })
}

/// Number of violations recorded so far.
pub fn violation_count() -> usize {
    with_state(|st| st.violations.len())
}

/// Human-readable log of all violations recorded so far (one line each).
pub fn violation_log() -> Vec<String> {
    with_state(|st| st.violations.iter().map(|v| format!("{}: {}", v.check, v.detail)).collect())
}

/// A mutex whose acquisitions feed the sanitizer. Drop-in for
/// `std::sync::Mutex` on the server/arbiter path: `lock()` is infallible
/// (poisoning routes through [`recover_poison`]) and returns a
/// [`TrackedGuard`].
pub struct TrackedMutex<T> {
    name: &'static str,
    inner: Mutex<T>,
}

impl<T> TrackedMutex<T> {
    /// Wrap `value` in a tracked mutex. `name` identifies the lock in
    /// order-graph edges and violation reports; instances sharing a name
    /// are treated as one lock class.
    pub fn new(name: &'static str, value: T) -> Self {
        TrackedMutex { name, inner: Mutex::new(value) }
    }

    /// The lock-class name this mutex reports under.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Acquire the lock. The order-graph check runs *before* the blocking
    /// acquire (so inversions are caught even on schedules that do not
    /// deadlock); the happens-before join runs after.
    pub fn lock(&self) -> TrackedGuard<'_, T> {
        if enabled() {
            with_state(|st| st.on_attempt(self.name));
        }
        let guard = recover_poison(self.inner.lock());
        if enabled() {
            with_state(|st| st.on_acquired(self.name));
        }
        TrackedGuard { lock: self, guard: Some(guard) }
    }
}

impl<T> fmt::Debug for TrackedMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TrackedMutex({})", self.name)
    }
}

/// RAII guard for a [`TrackedMutex`]; records the release (storing the
/// thread's vector clock into the lock's clock) before the underlying
/// mutex is unlocked.
pub struct TrackedGuard<'a, T> {
    lock: &'a TrackedMutex<T>,
    // `None` only transiently inside `TrackedCondvar::wait`, which owns
    // the guard for the duration.
    guard: Option<MutexGuard<'a, T>>,
}

impl<T> Deref for TrackedGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        match self.guard.as_ref() {
            Some(g) => g,
            // The empty slot exists only inside TrackedCondvar::wait,
            // which owns the guard exclusively.
            // xlint::allow(R2): structurally-unreachable empty-slot arm.
            None => unreachable!("TrackedGuard slot empty outside wait"),
        }
    }
}

impl<T> DerefMut for TrackedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match self.guard.as_mut() {
            Some(g) => g,
            // xlint::allow(R2): see Deref — structurally unreachable.
            None => unreachable!("TrackedGuard slot empty outside wait"),
        }
    }
}

impl<T> Drop for TrackedGuard<'_, T> {
    fn drop(&mut self) {
        if self.guard.is_some() && enabled() {
            // Release bookkeeping runs while the mutex is still held (the
            // inner guard drops after this body), so the next acquirer
            // always joins an up-to-date lock clock.
            with_state(|st| st.on_release(self.lock.name));
        }
    }
}

/// A condition variable paired with [`TrackedMutex`]. `wait` is
/// infallible (poisoning routes through [`recover_poison`]) and keeps the
/// sanitizer's held-set and clocks consistent across the park/re-acquire.
pub struct TrackedCondvar {
    inner: Condvar,
}

impl TrackedCondvar {
    /// A new condition variable.
    pub fn new() -> Self {
        TrackedCondvar { inner: Condvar::new() }
    }

    /// Atomically release the tracked guard, park, and re-acquire.
    pub fn wait<'a, T>(&self, mut guard: TrackedGuard<'a, T>) -> TrackedGuard<'a, T> {
        let lock = guard.lock;
        let inner = match guard.guard.take() {
            Some(g) => g,
            None => return guard,
        };
        drop(guard); // slot is empty: Drop is a no-op
        if enabled() {
            with_state(|st| st.on_release(lock.name));
        }
        let inner = recover_poison(self.inner.wait(inner));
        if enabled() {
            with_state(|st| {
                st.on_attempt(lock.name);
                st.on_acquired(lock.name);
            });
        }
        TrackedGuard { lock, guard: Some(inner) }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for TrackedCondvar {
    fn default() -> Self {
        TrackedCondvar::new()
    }
}

impl fmt::Debug for TrackedCondvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TrackedCondvar")
    }
}

struct Violation {
    check: &'static str,
    detail: String,
}

struct LastAccess {
    clock: Vec<u64>,
    locks: BTreeSet<&'static str>,
}

#[derive(Default)]
struct SanState {
    /// Thread registry: ThreadId -> dense index into `clocks`.
    threads: HashMap<ThreadId, usize>,
    /// Per-thread vector clocks. A thread's own component starts at 1 so
    /// two never-synchronized threads are mutually unordered.
    clocks: Vec<Vec<u64>>,
    /// Locks currently held per thread, in acquisition order.
    held: HashMap<ThreadId, Vec<&'static str>>,
    /// Clock each lock last absorbed at release time.
    lock_clocks: HashMap<&'static str, Vec<u64>>,
    /// Order graph: edges `held -> newly acquired`.
    edges: BTreeMap<&'static str, BTreeSet<&'static str>>,
    /// Edge pairs already reported, to keep the log finite.
    reported_pairs: BTreeSet<(&'static str, &'static str)>,
    /// Access sites already reported as racy.
    reported_sites: BTreeSet<&'static str>,
    /// Last access per (site, thread index).
    sites: HashMap<&'static str, HashMap<usize, LastAccess>>,
    violations: Vec<Violation>,
}

fn with_state<R>(f: impl FnOnce(&mut SanState) -> R) -> R {
    let m = STATE.get_or_init(|| Mutex::new(SanState::default()));
    let mut st = recover_poison(m.lock());
    f(&mut st)
}

fn clock_join(into: &mut Vec<u64>, other: &[u64]) {
    if into.len() < other.len() {
        into.resize(other.len(), 0);
    }
    for (a, b) in into.iter_mut().zip(other.iter()) {
        *a = (*a).max(*b);
    }
}

fn clock_leq(a: &[u64], b: &[u64]) -> bool {
    a.iter().enumerate().all(|(i, &v)| v <= b.get(i).copied().unwrap_or(0))
}

impl SanState {
    fn thread_index(&mut self) -> usize {
        let id = std::thread::current().id();
        if let Some(&idx) = self.threads.get(&id) {
            return idx;
        }
        let idx = self.clocks.len();
        let mut clock = vec![0; idx + 1];
        clock[idx] = 1;
        self.clocks.push(clock);
        self.threads.insert(id, idx);
        idx
    }

    /// Order-graph bookkeeping at acquire *attempt* time.
    fn on_attempt(&mut self, name: &'static str) {
        self.thread_index();
        let id = std::thread::current().id();
        let held = self.held.entry(id).or_default().clone();
        for h in held {
            if h == name {
                // Two instances sharing a class name: not an order edge.
                continue;
            }
            self.edges.entry(h).or_default().insert(name);
            if self.reaches(name, h) && self.reported_pairs.insert((h, name)) {
                self.violations.push(Violation {
                    check: "lock-order-inversion",
                    detail: format!(
                        "acquiring `{name}` while holding `{h}` inverts the recorded \
                         `{name}` -> `{h}` acquisition order (potential deadlock cycle)"
                    ),
                });
            }
        }
        self.held.entry(id).or_default().push(name);
    }

    /// Happens-before join once the lock is actually held.
    fn on_acquired(&mut self, name: &'static str) {
        let t = self.thread_index();
        if let Some(lc) = self.lock_clocks.get(name) {
            let lc = lc.clone();
            clock_join(&mut self.clocks[t], &lc);
        }
    }

    /// Release: publish the thread's clock through the lock, then advance
    /// the thread's own component so later local events are not ordered
    /// before a remote acquire that only saw this release.
    fn on_release(&mut self, name: &'static str) {
        let t = self.thread_index();
        let id = std::thread::current().id();
        if let Some(stack) = self.held.get_mut(&id) {
            if let Some(pos) = stack.iter().rposition(|&h| h == name) {
                stack.remove(pos);
            }
        }
        let clock = self.clocks[t].clone();
        match self.lock_clocks.get_mut(name) {
            Some(lc) => clock_join(lc, &clock),
            None => {
                self.lock_clocks.insert(name, clock);
            }
        }
        self.clocks[t][t] += 1;
    }

    /// Is `to` reachable from `from` in the order graph?
    fn reaches(&self, from: &'static str, to: &'static str) -> bool {
        if from == to {
            return true;
        }
        let mut seen: BTreeSet<&'static str> = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            if !seen.insert(n) {
                continue;
            }
            if let Some(next) = self.edges.get(n) {
                for &m in next {
                    if m == to {
                        return true;
                    }
                    stack.push(m);
                }
            }
        }
        false
    }

    fn record_access(&mut self, site: &'static str) {
        let t = self.thread_index();
        let id = std::thread::current().id();
        let clock = self.clocks[t].clone();
        let locks: BTreeSet<&'static str> =
            self.held.get(&id).map(|v| v.iter().copied().collect()).unwrap_or_default();
        if let Some(prior) = self.sites.get(site) {
            for (&ot, last) in prior {
                if ot == t {
                    continue;
                }
                let ordered = clock_leq(&last.clock, &clock);
                let guarded = !last.locks.is_disjoint(&locks);
                if !ordered && !guarded && self.reported_sites.insert(site) {
                    self.violations.push(Violation {
                        check: "unsynchronized-access",
                        detail: format!(
                            "site `{site}` touched by two threads with no happens-before \
                             edge and an empty common lockset (locks now: {locks:?}, \
                             locks then: {:?})",
                            last.locks
                        ),
                    });
                }
            }
        }
        self.sites.entry(site).or_default().insert(t, LastAccess { clock, locks });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistent_lock_order_is_clean() {
        force_enable();
        let a = TrackedMutex::new("lsu.ord.a", 0u32);
        let b = TrackedMutex::new("lsu.ord.b", 0u32);
        for _ in 0..3 {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        assert!(
            !violation_log().iter().any(|l| l.contains("lsu.ord.")),
            "consistent order must not report: {:?}",
            violation_log()
        );
    }

    #[test]
    fn inverted_lock_order_is_reported_once() {
        force_enable();
        let a = TrackedMutex::new("lsu.inv.a", 0u32);
        let b = TrackedMutex::new("lsu.inv.b", 0u32);
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        for _ in 0..2 {
            let _gb = b.lock();
            let _ga = a.lock();
        }
        let hits: Vec<String> = violation_log()
            .into_iter()
            .filter(|l| l.contains("lock-order-inversion") && l.contains("lsu.inv."))
            .collect();
        assert_eq!(hits.len(), 1, "inversion reported exactly once: {hits:?}");
    }

    #[test]
    fn same_class_name_is_not_a_self_cycle() {
        force_enable();
        let a1 = TrackedMutex::new("lsu.self", 0u32);
        let a2 = TrackedMutex::new("lsu.self", 0u32);
        let _g1 = a1.lock();
        let _g2 = a2.lock();
        assert!(
            !violation_log().iter().any(|l| l.contains("lsu.self")),
            "same-name reacquisition is one lock class, not an order edge"
        );
    }

    #[test]
    fn lock_protected_accesses_are_clean() {
        force_enable();
        let m = std::sync::Arc::new(TrackedMutex::new("lsu.guarded", 0u32));
        let m2 = std::sync::Arc::clone(&m);
        let t = std::thread::spawn(move || {
            let mut g = m2.lock();
            *g += 1;
            access("lsu.guarded.site");
        });
        t.join().expect("join");
        {
            let mut g = m.lock();
            *g += 1;
            access("lsu.guarded.site");
        }
        assert!(
            !violation_log().iter().any(|l| l.contains("lsu.guarded.site")),
            "common lockset suppresses the report: {:?}",
            violation_log()
        );
    }

    #[test]
    fn release_acquire_orders_unlocked_accesses() {
        force_enable();
        let m = std::sync::Arc::new(TrackedMutex::new("lsu.hb", 0u32));
        let m2 = std::sync::Arc::clone(&m);
        let t = std::thread::spawn(move || {
            access("lsu.hb.site");
            drop(m2.lock()); // publish this thread's clock through the lock
        });
        t.join().expect("join");
        drop(m.lock()); // join the publishing thread's clock
        access("lsu.hb.site"); // ordered even though no lock is held now
        assert!(
            !violation_log().iter().any(|l| l.contains("lsu.hb.site")),
            "release/acquire establishes happens-before: {:?}",
            violation_log()
        );
    }

    #[test]
    fn unsynchronized_access_is_reported() {
        force_enable();
        let t = std::thread::spawn(|| access("lsu.race.site"));
        t.join().expect("join");
        access("lsu.race.site");
        assert!(
            violation_log()
                .iter()
                .any(|l| l.contains("unsynchronized-access") && l.contains("lsu.race.site")),
            "missing race report: {:?}",
            violation_log()
        );
        assert!(violations().iter().any(|e| matches!(
            e,
            ExtError::LockSanViolation { check: "unsynchronized-access", .. }
        ) && e.to_string().contains("lsu.race.site")));
    }

    #[test]
    fn condvar_wait_keeps_held_set_consistent() {
        force_enable();
        let pair = std::sync::Arc::new((TrackedMutex::new("lsu.cv", false), TrackedCondvar::new()));
        let pair2 = std::sync::Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let mut done = pair2.0.lock();
            *done = true;
            drop(done);
            pair2.1.notify_all();
        });
        let mut done = pair.0.lock();
        while !*done {
            done = pair.1.wait(done);
        }
        drop(done);
        t.join().expect("join");
        assert!(!violation_log().iter().any(|l| l.contains("lsu.cv")));
    }

    #[test]
    fn poisoning_recovery_is_counted() {
        let before = poison_recoveries();
        let m = std::sync::Arc::new(TrackedMutex::new("lsu.poison", 7u32));
        let m2 = std::sync::Arc::clone(&m);
        let t = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        });
        assert!(t.join().is_err());
        assert_eq!(*m.lock(), 7, "state survives poisoning");
        assert!(poison_recoveries() > before, "recovery must be counted");
    }
}
