//! Asynchronous I/O scheduling: sequential read-ahead, write-behind, and
//! multi-device striping.
//!
//! The paper's experiments (Section 5) ran on TPIE, whose stream layer
//! overlaps block transfers with computation; until this module every
//! [`Disk`](crate::Disk) transfer was synchronous and device-serial. Because
//! the crate is deliberately single-threaded (`Rc`/`Cell`), the scheduler
//! does not spawn OS threads. Instead it models a worker pool in
//! *deterministic virtual time*: every physical transfer occupies one tick
//! on the queue of the device it lands on, and the scheduler tracks which
//! transfers the algorithm must wait for (synchronous reads) versus which
//! proceed in the background (prefetches, deferred writes). The resulting
//! tick count is a reproducible stand-in for wall time -- identical across
//! runs of the same configuration -- while the concurrency *semantics*
//! (bounded dirty queues, barrier ordering, drain-before-read coherence)
//! are real and fully exercised.
//!
//! Three cooperating features:
//!
//! - **Sequential read-ahead** -- [`Disk::prefetch`](crate::Disk::prefetch)
//!   loads upcoming blocks of a sequentially-scanned extent into the buffer
//!   pool in the background. Prefetched frames are charged to the pool's
//!   [`MemoryBudget`](crate::MemoryBudget); hits and wasted prefetches are
//!   counted per phase in [`IoStats`](crate::IoStats).
//! - **Write-behind** -- with [`SchedConfig::write_behind`], physical writes
//!   enqueue onto a bounded dirty queue and reach the device when the queue
//!   fills, when a read needs the block, or at an
//!   [`io_barrier`](crate::Disk::io_barrier). A fault or checksum error in a
//!   deferred write surfaces at the barrier naming the exact failing block
//!   and the phase that issued the write; the entry stays queued so nothing
//!   is lost.
//! - **Striping** -- [`StripedDevice`] round-robins blocks across N inner
//!   devices (each independently faultable), giving the scheduler multiple
//!   device queues to keep busy at once.
//!
//! The hard invariant: none of this changes *logical* I/O counts or output
//! bytes. The scheduler only defers, reorders, and overlaps physical
//! transfers; what the algorithm reads and writes is bit-identical to the
//! synchronous path.

use std::collections::{BTreeMap, VecDeque};

use crate::device::BlockDevice;
use crate::error::{ExtError, Result};
use crate::fault::IoPhase;
use crate::stats::IoCat;

/// Configuration for [`Disk::enable_sched`](crate::Disk::enable_sched).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedConfig {
    /// Number of I/O worker threads being modeled (>= 1). The scheduler
    /// services at most `min(workers, stripe width)` device queues
    /// concurrently; `workers = 1` reproduces the synchronous tick-per-op
    /// timeline exactly.
    pub workers: usize,
    /// How many blocks ahead of a sequential scan to prefetch into the
    /// buffer pool (0 disables read-ahead; requires an enabled pool to have
    /// any effect).
    pub prefetch_depth: usize,
    /// Defer physical writes onto the bounded dirty queue, draining them in
    /// the background and at barriers.
    pub write_behind: bool,
    /// Capacity of the write-behind queue; a full queue backpressures by
    /// draining its oldest entry synchronously.
    pub queue_capacity: usize,
}

impl Default for SchedConfig {
    fn default() -> Self {
        Self { workers: 1, prefetch_depth: 0, write_behind: false, queue_capacity: 32 }
    }
}

/// One deferred physical write parked on the write-behind queue.
///
/// The data is copied at enqueue time, so later frame reuse cannot alias it,
/// and the phase is stamped at enqueue time so a failure at the barrier is
/// attributed to the phase that issued the write, not the one that happened
/// to drain it.
pub(crate) struct WbEntry {
    pub(crate) block: u64,
    pub(crate) data: Vec<u8>,
    pub(crate) cat: IoCat,
    pub(crate) phase: IoPhase,
}

/// The scheduler state embedded in a [`Disk`](crate::Disk).
///
/// Virtual-time model: `ready[q]` is the tick at which device queue `q`
/// finishes its last accepted transfer; `now` is the algorithm's clock.
/// A synchronous transfer completes at `max(now, ready[q]) + 1` and advances
/// `now` to that point (the caller waited). An asynchronous transfer
/// (prefetch, deferred write) occupies the same device time but leaves `now`
/// alone -- the caller kept computing -- and the completion tick is observed
/// later, when the result is actually consumed or at a barrier.
pub(crate) struct SchedCore {
    pub(crate) prefetch_depth: usize,
    pub(crate) write_behind: bool,
    pub(crate) queue_capacity: usize,
    /// The algorithm's clock, in ticks.
    now: u64,
    /// Per-queue busy-until ticks.
    ready: Vec<u64>,
    /// FIFO of deferred writes awaiting the device.
    pub(crate) wb: VecDeque<WbEntry>,
    /// Completion tick of each prefetched block not yet consumed.
    pub(crate) inflight: BTreeMap<u64, u64>,
    /// Stripe width used to route blocks to queues.
    devices: usize,
}

impl SchedCore {
    pub(crate) fn new(cfg: SchedConfig, devices: usize) -> Self {
        assert!(cfg.workers >= 1, "the scheduler needs at least one worker");
        assert!(cfg.queue_capacity >= 1, "the write-behind queue needs capacity");
        let devices = devices.max(1);
        let queues = cfg.workers.min(devices);
        Self {
            prefetch_depth: cfg.prefetch_depth,
            write_behind: cfg.write_behind,
            queue_capacity: cfg.queue_capacity,
            now: 0,
            ready: vec![0; queues],
            wb: VecDeque::new(),
            inflight: BTreeMap::new(),
            devices,
        }
    }

    /// Which service queue `block` lands on: its stripe device, folded onto
    /// the available workers.
    fn queue_index(&self, block: u64) -> usize {
        ((block % self.devices as u64) as usize) % self.ready.len()
    }

    /// Account one synchronous transfer of `block`: the caller waits for it.
    pub(crate) fn tick_sync(&mut self, block: u64) {
        let q = self.queue_index(block);
        let done = self.now.max(self.ready[q]) + 1;
        self.ready[q] = done;
        self.now = done;
    }

    /// Account one background transfer of `block`: the device queue is busy
    /// but the caller keeps computing. Returns the completion tick, to be
    /// fed to [`SchedCore::observe_completion`] when the result is consumed.
    pub(crate) fn tick_async(&mut self, block: u64) -> u64 {
        let q = self.queue_index(block);
        let done = self.now.max(self.ready[q]) + 1;
        self.ready[q] = done;
        done
    }

    /// Wait for every queue to go idle (barrier semantics).
    pub(crate) fn barrier_clock(&mut self) {
        let busy = self.ready.iter().copied().max().unwrap_or(0);
        self.now = self.now.max(busy);
    }

    /// The consumer of a background transfer caught up with it: wait if it
    /// has not completed yet.
    pub(crate) fn observe_completion(&mut self, tick: u64) {
        self.now = self.now.max(tick);
    }

    /// Current virtual time in ticks.
    pub(crate) fn ticks(&self) -> u64 {
        self.now
    }

    /// Whether a deferred write for `block` is still parked on the queue.
    pub(crate) fn has_pending_write(&self, block: u64) -> bool {
        self.wb.iter().any(|e| e.block == block)
    }
}

/// A [`BlockDevice`] that round-robins blocks across N inner devices.
///
/// Global block id `local * N + d` lives at local id `local` on inner device
/// `d`; allocation rotates over the devices, so a sequential extent's blocks
/// land on distinct devices and the scheduler can overlap their transfers.
/// Each inner device can independently be wrapped in a
/// [`FaultyDevice`](crate::FaultyDevice); put a
/// [`ChecksummedDevice`](crate::ChecksummedDevice) *outside* the stripe so
/// checksums are keyed by global id.
pub struct StripedDevice {
    inners: Vec<Box<dyn BlockDevice>>,
    block_size: usize,
    next_dev: usize,
    num_blocks: u64,
}

impl StripedDevice {
    /// Stripe over `inners` (at least one; all the same block size).
    pub fn new(inners: Vec<Box<dyn BlockDevice>>) -> Self {
        assert!(!inners.is_empty(), "striping needs at least one inner device");
        let block_size = inners[0].block_size();
        assert!(
            inners.iter().all(|d| d.block_size() == block_size),
            "striped inner devices must share a block size"
        );
        // Reopened inner devices may already hold blocks; the global count
        // must cover their highest mapped id (local id `nb-1` of device `d`
        // maps to `(nb-1) * n + d`), or a reattached stack would treat
        // preexisting blocks as out of bounds (and the shadow sanitizer
        // would refuse to grandfather them).
        let n = inners.len() as u64;
        let num_blocks = inners
            .iter()
            .enumerate()
            .filter(|(_, dev)| dev.num_blocks() > 0)
            .map(|(d, dev)| (dev.num_blocks() - 1) * n + d as u64 + 1)
            .max()
            .unwrap_or(0);
        Self { inners, block_size, next_dev: 0, num_blocks }
    }

    /// Number of inner devices.
    pub fn width(&self) -> usize {
        self.inners.len()
    }

    fn split(&self, id: u64) -> (usize, u64) {
        let n = self.inners.len() as u64;
        ((id % n) as usize, id / n)
    }

    /// Re-express an inner device's error in terms of the global block id.
    fn globalize(&self, e: ExtError, id: u64) -> ExtError {
        match e {
            ExtError::BadBlock { .. } => ExtError::BadBlock { block: id, total: self.num_blocks },
            ExtError::DoubleFree { .. } => ExtError::DoubleFree { block: id },
            other => other,
        }
    }
}

impl BlockDevice for StripedDevice {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn num_blocks(&self) -> u64 {
        self.num_blocks
    }

    fn allocate(&mut self) -> u64 {
        let n = self.inners.len() as u64;
        let d = self.next_dev;
        self.next_dev = (self.next_dev + 1) % self.inners.len();
        let local = self.inners[d].allocate();
        let id = local * n + d as u64;
        self.num_blocks = self.num_blocks.max(id + 1);
        id
    }

    fn free(&mut self, id: u64) -> Result<()> {
        let (d, local) = self.split(id);
        self.inners[d].free(local).map_err(|e| self.globalize(e, id))
    }

    fn read(&mut self, id: u64, buf: &mut [u8]) -> Result<()> {
        let (d, local) = self.split(id);
        self.inners[d].read(local, buf).map_err(|e| self.globalize(e, id))
    }

    fn write(&mut self, id: u64, data: &[u8]) -> Result<()> {
        let (d, local) = self.split(id);
        self.inners[d].write(local, data).map_err(|e| self.globalize(e, id))
    }

    fn live_blocks(&self) -> Vec<u64> {
        // Union of the inner devices' live sets, each local id mapped back
        // to its global id (the inverse of `split`), in ascending order.
        let n = self.inners.len() as u64;
        let mut all: Vec<u64> = self
            .inners
            .iter()
            .enumerate()
            .flat_map(|(d, dev)| {
                dev.live_blocks().into_iter().map(move |local| local * n + d as u64)
            })
            .collect();
        all.sort_unstable();
        all
    }
}

#[cfg(test)]
mod core_tests {
    use super::*;

    #[test]
    fn one_queue_serializes_every_transfer() {
        let mut s = SchedCore::new(SchedConfig::default(), 1);
        for b in 0..10u64 {
            s.tick_sync(b);
        }
        assert_eq!(s.ticks(), 10, "workers=1 ticks like the synchronous path");
        // Async ops on one queue still serialize through it.
        let done = s.tick_async(3);
        assert_eq!(done, 11);
        s.barrier_clock();
        assert_eq!(s.ticks(), 11);
    }

    #[test]
    fn background_transfers_overlap_across_queues() {
        let cfg = SchedConfig { workers: 4, ..SchedConfig::default() };
        let mut s = SchedCore::new(cfg, 4);
        // Eight deferred writes round-robined over four devices: two ticks
        // of device time, zero ticks of caller time until the barrier.
        for b in 0..8u64 {
            s.tick_async(b);
        }
        assert_eq!(s.ticks(), 0, "the caller never waited");
        s.barrier_clock();
        assert_eq!(s.ticks(), 2, "four queues drained eight transfers in two ticks");
    }

    #[test]
    fn workers_cap_the_usable_queues() {
        let cfg = SchedConfig { workers: 2, ..SchedConfig::default() };
        let mut s = SchedCore::new(cfg, 4);
        for b in 0..8u64 {
            s.tick_async(b);
        }
        s.barrier_clock();
        assert_eq!(s.ticks(), 4, "two workers over four devices give two queues");
    }

    #[test]
    fn consuming_a_prefetch_waits_only_if_it_is_still_in_flight() {
        let cfg = SchedConfig { workers: 2, ..SchedConfig::default() };
        let mut s = SchedCore::new(cfg, 2);
        let done = s.tick_async(0); // prefetch completes at tick 1
        assert_eq!(done, 1);
        s.observe_completion(done);
        assert_eq!(s.ticks(), 1, "caught up with the prefetch: wait to its completion");
        // A later consumption of an already-complete transfer costs nothing.
        s.tick_sync(1); // now = 2
        s.observe_completion(done);
        assert_eq!(s.ticks(), 2);
    }

    #[test]
    fn sync_after_async_waits_for_the_shared_queue() {
        let cfg = SchedConfig { workers: 2, ..SchedConfig::default() };
        let mut s = SchedCore::new(cfg, 2);
        s.tick_async(0); // queue 0 busy until tick 1
        s.tick_async(0); // queue 0 busy until tick 2
        s.tick_sync(2); // same queue (block 2 -> device 0): completes at 3
        assert_eq!(s.ticks(), 3);
        s.tick_sync(1); // other queue was idle: completes at 4 (after now)
        assert_eq!(s.ticks(), 4);
    }
}

#[cfg(test)]
mod striped_tests {
    use super::*;
    use crate::device::{Disk, MemDevice};
    use crate::fault::{FaultKind, FaultPlan, FaultyDevice};

    fn mems(n: usize, bs: usize) -> Vec<Box<dyn BlockDevice>> {
        (0..n).map(|_| Box::new(MemDevice::new(bs)) as Box<dyn BlockDevice>).collect()
    }

    #[test]
    fn allocation_round_robins_and_ids_stay_dense() {
        let mut dev = StripedDevice::new(mems(3, 64));
        let ids: Vec<u64> = (0..7).map(|_| dev.allocate()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5, 6], "fresh allocation yields dense global ids");
        assert_eq!(dev.num_blocks(), 7);
        assert_eq!(dev.width(), 3);
    }

    #[test]
    fn striped_blocks_roundtrip_and_recycle() {
        let disk = Disk::new_striped_mem(64, 4);
        assert_eq!(disk.stripe_width(), 4);
        let ids: Vec<u64> = (0..8).map(|_| disk.alloc_block()).collect();
        for (i, &id) in ids.iter().enumerate() {
            disk.write_block(id, &[i as u8 + 1; 64], crate::IoCat::RunWrite).unwrap();
        }
        let mut buf = [0u8; 64];
        for (i, &id) in ids.iter().enumerate() {
            disk.read_block(id, &mut buf, crate::IoCat::RunRead).unwrap();
            assert_eq!(buf, [i as u8 + 1; 64]);
        }
        disk.free_block(ids[2]).unwrap();
        assert!(matches!(
            disk.free_block(ids[2]),
            Err(ExtError::DoubleFree { block }) if block == ids[2]
        ));
    }

    #[test]
    fn inner_devices_fault_independently() {
        // Device 0's first write always fails; device 1 is healthy. Blocks
        // alternate devices, so the write to the even block fails and the
        // write to the odd block succeeds.
        let plan = FaultPlan::new(5)
            .at_write(0, FaultKind::TransientError)
            .at_write(1, FaultKind::TransientError);
        let faulty0 = FaultyDevice::new(MemDevice::new(64), plan);
        let inners: Vec<Box<dyn BlockDevice>> =
            vec![Box::new(faulty0), Box::new(MemDevice::new(64))];
        let mut dev = StripedDevice::new(inners);
        let a = dev.allocate(); // device 0
        let b = dev.allocate(); // device 1
        assert!(dev.write(a, &[1; 64]).is_err(), "device 0 is scripted to fail");
        assert!(dev.write(b, &[2; 64]).is_ok(), "device 1 is unaffected");
        let mut buf = [0u8; 64];
        dev.read(b, &mut buf).unwrap();
        assert_eq!(buf, [2; 64]);
    }
}

#[cfg(test)]
mod disk_sched_tests {
    use super::*;
    use crate::budget::MemoryBudget;
    use crate::device::{Disk, MemDevice};
    use crate::extent::{ByteReader, ByteSink, ExtentReader, ExtentWriter};
    use crate::fault::{FaultKind, FaultPlan};
    use crate::pool::{CachePolicy, WriteMode};
    use crate::stats::IoCat;
    use std::rc::Rc;

    const BS: usize = 64;

    #[test]
    fn write_behind_defers_until_the_barrier_and_preserves_bytes() {
        let disk = Disk::new_mem(BS);
        disk.enable_sched(SchedConfig { write_behind: true, ..SchedConfig::default() });
        assert!(disk.sched_enabled());
        let ids: Vec<u64> = (0..3).map(|_| disk.alloc_block()).collect();
        for (i, &id) in ids.iter().enumerate() {
            disk.write_block(id, &[i as u8 + 1; BS], IoCat::RunWrite).unwrap();
        }
        let snap = disk.stats().snapshot();
        assert_eq!(snap.writes(IoCat::RunWrite), 3, "logical writes are charged immediately");
        assert_eq!(snap.phys_writes(IoCat::RunWrite), 0, "nothing reached the device yet");
        assert_eq!(snap.total_deferred_writes(), 3);
        disk.io_barrier().unwrap();
        let snap = disk.stats().snapshot();
        assert_eq!(snap.phys_writes(IoCat::RunWrite), 3, "the barrier drained the queue");
        let mut buf = [0u8; BS];
        for (i, &id) in ids.iter().enumerate() {
            disk.read_block(id, &mut buf, IoCat::RunRead).unwrap();
            assert_eq!(buf, [i as u8 + 1; BS]);
        }
    }

    #[test]
    fn reading_a_block_with_a_pending_write_drains_it_first() {
        let disk = Disk::new_mem(BS);
        disk.enable_sched(SchedConfig { write_behind: true, ..SchedConfig::default() });
        let id = disk.alloc_block();
        disk.write_block(id, &[0xAA; BS], IoCat::DataStack).unwrap();
        disk.write_block(id, &[0xBB; BS], IoCat::DataStack).unwrap();
        let mut buf = [0u8; BS];
        disk.read_block(id, &mut buf, IoCat::DataStack).unwrap();
        assert_eq!(buf, [0xBB; BS], "the read sees the latest queued write");
        let snap = disk.stats().snapshot();
        assert_eq!(snap.phys_writes(IoCat::DataStack), 2, "both queued writes were drained");
    }

    #[test]
    fn full_queue_backpressures_by_draining_the_oldest_entry() {
        let disk = Disk::new_mem(BS);
        disk.enable_sched(SchedConfig {
            write_behind: true,
            queue_capacity: 2,
            ..SchedConfig::default()
        });
        let ids: Vec<u64> = (0..4).map(|_| disk.alloc_block()).collect();
        for &id in &ids {
            disk.write_block(id, &[7; BS], IoCat::RunWrite).unwrap();
        }
        let snap = disk.stats().snapshot();
        assert_eq!(
            snap.phys_writes(IoCat::RunWrite),
            2,
            "two of four writes spilled past the 2-entry queue"
        );
        disk.io_barrier().unwrap();
        assert_eq!(disk.stats().snapshot().phys_writes(IoCat::RunWrite), 4);
    }

    #[test]
    fn barrier_failure_names_the_block_and_the_phase_that_wrote_it() {
        let plan = FaultPlan::new(17).at_write(0, FaultKind::TransientError);
        let (disk, _inj) = Disk::new_faulty(Box::new(MemDevice::new(BS)), plan);
        disk.enable_sched(SchedConfig { write_behind: true, ..SchedConfig::default() });
        let id = disk.alloc_block();
        disk.set_phase(IoPhase::RunFormation);
        disk.write_block(id, &[0x5C; BS], IoCat::RunWrite).unwrap();
        // The algorithm has moved on by the time the write hits the device.
        disk.set_phase(IoPhase::OutputEmit);
        let err = disk.io_barrier().unwrap_err();
        assert!(matches!(err, ExtError::Io(_)), "{err}");
        let failure = disk.last_failure().expect("failure recorded");
        assert_eq!(failure.block, id, "the failure names the deferred block");
        assert_eq!(failure.cat, IoCat::RunWrite);
        assert!(!failure.is_read);
        assert_eq!(
            failure.phase,
            IoPhase::RunFormation,
            "attributed to the phase that issued the write, not the one at the barrier"
        );
        assert_eq!(disk.phase(), IoPhase::OutputEmit, "the live phase label is restored");
        // The entry stayed queued: the fault was one-shot, so retrying the
        // barrier lands the bytes.
        disk.io_barrier().unwrap();
        let mut buf = [0u8; BS];
        disk.read_block(id, &mut buf, IoCat::RunRead).unwrap();
        assert_eq!(buf, [0x5C; BS], "no data was lost to the failed attempt");
    }

    #[test]
    fn freeing_a_block_discards_its_queued_writes() {
        let disk = Disk::new_mem(BS);
        disk.enable_sched(SchedConfig { write_behind: true, ..SchedConfig::default() });
        let a = disk.alloc_block();
        disk.write_block(a, &[0xEE; BS], IoCat::DataStack).unwrap();
        disk.free_block(a).unwrap();
        disk.io_barrier().unwrap();
        assert_eq!(
            disk.stats().snapshot().grand_total_physical(),
            0,
            "the dead block's write never reached the device"
        );
        // Reallocating the id sees zeroes, not the stale queued bytes.
        let b = disk.alloc_block();
        assert_eq!(a, b, "MemDevice recycles the freed id");
        let mut buf = [0xFFu8; BS];
        disk.read_block(b, &mut buf, IoCat::DataStack).unwrap();
        assert_eq!(buf, [0u8; BS]);
    }

    #[test]
    fn prefetch_counts_hits_and_wasted_frames() {
        let disk = Disk::new_mem(BS);
        let budget = MemoryBudget::new(4);
        disk.enable_cache(&budget, 4, CachePolicy::Lru, WriteMode::Through).unwrap();
        disk.enable_sched(SchedConfig { prefetch_depth: 2, ..SchedConfig::default() });
        assert_eq!(disk.prefetch_depth(), 2);
        let a = disk.alloc_block();
        let b = disk.alloc_block();
        disk.write_block(a, &[1; BS], IoCat::RunWrite).unwrap();
        disk.write_block(b, &[2; BS], IoCat::RunWrite).unwrap();
        let before = disk.stats().snapshot();
        disk.prefetch(&[a, b], IoCat::RunRead);
        let snap = disk.stats().snapshot();
        let d = snap.since(&before);
        assert_eq!(d.total_prefetch_issued(), 2);
        assert_eq!(d.phys_reads(IoCat::RunRead), 2, "prefetches are physical transfers");
        assert_eq!(d.reads(IoCat::RunRead), 0, "prefetches are never logical transfers");
        // Consuming one prefetched block is a pool hit and a prefetch hit.
        let mut buf = [0u8; BS];
        disk.read_block(a, &mut buf, IoCat::RunRead).unwrap();
        assert_eq!(buf, [1; BS]);
        // Re-reading it is a plain cache hit, not a second prefetch hit.
        disk.read_block(a, &mut buf, IoCat::RunRead).unwrap();
        // Freeing the other before anyone read it wastes its prefetch.
        disk.free_block(b).unwrap();
        let d = disk.stats().snapshot().since(&before);
        assert_eq!(d.total_prefetch_hits(), 1);
        assert_eq!(d.total_prefetch_wasted(), 1);
        assert_eq!(d.phys_reads(IoCat::RunRead), 2, "the consuming read was served from the pool");
    }

    #[test]
    fn prefetch_skips_blocks_with_pending_writes_and_resident_frames() {
        let disk = Disk::new_mem(BS);
        let budget = MemoryBudget::new(4);
        disk.enable_cache(&budget, 4, CachePolicy::Lru, WriteMode::Back).unwrap();
        disk.enable_sched(SchedConfig {
            prefetch_depth: 4,
            write_behind: true,
            ..SchedConfig::default()
        });
        let a = disk.alloc_block();
        // A write-back write leaves a resident dirty frame for `a`; an
        // eviction would also park a deferred write. Prefetching it must be
        // a no-op -- reading the device now would resurrect stale bytes.
        disk.write_block(a, &[9; BS], IoCat::RunWrite).unwrap();
        let before = disk.stats().snapshot();
        disk.prefetch(&[a], IoCat::RunRead);
        let d = disk.stats().snapshot().since(&before);
        assert_eq!(d.total_prefetch_issued(), 0, "resident blocks are never prefetched");
        assert_eq!(d.grand_total_physical(), 0);
        let mut buf = [0u8; BS];
        disk.read_block(a, &mut buf, IoCat::RunRead).unwrap();
        assert_eq!(buf, [9; BS]);
    }

    #[test]
    fn prefetch_swallows_faults_and_leaves_failure_reporting_clean() {
        let plan = FaultPlan::new(23).at_read(0, FaultKind::TransientError);
        let (disk, _inj) = Disk::new_faulty(Box::new(MemDevice::new(BS)), plan);
        let budget = MemoryBudget::new(4);
        disk.enable_cache(&budget, 4, CachePolicy::Lru, WriteMode::Through).unwrap();
        disk.enable_sched(SchedConfig { prefetch_depth: 2, ..SchedConfig::default() });
        let a = disk.alloc_block();
        disk.write_block(a, &[3; BS], IoCat::RunWrite).unwrap();
        disk.prefetch(&[a], IoCat::RunRead);
        assert!(disk.last_failure().is_none(), "a speculative miss is not a failure");
        let d = disk.stats().snapshot();
        assert_eq!(d.total_prefetch_issued(), 0, "the faulted prefetch was abandoned");
        // The synchronous read still works (the fault was one-shot).
        let mut buf = [0u8; BS];
        disk.read_block(a, &mut buf, IoCat::RunRead).unwrap();
        assert_eq!(buf, [3; BS]);
    }

    /// Write a multi-block extent and scan it back; returns the bytes read
    /// and the disk's final virtual-time ticks (physical ops when no
    /// scheduler is enabled).
    fn extent_workload(disk: &Rc<Disk>) -> (Vec<u8>, u64) {
        let budget = MemoryBudget::new(4);
        let payload: Vec<u8> = (0..BS * 32).map(|i| (i % 251) as u8).collect();
        let mut w = ExtentWriter::new(disk.clone(), &budget, IoCat::RunWrite).unwrap();
        w.write_all(&payload).unwrap();
        let ext = w.finish().unwrap();
        // The run boundary: RunWriter::finish barriers here in the real
        // sorter path, so the scan below starts with an empty write queue.
        disk.io_barrier().unwrap();
        let mut r = ExtentReader::new(disk.clone(), &budget, &ext, IoCat::RunRead).unwrap();
        let mut back = vec![0u8; payload.len()];
        r.read_exact(&mut back).unwrap();
        disk.io_barrier().unwrap();
        let snap = disk.stats().snapshot();
        let ticks =
            disk.sched_ticks().unwrap_or(snap.grand_total_physical() + snap.total_retries());
        (back, ticks)
    }

    #[test]
    fn overlap_cuts_virtual_time_without_touching_bytes_or_logical_io() {
        let sync_disk = Disk::new_mem(BS);
        let (sync_bytes, sync_ticks) = extent_workload(&sync_disk);

        let async_disk = Disk::new_striped_mem(BS, 4);
        let cache_budget = MemoryBudget::new(16);
        async_disk.enable_cache(&cache_budget, 16, CachePolicy::Lru, WriteMode::Through).unwrap();
        async_disk.enable_sched(SchedConfig {
            workers: 4,
            prefetch_depth: 8,
            write_behind: true,
            queue_capacity: 32,
        });
        let (async_bytes, async_ticks) = extent_workload(&async_disk);

        assert_eq!(sync_bytes, async_bytes, "the scheduler must not change a single byte");
        let s = sync_disk.stats().snapshot();
        let a = async_disk.stats().snapshot();
        assert_eq!(s.reads(IoCat::RunRead), a.reads(IoCat::RunRead));
        assert_eq!(s.writes(IoCat::RunWrite), a.writes(IoCat::RunWrite));
        assert_eq!(s.grand_total(), a.grand_total(), "logical I/O is scheduler-invariant");
        assert!(
            async_ticks * 2 <= sync_ticks,
            "4-way overlap should at least halve virtual time: {async_ticks} vs {sync_ticks}"
        );
        assert!(a.total_prefetch_hits() > 0, "the sequential scan hit its read-ahead");
        assert!(a.total_deferred_writes() > 0);
    }

    #[test]
    fn workers_1_on_one_device_reproduces_the_synchronous_timeline() {
        let plain = Disk::new_mem(BS);
        let (_, plain_ticks) = extent_workload(&plain);
        let sched = Disk::new_mem(BS);
        sched.enable_sched(SchedConfig::default());
        let (_, sched_ticks) = extent_workload(&sched);
        assert_eq!(plain_ticks, sched_ticks, "one worker, one device: tick per physical op");
    }

    #[test]
    fn sched_lifecycle_and_introspection() {
        let disk = Disk::new_mem(BS);
        assert!(!disk.sched_enabled());
        assert_eq!(disk.sched_ticks(), None);
        assert_eq!(disk.prefetch_depth(), 0);
        disk.io_barrier().unwrap(); // no-op without a scheduler
        disk.enable_sched(SchedConfig { write_behind: true, ..SchedConfig::default() });
        assert!(disk.sched_enabled());
        assert_eq!(disk.prefetch_depth(), 0, "read-ahead needs a buffer pool");
        let id = disk.alloc_block();
        disk.write_block(id, &[1; BS], IoCat::RunWrite).unwrap();
        disk.disable_sched().unwrap();
        assert!(!disk.sched_enabled());
        let mut buf = [0u8; BS];
        disk.read_block(id, &mut buf, IoCat::RunRead).unwrap();
        assert_eq!(buf, [1; BS], "disable drains the queue first");
    }
}
