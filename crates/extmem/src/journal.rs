//! Write-ahead manifest journal: the durable record of run-store lifecycle.
//!
//! A crash mid-sort leaves the device in a state that write-behind and
//! striping (PR 3) make genuinely non-trivial: deferred writes may or may
//! not have landed, in any order the scheduler chose. The journal makes
//! that state recoverable by logging, *before* they take effect, the events
//! that change what the run store means: a run sealed, a merge pass
//! started or committed, an extent freed. Recovery (see
//! [`recovery`](crate::recovery)) replays the journal and reconstructs
//! exactly the committed prefix of the sort.
//!
//! # On-device layout
//!
//! The journal occupies a fixed extent allocated at [`Journal::create`]
//! time and zero-filled up front. Block 0 of the extent is a *header*
//! block naming the full extent (magic, block list, checksum), so
//! [`Journal::locate`] can find the journal on a cold device by scanning
//! live blocks. Records are appended byte-contiguously over the remaining
//! blocks:
//!
//! ```text
//! [seq u64 LE][type u8][payload_len u32 LE][payload...][crc u64 LE]
//! ```
//!
//! `crc` is FNV-1a over `seq ‖ type ‖ payload_len ‖ payload`. Sequence
//! numbers start at 1 and increase by exactly 1 per record, so an all-zero
//! record header marks the clean end of the log (the extent was zeroed at
//! creation).
//!
//! # Commit protocol
//!
//! Appends are *synchronous* ([`Disk::journal_write`] bypasses the buffer
//! pool and the write-behind queue), but the data writes they describe may
//! still be parked in the scheduler. A record therefore only *counts* once
//! a later `Commit` record covers it -- and [`Journal::checkpoint`] writes
//! that `Commit` only after [`Disk::cache_flush_all`] +
//! [`Disk::io_barrier`] have forced every described data write onto the
//! device. Replay folds state strictly up to the last `Commit`; everything
//! after it is an uncommitted tail that recovery discards.
//!
//! # Torn tails vs. corruption
//!
//! A crash can tear the last record mid-write. Because the extent is
//! zero-filled at creation and stale bytes are re-zeroed when recovery
//! truncates an uncommitted tail, a genuine torn record is always followed
//! by zeroes. Replay therefore tolerates a checksum mismatch whose trailing
//! bytes are all zero (torn tail: stop parsing), but reports structured
//! [`ExtError::JournalCorrupt`] for anything else: a checksum mismatch with
//! nonzero data after it, a sequence-number break, or a record overrunning
//! the extent.

use std::rc::Rc;

use crate::device::Disk;
use crate::error::{ExtError, Result};
use crate::extent::{ByteReader, ByteSink, SliceReader};
use crate::fault::fnv1a64;
use crate::repair::RunParity;

/// Magic prefix of the journal header block.
const JOURNAL_MAGIC: &[u8; 8] = b"NXJRNL01";

/// Record type tags (wire format).
const T_SORT_STARTED: u8 = 1;
const T_RUN_SEALED: u8 = 2;
const T_MERGE_STARTED: u8 = 3;
const T_MERGE_COMMITTED: u8 = 4;
const T_RUN_DISCARDED: u8 = 5;
const T_SCAN_DONE: u8 = 6;
const T_SORT_DONE: u8 = 7;
const T_COMMIT: u8 = 8;

/// Fixed per-record overhead: seq (8) + type (1) + payload_len (4) + crc (8).
const RECORD_OVERHEAD: usize = 8 + 1 + 4 + 8;

// In-memory payload assembly and parsing. `Vec<u8>` cannot fail to grow and
// every caller bounds-checks its reads first, so unlike the `ByteSink`/
// `ByteReader` device paths these carry no `Result`.

fn put_u8(p: &mut Vec<u8>, v: u8) {
    p.push(v);
}

fn put_u32(p: &mut Vec<u8>, v: u32) {
    p.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(p: &mut Vec<u8>, v: u64) {
    p.extend_from_slice(&v.to_le_bytes());
}

/// `buf[at..at + 4]` as a little-endian `u32`.
fn le_u32(buf: &[u8], at: usize) -> u32 {
    let mut a = [0u8; 4];
    a.copy_from_slice(&buf[at..at + 4]);
    u32::from_le_bytes(a)
}

/// `buf[at..at + 8]` as a little-endian `u64`.
fn le_u64(buf: &[u8], at: usize) -> u64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(&buf[at..at + 8]);
    u64::from_le_bytes(a)
}

/// Sort-progress counters carried by the phase-seal records, so a resumed
/// sort can report the same totals an uninterrupted one would.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JournalStats {
    /// Records scanned from the input.
    pub n_records: u64,
    /// Input bytes scanned.
    pub input_bytes: u64,
    /// Maximum nesting level observed.
    pub max_level: u32,
    /// Maximum fanout observed.
    pub max_fanout: u32,
    /// Incomplete runs spilled during the scan.
    pub incomplete_runs: u32,
    /// Subtree sorts performed.
    pub subtree_sorts: u32,
    /// Degenerate merge passes performed so far.
    pub degenerate_merges: u32,
}

/// One journal record: a run-store lifecycle event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// A sort began over an input of `input_len` bytes.
    SortStarted {
        /// Input length in bytes (identity check on resume).
        input_len: u64,
    },
    /// Run `token` was sealed: its extent (block list + byte length) is
    /// fully on the device once the covering `Commit` lands.
    RunSealed {
        /// Caller-chosen stable run token (run-store index).
        token: u32,
        /// Byte length of the run.
        len: u64,
        /// The run's blocks, in extent order.
        blocks: Vec<u64>,
        /// Redundancy metadata when the run was sealed with parity. Encoded
        /// as a versioned record tail, so journals written before parity
        /// existed replay as `None`. Recovery treats the parity blocks as
        /// journal-owned: they must survive free-map reconciliation or the
        /// run loses its protection.
        parity: Option<RunParity>,
    },
    /// Merge pass `pass` began (advisory; not required for replay).
    MergePassStarted {
        /// 1-based merge pass number.
        pass: u32,
    },
    /// Merge pass `pass` finished: `consumed` (in merge order) were merged
    /// into `output`. The consumed runs' blocks may be freed once the
    /// covering `Commit` lands.
    MergePassCommitted {
        /// 1-based merge pass number.
        pass: u32,
        /// Token of the output run (sealed by a paired `RunSealed`).
        output: u32,
        /// Tokens of the input runs, in the order they were merged.
        consumed: Vec<u32>,
    },
    /// Run `token`'s extent was freed outside a merge pass.
    RunDiscarded {
        /// Token of the discarded run.
        token: u32,
    },
    /// The input scan finished with `pending` runs awaiting merging, in
    /// merge order. Recovery restarts from the merge phase.
    ScanDone {
        /// Pending run tokens, in the order the merge loop consumes them.
        pending: Vec<u32>,
        /// Progress counters at the seal point.
        stats: JournalStats,
    },
    /// The sort finished: `root` is the final output run.
    SortDone {
        /// Token of the final output run.
        root: u32,
        /// Whether the root run stores records without path prefixes.
        root_flat: bool,
        /// Final progress counters.
        stats: JournalStats,
    },
    /// Everything before this record is durable on the device. Only written
    /// by [`Journal::checkpoint`], after an I/O barrier.
    Commit,
}

impl JournalRecord {
    fn type_tag(&self) -> u8 {
        match self {
            JournalRecord::SortStarted { .. } => T_SORT_STARTED,
            JournalRecord::RunSealed { .. } => T_RUN_SEALED,
            JournalRecord::MergePassStarted { .. } => T_MERGE_STARTED,
            JournalRecord::MergePassCommitted { .. } => T_MERGE_COMMITTED,
            JournalRecord::RunDiscarded { .. } => T_RUN_DISCARDED,
            JournalRecord::ScanDone { .. } => T_SCAN_DONE,
            JournalRecord::SortDone { .. } => T_SORT_DONE,
            JournalRecord::Commit => T_COMMIT,
        }
    }

    /// Whether this is a commit record.
    pub fn is_commit(&self) -> bool {
        matches!(self, JournalRecord::Commit)
    }

    fn encode_payload(&self) -> Vec<u8> {
        let mut p = Vec::new();
        match self {
            JournalRecord::SortStarted { input_len } => {
                put_u64(&mut p, *input_len);
            }
            JournalRecord::RunSealed { token, len, blocks, parity } => {
                put_u32(&mut p, *token);
                put_u64(&mut p, *len);
                put_u32(&mut p, blocks.len() as u32);
                for &b in blocks {
                    put_u64(&mut p, b);
                }
                if let Some(par) = parity {
                    put_u8(&mut p, 1); // parity-tail version
                    put_u32(&mut p, par.group);
                    put_u32(&mut p, par.parity.len() as u32);
                    for &b in &par.parity {
                        put_u64(&mut p, b);
                    }
                    put_u32(&mut p, par.sums.len() as u32);
                    for &s in &par.sums {
                        put_u64(&mut p, s);
                    }
                }
            }
            JournalRecord::MergePassStarted { pass } => {
                put_u32(&mut p, *pass);
            }
            JournalRecord::MergePassCommitted { pass, output, consumed } => {
                put_u32(&mut p, *pass);
                put_u32(&mut p, *output);
                put_u32(&mut p, consumed.len() as u32);
                for &t in consumed {
                    put_u32(&mut p, t);
                }
            }
            JournalRecord::RunDiscarded { token } => {
                put_u32(&mut p, *token);
            }
            JournalRecord::ScanDone { pending, stats } => {
                encode_stats(&mut p, stats);
                put_u32(&mut p, pending.len() as u32);
                for &t in pending {
                    put_u32(&mut p, t);
                }
            }
            JournalRecord::SortDone { root, root_flat, stats } => {
                encode_stats(&mut p, stats);
                put_u32(&mut p, *root);
                put_u8(&mut p, u8::from(*root_flat));
            }
            JournalRecord::Commit => {}
        }
        p
    }

    fn decode(tag: u8, payload: &[u8], offset: u64) -> Result<Self> {
        let mut r = SliceReader::new(payload);
        let rec = match tag {
            T_SORT_STARTED => JournalRecord::SortStarted { input_len: r.read_u64()? },
            T_RUN_SEALED => {
                let token = r.read_u32()?;
                let len = r.read_u64()?;
                let n = r.read_u32()? as usize;
                let mut blocks = Vec::with_capacity(n);
                for _ in 0..n {
                    blocks.push(r.read_u64()?);
                }
                // Pre-parity records end here; newer ones carry a versioned
                // redundancy tail.
                let parity = if r.remaining() > 0 {
                    if r.read_u8()? != 1 {
                        return Err(ExtError::JournalCorrupt {
                            offset,
                            reason: "unknown parity tail version",
                        });
                    }
                    let group = r.read_u32()?;
                    let np = r.read_u32()? as usize;
                    let mut pblocks = Vec::with_capacity(np);
                    for _ in 0..np {
                        pblocks.push(r.read_u64()?);
                    }
                    let ns = r.read_u32()? as usize;
                    let mut sums = Vec::with_capacity(ns);
                    for _ in 0..ns {
                        sums.push(r.read_u64()?);
                    }
                    Some(RunParity { group, parity: pblocks, sums })
                } else {
                    None
                };
                JournalRecord::RunSealed { token, len, blocks, parity }
            }
            T_MERGE_STARTED => JournalRecord::MergePassStarted { pass: r.read_u32()? },
            T_MERGE_COMMITTED => {
                let pass = r.read_u32()?;
                let output = r.read_u32()?;
                let n = r.read_u32()? as usize;
                let mut consumed = Vec::with_capacity(n);
                for _ in 0..n {
                    consumed.push(r.read_u32()?);
                }
                JournalRecord::MergePassCommitted { pass, output, consumed }
            }
            T_RUN_DISCARDED => JournalRecord::RunDiscarded { token: r.read_u32()? },
            T_SCAN_DONE => {
                let stats = decode_stats(&mut r)?;
                let n = r.read_u32()? as usize;
                let mut pending = Vec::with_capacity(n);
                for _ in 0..n {
                    pending.push(r.read_u32()?);
                }
                JournalRecord::ScanDone { pending, stats }
            }
            T_SORT_DONE => {
                let stats = decode_stats(&mut r)?;
                let root = r.read_u32()?;
                let root_flat = r.read_u8()? != 0;
                JournalRecord::SortDone { root, root_flat, stats }
            }
            T_COMMIT => JournalRecord::Commit,
            _ => return Err(ExtError::JournalCorrupt { offset, reason: "unknown record type" }),
        };
        Ok(rec)
    }
}

fn encode_stats(p: &mut Vec<u8>, s: &JournalStats) {
    put_u64(p, s.n_records);
    put_u64(p, s.input_bytes);
    put_u32(p, s.max_level);
    put_u32(p, s.max_fanout);
    put_u32(p, s.incomplete_runs);
    put_u32(p, s.subtree_sorts);
    put_u32(p, s.degenerate_merges);
}

fn decode_stats(r: &mut SliceReader<'_>) -> Result<JournalStats> {
    Ok(JournalStats {
        n_records: r.read_u64()?,
        input_bytes: r.read_u64()?,
        max_level: r.read_u32()?,
        max_fanout: r.read_u32()?,
        incomplete_runs: r.read_u32()?,
        subtree_sorts: r.read_u32()?,
        degenerate_merges: r.read_u32()?,
    })
}

fn record_crc(seq: u64, tag: u8, payload: &[u8]) -> u64 {
    let mut pre = Vec::with_capacity(13 + payload.len());
    pre.extend_from_slice(&seq.to_le_bytes());
    pre.push(tag);
    pre.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    pre.extend_from_slice(payload);
    fnv1a64(&pre)
}

/// The write-ahead journal over a fixed extent of a [`Disk`].
///
/// The journal keeps an in-memory mirror of its extent; every append writes
/// the affected block(s) through [`Disk::journal_write`] synchronously, so
/// an append that returned `Ok` is on the device.
pub struct Journal {
    disk: Rc<Disk>,
    /// The full extent, header block first.
    blocks: Vec<u64>,
    /// In-memory mirror of the record region (`blocks[1..]`).
    image: Vec<u8>,
    /// Next append offset within the record region.
    head: usize,
    /// Sequence number the next appended record will carry.
    next_seq: u64,
}

impl Journal {
    /// Allocate and zero-fill a fresh journal extent of `nblocks` blocks
    /// (at least 2: one header + one record block) and write its header.
    pub fn create(disk: &Rc<Disk>, nblocks: usize) -> Result<Self> {
        assert!(nblocks >= 2, "a journal needs a header block plus at least one record block");
        let bs = disk.block_size();
        let blocks: Vec<u64> = (0..nblocks).map(|_| disk.alloc_block()).collect();
        // Zero-fill the record region so replay can tell a torn tail (zero
        // suffix) from corruption (nonzero bytes after a bad record).
        let zeros = vec![0u8; bs];
        for &b in &blocks[1..] {
            disk.journal_write(b, &zeros)?;
        }
        let journal = Self {
            disk: Rc::clone(disk),
            blocks,
            image: vec![0u8; (nblocks - 1) * bs],
            head: 0,
            next_seq: 1,
        };
        journal.write_header()?;
        Ok(journal)
    }

    /// Open the journal whose header lives at `header_block`, loading the
    /// record region into memory. The cursor is positioned at the start;
    /// call [`Journal::replay`] to parse records and position for appends.
    pub fn open(disk: &Rc<Disk>, header_block: u64) -> Result<Self> {
        let bs = disk.block_size();
        let mut buf = vec![0u8; bs];
        disk.journal_read(header_block, &mut buf)?;
        let blocks = parse_header(&buf, header_block)
            .ok_or(ExtError::JournalCorrupt { offset: 0, reason: "bad journal header" })?;
        let mut image = vec![0u8; (blocks.len() - 1) * bs];
        for (i, &b) in blocks[1..].iter().enumerate() {
            disk.journal_read(b, &mut image[i * bs..(i + 1) * bs])?;
        }
        Ok(Self { disk: Rc::clone(disk), blocks, image, head: 0, next_seq: 1 })
    }

    /// Scan the device's live blocks for a journal header and open the
    /// journal found, if any. This is how recovery finds the journal on a
    /// cold device: the header block self-describes the whole extent.
    pub fn locate(disk: &Rc<Disk>) -> Result<Option<Self>> {
        let bs = disk.block_size();
        let mut buf = vec![0u8; bs];
        for id in disk.live_blocks() {
            disk.journal_read(id, &mut buf)?;
            if parse_header(&buf, id).is_some() {
                return Ok(Some(Self::open(disk, id)?));
            }
        }
        Ok(None)
    }

    /// The journal's blocks (header first). Recovery must not free these.
    pub fn blocks(&self) -> &[u64] {
        &self.blocks
    }

    /// Bytes of record capacity in the extent.
    pub fn capacity(&self) -> usize {
        self.image.len()
    }

    /// Bytes of record region currently used.
    pub fn used(&self) -> usize {
        self.head
    }

    fn write_header(&self) -> Result<()> {
        let bs = self.disk.block_size();
        let mut h = Vec::with_capacity(bs);
        h.extend_from_slice(JOURNAL_MAGIC);
        h.write_u32(self.blocks.len() as u32)?;
        for &b in &self.blocks {
            h.write_u64(b)?;
        }
        let crc = fnv1a64(&h);
        h.write_u64(crc)?;
        if h.len() > bs {
            return Err(ExtError::Corrupt(format!(
                "journal header needs {} bytes but the block size is {bs}",
                h.len()
            )));
        }
        self.disk.journal_write(self.blocks[0], &h)
    }

    /// Append one record durably: when this returns `Ok`, the record is on
    /// the device. Note that the record only *counts* once a later `Commit`
    /// covers it -- use [`Journal::checkpoint`] for the barrier + commit
    /// sequence.
    pub fn append(&mut self, rec: &JournalRecord) -> Result<()> {
        let payload = rec.encode_payload();
        let total = RECORD_OVERHEAD + payload.len();
        if self.head + total > self.image.len() {
            return Err(ExtError::Corrupt(format!(
                "journal overflow: record of {total} bytes does not fit ({} of {} used)",
                self.head,
                self.image.len()
            )));
        }
        let seq = self.next_seq;
        let tag = rec.type_tag();
        let start = self.head;
        let mut w = start;
        self.image[w..w + 8].copy_from_slice(&seq.to_le_bytes());
        w += 8;
        self.image[w] = tag;
        w += 1;
        self.image[w..w + 4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        w += 4;
        self.image[w..w + payload.len()].copy_from_slice(&payload);
        w += payload.len();
        self.image[w..w + 8].copy_from_slice(&record_crc(seq, tag, &payload).to_le_bytes());
        w += 8;
        self.flush_range(start, w)?;
        self.head = w;
        self.next_seq = seq + 1;
        self.disk.stats().add_journal_appends(1);
        if rec.is_commit() {
            self.disk.stats().add_journal_commits(1);
        }
        Ok(())
    }

    /// Write the blocks covering image byte range `[from, to)` to the device.
    fn flush_range(&self, from: usize, to: usize) -> Result<()> {
        let bs = self.disk.block_size();
        let first = from / bs;
        let last = (to.max(1) - 1) / bs;
        for i in first..=last {
            self.disk.journal_write(self.blocks[1 + i], &self.image[i * bs..(i + 1) * bs])?;
        }
        Ok(())
    }

    /// Checkpoint: append `recs`, force every outstanding data write onto
    /// the device (pool flush + I/O barrier), then append the `Commit`
    /// record that makes them count. This ordering is the whole crash-
    /// consistency contract -- the commit must never precede the barrier.
    pub fn checkpoint(&mut self, recs: &[JournalRecord]) -> Result<()> {
        for rec in recs {
            debug_assert!(!rec.is_commit(), "checkpoint writes the commit itself");
            self.append(rec)?;
        }
        self.disk.cache_flush_all()?;
        self.disk.io_barrier()?;
        self.append_commit()
    }

    /// Append the commit record. Callers must have issued an `io_barrier`
    /// first; [`Journal::checkpoint`] is the sanctioned wrapper.
    fn append_commit(&mut self) -> Result<()> {
        self.append(&JournalRecord::Commit)
    }

    /// Compact the journal in place: zero the record region (in memory and
    /// on the device), restart sequence numbering, then [`checkpoint`]
    /// `recs` as the new log. An append-only log over a fixed extent
    /// eventually overflows under repeated maintenance -- scrub re-seals
    /// every repaired extent after each pass -- so compaction folds the
    /// live state back down to the space one checkpoint needs.
    ///
    /// Not crash-atomic: a crash between the zeroing and the commit leaves
    /// an empty journal. Callers run it on quiescent maintenance paths
    /// (scrub on a finished sort), never mid-sort.
    ///
    /// [`checkpoint`]: Journal::checkpoint
    pub fn reset(&mut self, recs: &[JournalRecord]) -> Result<()> {
        self.image.fill(0);
        let zeros = vec![0u8; self.disk.block_size()];
        for &b in &self.blocks[1..] {
            self.disk.journal_write(b, &zeros)?;
        }
        self.head = 0;
        self.next_seq = 1;
        self.checkpoint(recs)
    }

    /// Parse the record region, returning every record up to and including
    /// the last `Commit`. The journal is then positioned to append after
    /// that commit, and any bytes beyond it (an uncommitted tail, torn or
    /// whole) are re-zeroed on the device so they cannot confuse a later
    /// replay.
    ///
    /// Strictness: a checksum mismatch followed only by zeroes is a
    /// tolerated torn tail (parsing stops); a mismatch with nonzero bytes
    /// after it, a sequence-number break, or a record overrunning the
    /// extent yield [`ExtError::JournalCorrupt`].
    pub fn replay(&mut self) -> Result<Vec<JournalRecord>> {
        let mut records = Vec::new();
        let mut pos = 0usize;
        let mut last_seq = 0u64;
        let mut committed_end = 0usize;
        let mut committed_count = 0usize;
        loop {
            if pos + RECORD_OVERHEAD > self.image.len() {
                break; // no room for another record header: clean end
            }
            let seq = le_u64(&self.image, pos);
            if seq == 0 {
                break; // zeroed header: clean end of log
            }
            let tag = self.image[pos + 8];
            let plen = le_u32(&self.image, pos + 9) as usize;
            let total = RECORD_OVERHEAD + plen;
            if pos + total > self.image.len() {
                return Err(ExtError::JournalCorrupt {
                    offset: pos as u64,
                    reason: "record overruns journal extent",
                });
            }
            let payload = &self.image[pos + 13..pos + 13 + plen];
            let stored_crc = le_u64(&self.image, pos + total - 8);
            if stored_crc != record_crc(seq, tag, payload) {
                // A torn append leaves zeroes after the partially-landed
                // record (the extent was zero-filled up front); a bad
                // record with more data behind it is corruption.
                if self.image[pos + total..].iter().all(|&b| b == 0) {
                    break;
                }
                return Err(ExtError::JournalCorrupt {
                    offset: pos as u64,
                    reason: "checksum mismatch",
                });
            }
            if seq != last_seq + 1 {
                return Err(ExtError::JournalCorrupt {
                    offset: pos as u64,
                    reason: "sequence break",
                });
            }
            let rec = JournalRecord::decode(tag, payload, pos as u64)?;
            let is_commit = rec.is_commit();
            records.push(rec);
            last_seq = seq;
            pos += total;
            if is_commit {
                committed_end = pos;
                committed_count = records.len();
            }
        }
        // Truncate to the last commit: later appends overwrite the
        // uncommitted tail, and the stale bytes are re-zeroed now so a torn
        // future append still leaves a zero suffix behind it.
        records.truncate(committed_count);
        if committed_end < pos {
            self.image[committed_end..pos].fill(0);
            self.flush_range(committed_end, pos)?;
        }
        self.head = committed_end;
        self.next_seq = {
            // Sequence of the last surviving record + 1.
            let mut seq = 0u64;
            let mut p = 0usize;
            while p < committed_end {
                seq = le_u64(&self.image, p);
                let plen = le_u32(&self.image, p + 9) as usize;
                p += RECORD_OVERHEAD + plen;
            }
            seq + 1
        };
        Ok(records)
    }
}

/// Validate a journal header block; returns the extent's block list.
fn parse_header(buf: &[u8], self_id: u64) -> Option<Vec<u64>> {
    if buf.len() < JOURNAL_MAGIC.len() + 4 + 8 || &buf[..8] != JOURNAL_MAGIC {
        return None;
    }
    let n = le_u32(buf, 8) as usize;
    if n < 2 {
        return None;
    }
    let body_len = 12 + n * 8;
    if body_len + 8 > buf.len() {
        return None;
    }
    let crc = le_u64(buf, body_len);
    if fnv1a64(&buf[..body_len]) != crc {
        return None;
    }
    let blocks: Vec<u64> = (0..n).map(|i| le_u64(buf, 12 + i * 8)).collect();
    // The header must name itself as the first block.
    if blocks[0] != self_id {
        return None;
    }
    Some(blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::IoCat;

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::SortStarted { input_len: 4096 },
            JournalRecord::RunSealed { token: 0, len: 777, blocks: vec![5, 9, 13], parity: None },
            JournalRecord::RunSealed {
                token: 5,
                len: 888,
                blocks: vec![20, 21],
                parity: Some(RunParity { group: 2, parity: vec![22], sums: vec![10, 11] }),
            },
            JournalRecord::MergePassStarted { pass: 1 },
            JournalRecord::MergePassCommitted { pass: 1, output: 2, consumed: vec![0, 1] },
            JournalRecord::RunDiscarded { token: 1 },
            JournalRecord::ScanDone { pending: vec![2, 3], stats: JournalStats::default() },
            JournalRecord::SortDone {
                root: 4,
                root_flat: true,
                stats: JournalStats { n_records: 12, ..JournalStats::default() },
            },
        ]
    }

    #[test]
    fn records_roundtrip_through_append_and_replay() {
        let disk = crate::Disk::new_mem(128);
        let mut j = Journal::create(&disk, 8).unwrap();
        let recs = sample_records();
        j.checkpoint(&recs).unwrap();
        let header = j.blocks()[0];
        drop(j);
        let mut j2 = Journal::open(&disk, header).unwrap();
        let mut expected = recs;
        expected.push(JournalRecord::Commit);
        assert_eq!(j2.replay().unwrap(), expected);
        let snap = disk.stats().snapshot();
        assert_eq!(snap.journal_appends(), 9, "eight records plus the commit");
        assert_eq!(snap.journal_commits(), 1);
        assert!(snap.writes(IoCat::Journal) > 0 && snap.reads(IoCat::Journal) > 0);
    }

    #[test]
    fn reset_compacts_the_log_and_survives_a_cold_reopen() {
        let disk = crate::Disk::new_mem(128);
        let mut j = Journal::create(&disk, 8).unwrap();
        // Burn most of the extent with append-only history.
        for token in 0..8u32 {
            j.checkpoint(&[JournalRecord::RunSealed {
                token,
                len: 64,
                blocks: vec![u64::from(token)],
                parity: None,
            }])
            .unwrap();
        }
        let used_before = j.used();
        let snapshot = vec![
            JournalRecord::SortStarted { input_len: 99 },
            JournalRecord::RunSealed { token: 7, len: 64, blocks: vec![7], parity: None },
        ];
        j.reset(&snapshot).unwrap();
        assert!(j.used() < used_before, "compaction must reclaim space");
        let header = j.blocks()[0];
        drop(j);
        // A cold reopen replays exactly the snapshot (plus its commit):
        // the pre-reset history is gone from the device too.
        let mut j2 = Journal::open(&disk, header).unwrap();
        let mut expected = snapshot;
        expected.push(JournalRecord::Commit);
        assert_eq!(j2.replay().unwrap(), expected);
        // The reset journal keeps accepting appends with a clean sequence.
        j2.checkpoint(&[JournalRecord::RunDiscarded { token: 7 }]).unwrap();
        drop(j2);
        let mut j3 = Journal::open(&disk, header).unwrap();
        assert_eq!(j3.replay().unwrap().len(), 5);
    }

    #[test]
    fn locate_finds_the_journal_among_data_blocks() {
        let disk = crate::Disk::new_mem(128);
        // Data blocks before and after the journal extent.
        let a = disk.alloc_block();
        disk.write_block(a, &[0xAB; 128], IoCat::RunWrite).unwrap();
        let mut j = Journal::create(&disk, 4).unwrap();
        let b = disk.alloc_block();
        disk.write_block(b, &[0xCD; 128], IoCat::RunWrite).unwrap();
        j.checkpoint(&[JournalRecord::SortStarted { input_len: 1 }]).unwrap();
        let expect = j.blocks().to_vec();
        drop(j);
        let mut found = Journal::locate(&disk).unwrap().expect("journal present");
        assert_eq!(found.blocks(), &expect[..]);
        assert_eq!(found.replay().unwrap().len(), 2);
        // A journal-less disk locates nothing.
        let empty = crate::Disk::new_mem(128);
        empty.alloc_block();
        assert!(Journal::locate(&empty).unwrap().is_none());
    }

    #[test]
    fn replay_discards_an_uncommitted_tail_and_rezeros_it() {
        let disk = crate::Disk::new_mem(128);
        let mut j = Journal::create(&disk, 8).unwrap();
        j.checkpoint(&[JournalRecord::SortStarted { input_len: 10 }]).unwrap();
        // Appended but never committed: must not survive replay.
        j.append(&JournalRecord::RunSealed { token: 9, len: 1, blocks: vec![], parity: None })
            .unwrap();
        let header = j.blocks()[0];
        drop(j);
        let mut j2 = Journal::open(&disk, header).unwrap();
        let recs = j2.replay().unwrap();
        assert_eq!(recs, vec![JournalRecord::SortStarted { input_len: 10 }, JournalRecord::Commit]);
        // The tail was re-zeroed on the device: a fresh open+replay agrees
        // and appending continues the sequence cleanly.
        j2.append(&JournalRecord::RunDiscarded { token: 0 }).unwrap();
        drop(j2);
        let mut j3 = Journal::open(&disk, header).unwrap();
        // The new tail record is uncommitted, so replay drops it again --
        // but parsing must get past it without a corruption error.
        assert_eq!(j3.replay().unwrap().len(), 2);
    }

    #[test]
    fn torn_tail_record_is_tolerated() {
        let disk = crate::Disk::new_mem(128);
        let mut j = Journal::create(&disk, 8).unwrap();
        j.checkpoint(&[JournalRecord::SortStarted { input_len: 10 }]).unwrap();
        j.append(&JournalRecord::RunSealed { token: 1, len: 64, blocks: vec![7], parity: None })
            .unwrap();
        let (blocks, used) = (j.blocks().to_vec(), j.used());
        drop(j);
        // Tear the last record: zero its trailing 10 bytes (as if the crash
        // cut the write short), via the raw device image.
        let bs = disk.block_size();
        let torn_start = used - 10;
        let blk = blocks[1 + torn_start / bs];
        let mut buf = vec![0u8; bs];
        disk.journal_read(blk, &mut buf).unwrap();
        let at = torn_start % bs;
        buf[at..(at + 10).min(bs)].fill(0);
        disk.journal_write(blk, &buf).unwrap();
        let mut j2 = Journal::open(&disk, blocks[0]).unwrap();
        let recs = j2.replay().expect("a torn tail is not corruption");
        assert_eq!(recs.len(), 2, "only the committed prefix survives");
    }

    #[test]
    fn negative_bitflip_in_a_committed_record_is_corruption() {
        let disk = crate::Disk::new_mem(128);
        let mut j = Journal::create(&disk, 8).unwrap();
        j.checkpoint(&sample_records()).unwrap();
        let blocks = j.blocks().to_vec();
        drop(j);
        // Flip one payload bit in the middle of the record region (offset
        // 50 is inside the second record's payload, clear of any length
        // field -- damaging a length instead surfaces as an overrun).
        let mut buf = vec![0u8; 128];
        disk.journal_read(blocks[1], &mut buf).unwrap();
        buf[50] ^= 0x10;
        disk.journal_write(blocks[1], &buf).unwrap();
        let mut j2 = Journal::open(&disk, blocks[0]).unwrap();
        let err = j2.replay().unwrap_err();
        assert!(
            matches!(err, ExtError::JournalCorrupt { reason: "checksum mismatch", .. }),
            "{err}"
        );
    }

    #[test]
    fn negative_sequence_break_is_corruption() {
        let disk = crate::Disk::new_mem(128);
        let mut j = Journal::create(&disk, 8).unwrap();
        j.checkpoint(&[JournalRecord::SortStarted { input_len: 1 }]).unwrap();
        // Forge a duplicate sequence number on the next record by rolling
        // the counter back: the record checksums fine but repeats seq 2.
        j.next_seq = 2;
        j.append(&JournalRecord::RunDiscarded { token: 0 }).unwrap();
        let header = j.blocks()[0];
        drop(j);
        let mut j2 = Journal::open(&disk, header).unwrap();
        let err = j2.replay().unwrap_err();
        assert!(matches!(err, ExtError::JournalCorrupt { reason: "sequence break", .. }), "{err}");
    }

    #[test]
    fn negative_record_overrunning_the_extent_is_corruption() {
        let disk = crate::Disk::new_mem(128);
        let mut j = Journal::create(&disk, 4).unwrap();
        j.checkpoint(&[JournalRecord::SortStarted { input_len: 1 }]).unwrap();
        let (blocks, used) = (j.blocks().to_vec(), j.used());
        drop(j);
        // Forge a record header at the tail claiming an enormous payload.
        let bs = disk.block_size();
        let blk_idx = used / bs;
        let mut buf = vec![0u8; bs];
        disk.journal_read(blocks[1 + blk_idx], &mut buf).unwrap();
        let off = used % bs;
        buf[off..off + 8].copy_from_slice(&3u64.to_le_bytes()); // seq 3
        buf[off + 8] = T_COMMIT;
        buf[off + 9..off + 13].copy_from_slice(&u32::MAX.to_le_bytes());
        disk.journal_write(blocks[1 + blk_idx], &buf).unwrap();
        let mut j2 = Journal::open(&disk, blocks[0]).unwrap();
        let err = j2.replay().unwrap_err();
        assert!(
            matches!(
                err,
                ExtError::JournalCorrupt { reason: "record overruns journal extent", .. }
            ),
            "{err}"
        );
    }

    #[test]
    fn journal_overflow_is_a_structured_error() {
        let disk = crate::Disk::new_mem(64);
        let mut j = Journal::create(&disk, 2).unwrap(); // one 64-byte record block
        j.append(&JournalRecord::SortStarted { input_len: 1 }).unwrap();
        j.append(&JournalRecord::Commit).unwrap();
        let err = j
            .append(&JournalRecord::RunSealed {
                token: 0,
                len: 0,
                blocks: vec![1, 2, 3],
                parity: None,
            })
            .unwrap_err();
        assert!(matches!(err, ExtError::Corrupt(ref m) if m.contains("journal overflow")), "{err}");
    }
}
