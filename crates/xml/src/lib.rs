//! # nexsort-xml
//!
//! The XML data model for the NEXSORT reproduction: a from-scratch streaming
//! parser and serializer, a small DOM, the compact level-numbered record
//! representation with the compaction techniques of Section 3.2 (tag
//! dictionaries, end-tag elimination), sort keys and ordering criteria
//! (including the complex single-pass subtree criteria), and the key-path
//! representation (Table 1) that the external merge-sort baseline sorts by.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dom;
mod error;
mod event;
mod key;
mod keypath;
mod parser;
mod rec;
mod recstream;
mod specstr;
mod sym;
mod varint;
mod writer;
mod xrec;

pub use dom::{events_to_dom, parse_dom, Element, XNode};
pub use error::{Result, XmlError};
pub use event::{Event, EventSource, VecEvents};
pub use key::{KeyRule, KeySource, KeyType, KeyValue, SortSpec, TextKey};
pub use keypath::{attach_paths, KeyPath, PathBuilder, PathComp, PathedRec};
pub use parser::{parse_events, XmlParser};
pub use rec::{ElemRec, PatchRec, PtrRec, Rec, RecDecoder, TextRec};
pub use recstream::{apply_patches, events_to_recs, recs_to_events, RecBuilder, RecEmitter};
pub use specstr::{build_spec, parse_key_arg, parse_rule};
pub use sym::{NameRef, TagDict};
pub use varint::{
    read_bytes, read_ivarint, read_uvarint, uvarint_len, write_bytes, write_ivarint, write_uvarint,
};
pub use writer::{events_to_xml, XmlWriter};
pub use xrec::{is_xrec, read_xrec, write_xrec, XrecReader, FLAG_KEYS_FINAL};
