//! Error type for the XML data-model crate.

use std::fmt;

use nexsort_extmem::ExtError;

/// Errors from parsing, encoding, or interpreting XML data.
#[derive(Debug)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum XmlError {
    /// Malformed XML input, with the byte offset where it was detected.
    Parse { offset: u64, msg: String },
    /// A record failed to decode or violated a structural invariant.
    Record(String),
    /// A symbol id had no entry in the tag dictionary.
    UnknownSymbol(u32),
    /// An error bubbled up from the external-memory substrate.
    Ext(ExtError),
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::Parse { offset, msg } => write!(f, "XML parse error at byte {offset}: {msg}"),
            XmlError::Record(msg) => write!(f, "record error: {msg}"),
            XmlError::UnknownSymbol(id) => write!(f, "unknown symbol id {id}"),
            XmlError::Ext(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for XmlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            XmlError::Ext(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ExtError> for XmlError {
    fn from(e: ExtError) -> Self {
        XmlError::Ext(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, XmlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = XmlError::Parse { offset: 12, msg: "unexpected '<'".into() };
        assert!(e.to_string().contains("byte 12"));
        assert!(XmlError::UnknownSymbol(5).to_string().contains('5'));
        assert!(XmlError::Record("short".into()).to_string().contains("short"));
    }

    #[test]
    fn ext_errors_convert_and_chain() {
        let e: XmlError = ExtError::Corrupt("x".into()).into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
