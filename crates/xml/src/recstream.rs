//! Conversion between XML events and compact records.
//!
//! [`RecBuilder`] is the scanning half: it turns the event stream into level-
//! numbered records (end tags are consumed, not stored -- Section 3.2's
//! end-tag elimination) while evaluating the ordering criterion. Keys known
//! from the start tag are embedded directly; *deferred* keys (text or
//! child-path sources) are evaluated in a single pass with constant state per
//! open element and emitted as [`Rec::KeyPatch`] records at the end tag,
//! exactly as the paper describes augmenting the path stack with pending
//! ordering expressions.
//!
//! [`RecEmitter`] is the output half: it regenerates events from records,
//! reconstructing end tags from level transitions ("a transition from a start
//! tag on level l1 to a start tag on level l2 <= l1 must have l1 - l2 + 1 end
//! tags in between").

use crate::error::{Result, XmlError};
use crate::event::Event;
use crate::key::{KeyRule, KeySource, KeyValue, SortSpec};
use crate::rec::{ElemRec, PatchRec, Rec, TextRec};
use crate::sym::{NameRef, TagDict};

/// Deferred-key evaluation state for one open element.
#[derive(Debug)]
struct Pending {
    rule: KeyRule,
    /// For `ChildPath`: number of path components matched along the current
    /// open chain. Unused for `Text`.
    matched: usize,
    captured: Option<Vec<u8>>,
}

#[derive(Debug)]
struct EvalFrame {
    pending: Option<Pending>,
}

/// Streaming events-to-records converter with key evaluation.
pub struct RecBuilder {
    spec: SortSpec,
    compaction: bool,
    level: u32,
    seq: u64,
    frames: Vec<EvalFrame>,
}

impl RecBuilder {
    /// A builder for `spec`. With `compaction` on, names are interned into
    /// the caller's [`TagDict`]; off, they are stored inline in each record.
    pub fn new(spec: SortSpec, compaction: bool) -> Self {
        Self { spec, compaction, level: 0, seq: 0, frames: Vec::new() }
    }

    /// Current element nesting depth (root = 1 while open).
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Total records' sequence numbers issued so far.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    fn name_ref(&self, dict: &mut TagDict, name: &[u8]) -> NameRef {
        if self.compaction {
            NameRef::Sym(dict.intern(name))
        } else {
            NameRef::Inline(name.to_vec())
        }
    }

    /// Feed one event; resulting records are appended to `out` (0..=2 per
    /// event: an end tag yields at most one `KeyPatch`).
    pub fn push_event(&mut self, ev: &Event, dict: &mut TagDict, out: &mut Vec<Rec>) -> Result<()> {
        match ev {
            Event::Start { name, attrs } => {
                self.level += 1;
                // Advance child-path matchers of open ancestors.
                let new_level = self.level as usize;
                for (j, frame) in self.frames.iter_mut().enumerate() {
                    if let Some(p) = &mut frame.pending {
                        if p.captured.is_some() {
                            continue;
                        }
                        if let KeySource::ChildPath(path) = &p.rule.source {
                            let d = new_level - (j + 1); // relative depth
                            if d >= 1
                                && p.matched == d - 1
                                && d - 1 < path.len()
                                && path[d - 1] == *name
                            {
                                p.matched = d;
                            }
                        }
                    }
                }
                let rule = self.spec.rule_for(name);
                let key = self.spec.start_key(name, attrs);
                let pending = if key.is_none() {
                    Some(Pending { rule: rule.clone(), matched: 0, captured: None })
                } else {
                    None
                };
                self.frames.push(EvalFrame { pending });
                let name_ref = self.name_ref(dict, name);
                let attrs =
                    attrs.iter().map(|(k, v)| (self.name_ref(dict, k), v.clone())).collect();
                out.push(Rec::Elem(ElemRec {
                    level: self.level,
                    name: name_ref,
                    attrs,
                    key: key.unwrap_or(KeyValue::Missing),
                    seq: self.seq,
                }));
                self.seq += 1;
                Ok(())
            }
            Event::Text { content } => {
                if self.level == 0 {
                    return Err(XmlError::Record("text outside the root element".into()));
                }
                let text_level = self.level as usize + 1;
                for (j, frame) in self.frames.iter_mut().enumerate() {
                    if let Some(p) = &mut frame.pending {
                        if p.captured.is_some() {
                            continue;
                        }
                        let owner_level = j + 1;
                        match &p.rule.source {
                            KeySource::Text if text_level == owner_level + 1 => {
                                p.captured = Some(content.clone());
                            }
                            KeySource::ChildPath(path)
                                if p.matched == path.len()
                                    && text_level == owner_level + path.len() + 1 =>
                            {
                                p.captured = Some(content.clone());
                            }
                            _ => {}
                        }
                    }
                }
                out.push(Rec::Text(TextRec {
                    level: self.level + 1,
                    content: content.clone(),
                    key: self.spec.text_node_key(content),
                    seq: self.seq,
                }));
                self.seq += 1;
                Ok(())
            }
            Event::End { .. } => {
                if self.level == 0 {
                    return Err(XmlError::Record("end tag with no open element".into()));
                }
                let closing_level = self.level as usize;
                let frame = self.frames.pop().expect("frame per open element");
                if let Some(p) = frame.pending {
                    let key = match p.captured {
                        Some(raw) => p.rule.oriented(KeyValue::from_bytes(&raw, p.rule.ty)),
                        None => KeyValue::Missing,
                    };
                    if key != KeyValue::Missing {
                        out.push(Rec::KeyPatch(PatchRec { level: self.level, key }));
                    }
                }
                // Backtrack child-path matchers of remaining ancestors.
                for (j, frame) in self.frames.iter_mut().enumerate() {
                    if let Some(p) = &mut frame.pending {
                        if p.captured.is_none() {
                            if let KeySource::ChildPath(_) = &p.rule.source {
                                let d = closing_level - (j + 1);
                                if d >= 1 && p.matched == d {
                                    p.matched = d - 1;
                                }
                            }
                        }
                    }
                }
                self.level -= 1;
                Ok(())
            }
        }
    }
}

/// Convert a complete event sequence to records (convenience wrapper).
pub fn events_to_recs(
    events: &[Event],
    spec: &SortSpec,
    dict: &mut TagDict,
    compaction: bool,
) -> Result<Vec<Rec>> {
    let mut b = RecBuilder::new(spec.clone(), compaction);
    let mut out = Vec::new();
    for ev in events {
        b.push_event(ev, dict, &mut out)?;
    }
    if b.level() != 0 {
        return Err(XmlError::Record("event stream ended with open elements".into()));
    }
    Ok(out)
}

/// Apply all [`Rec::KeyPatch`] records in a stream to their target elements,
/// returning the patched stream without the patches.
pub fn apply_patches(recs: Vec<Rec>) -> Result<Vec<Rec>> {
    let mut out: Vec<Rec> = Vec::with_capacity(recs.len());
    let mut open: Vec<usize> = Vec::new(); // indices of open Elem records
    for rec in recs {
        match rec {
            Rec::KeyPatch(p) => {
                while open.last().is_some_and(|&i| out[i].level() > p.level) {
                    open.pop();
                }
                match open.last() {
                    Some(&i) if out[i].level() == p.level => {
                        out[i].set_key(p.key);
                        open.pop();
                    }
                    _ => {
                        return Err(XmlError::Record(format!(
                            "key patch at level {} has no open element",
                            p.level
                        )))
                    }
                }
            }
            rec => {
                let lvl = rec.level();
                while open.last().is_some_and(|&i| out[i].level() >= lvl) {
                    open.pop();
                }
                if matches!(rec, Rec::Elem(_)) {
                    open.push(out.len());
                }
                out.push(rec);
            }
        }
    }
    Ok(out)
}

/// Streaming records-to-events converter (end-tag reconstruction).
pub struct RecEmitter<'a> {
    dict: &'a TagDict,
    open: Vec<Vec<u8>>,
}

impl<'a> RecEmitter<'a> {
    /// An emitter resolving interned names against `dict`.
    pub fn new(dict: &'a TagDict) -> Self {
        Self { dict, open: Vec::new() }
    }

    fn close_to(&mut self, target_open: usize, out: &mut Vec<Event>) {
        while self.open.len() > target_open {
            let name = self.open.pop().expect("checked non-empty");
            out.push(Event::End { name });
        }
    }

    /// Feed one record; resulting events are appended to `out`.
    pub fn push_rec(&mut self, rec: &Rec, out: &mut Vec<Event>) -> Result<()> {
        match rec {
            Rec::Elem(r) => {
                let target = (r.level - 1) as usize;
                if target > self.open.len() {
                    return Err(XmlError::Record(format!(
                        "level jump: element at level {} under {} open elements",
                        r.level,
                        self.open.len()
                    )));
                }
                self.close_to(target, out);
                let name = r.name.resolve(self.dict)?.to_vec();
                let attrs = r
                    .attrs
                    .iter()
                    .map(|(k, v)| Ok((k.resolve(self.dict)?.to_vec(), v.clone())))
                    .collect::<Result<Vec<_>>>()?;
                out.push(Event::Start { name: name.clone(), attrs });
                self.open.push(name);
                Ok(())
            }
            Rec::Text(r) => {
                let target = (r.level.max(1) - 1) as usize;
                if r.level < 2 || target > self.open.len() {
                    return Err(XmlError::Record(format!(
                        "level jump: text at level {} under {} open elements",
                        r.level,
                        self.open.len()
                    )));
                }
                self.close_to(target, out);
                out.push(Event::Text { content: r.content.clone() });
                Ok(())
            }
            Rec::RunPtr(r) => Err(XmlError::Record(format!(
                "run pointer (run {}) cannot be emitted as events; resolve runs first",
                r.run
            ))),
            Rec::KeyPatch(_) => Ok(()), // metadata only
        }
    }

    /// Close any still-open elements.
    pub fn finish(&mut self, out: &mut Vec<Event>) {
        self.close_to(0, out);
    }
}

/// Convert a complete record sequence back to events (convenience wrapper).
pub fn recs_to_events(recs: &[Rec], dict: &TagDict) -> Result<Vec<Event>> {
    let mut em = RecEmitter::new(dict);
    let mut out = Vec::new();
    for rec in recs {
        em.push_rec(rec, &mut out)?;
    }
    em.finish(&mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::{KeyRule, TextKey};
    use crate::parser::parse_events;

    fn roundtrip(doc: &str, spec: &SortSpec) -> (Vec<Event>, Vec<Rec>, Vec<Event>) {
        let events = parse_events(doc.as_bytes()).unwrap();
        let mut dict = TagDict::new();
        let recs = events_to_recs(&events, spec, &mut dict, true).unwrap();
        let back = recs_to_events(&recs, &dict).unwrap();
        (events, recs, back)
    }

    #[test]
    fn events_records_events_roundtrip() {
        let spec = SortSpec::by_attribute("name");
        let doc = "<company><region name=\"NE\"><branch name=\"Durham\">\
                   <employee ID=\"454\"><name>Smith</name></employee></branch></region></company>";
        let (events, recs, back) = roundtrip(doc, &spec);
        assert_eq!(events, back);
        // End tags are eliminated: record count < event count.
        assert!(recs.len() < events.len());
    }

    #[test]
    fn levels_follow_the_paper_convention_root_is_one() {
        let spec = SortSpec::by_attribute("x");
        let (_, recs, _) = roundtrip("<a><b><c/></b><d/></a>", &spec);
        let levels: Vec<u32> = recs.iter().map(Rec::level).collect();
        assert_eq!(levels, vec![1, 2, 3, 2]);
    }

    #[test]
    fn start_known_keys_are_embedded_directly() {
        let spec = SortSpec::by_attribute("name");
        let (_, recs, _) = roundtrip("<a name=\"root\"><b name=\"x\"/></a>", &spec);
        assert_eq!(recs[0].key(), &KeyValue::Bytes(b"root".to_vec()));
        assert_eq!(recs[1].key(), &KeyValue::Bytes(b"x".to_vec()));
    }

    #[test]
    fn text_source_emits_a_patch_at_end_tag() {
        let spec = SortSpec::uniform(KeyRule::text());
        let (_, recs, _) = roundtrip("<a><b>beta</b></a>", &spec);
        // a(elem, key pending), b(elem), "beta"(text), patch(b), patch(a).
        let patches: Vec<&Rec> = recs.iter().filter(|r| matches!(r, Rec::KeyPatch(_))).collect();
        assert_eq!(patches.len(), 1, "only b has an immediate text child");
        match patches[0] {
            Rec::KeyPatch(p) => {
                assert_eq!(p.level, 2);
                assert_eq!(p.key, KeyValue::Bytes(b"beta".to_vec()));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn child_path_key_follows_the_paper_example() {
        // order employee by personalInfo/name/lastName (Section 3.2).
        let spec = SortSpec::by_attribute("name")
            .with_rule("employee", KeyRule::child_path(&["personalInfo", "name", "lastName"]));
        let doc = "<employee><personalInfo><name><firstName>Ada</firstName>\
                   <lastName>Lovelace</lastName></name></personalInfo></employee>";
        let (_, recs, _) = roundtrip(doc, &spec);
        let patch = recs.iter().find_map(|r| match r {
            Rec::KeyPatch(p) if p.level == 1 => Some(p.key.clone()),
            _ => None,
        });
        assert_eq!(patch, Some(KeyValue::Bytes(b"Lovelace".to_vec())));
    }

    #[test]
    fn child_path_does_not_match_deeper_or_sideways_text() {
        let spec = SortSpec::uniform(KeyRule::child_path(&["k"]));
        // Root's key must come from its immediate k child's text, not from
        // the nested one under w or the k grandchild.
        let doc = "<root><w><k>wrong</k></w><k><k>nested-wrong</k></k><k>right-late</k></root>";
        let (_, recs, _) = roundtrip(doc, &spec);
        let root_patch = recs.iter().find_map(|r| match r {
            Rec::KeyPatch(p) if p.level == 1 => Some(p.key.clone()),
            _ => None,
        });
        // First text at exactly root/k/<text>: the nested k contains only a
        // deeper k, so the first capture is "right-late"? No: the second
        // child <k> has a <k> child whose text is at depth root+3, too deep.
        assert_eq!(root_patch, Some(KeyValue::Bytes(b"right-late".to_vec())));
    }

    #[test]
    fn first_capture_wins_for_deferred_keys() {
        let spec = SortSpec::uniform(KeyRule::text());
        let (_, recs, _) = roundtrip("<a>first<b/>second</a>", &spec);
        let patch = recs.iter().find_map(|r| match r {
            Rec::KeyPatch(p) if p.level == 1 => Some(p.key.clone()),
            _ => None,
        });
        assert_eq!(patch, Some(KeyValue::Bytes(b"first".to_vec())));
    }

    #[test]
    fn apply_patches_embeds_and_removes() {
        let spec = SortSpec::uniform(KeyRule::text());
        let (_, recs, _) = roundtrip("<a><b>bee</b><c>sea</c></a>", &spec);
        let patched = apply_patches(recs).unwrap();
        assert!(patched.iter().all(|r| !matches!(r, Rec::KeyPatch(_))));
        let b = patched.iter().find(|r| r.level() == 2 && matches!(r, Rec::Elem(_))).unwrap();
        assert_eq!(b.key(), &KeyValue::Bytes(b"bee".to_vec()));
    }

    #[test]
    fn text_nodes_keyed_by_content_when_requested() {
        let spec = SortSpec::by_attribute("x").with_text_key(TextKey::Content);
        let (_, recs, _) = roundtrip("<a>zeta</a>", &spec);
        assert_eq!(recs[1].key(), &KeyValue::Bytes(b"zeta".to_vec()));
    }

    #[test]
    fn compaction_off_stores_names_inline() {
        let events = parse_events(b"<verylongtagname attr=\"v\"/>").unwrap();
        let spec = SortSpec::by_attribute("attr");
        let mut dict = TagDict::new();
        let recs = events_to_recs(&events, &spec, &mut dict, false).unwrap();
        assert!(dict.is_empty());
        match &recs[0] {
            Rec::Elem(e) => {
                assert_eq!(e.name, NameRef::Inline(b"verylongtagname".to_vec()));
            }
            _ => panic!("expected element"),
        }
    }

    #[test]
    fn compaction_shrinks_encoded_size() {
        let doc = "<longelementname><longelementname a=\"1\"/><longelementname a=\"2\"/>\
                   </longelementname>";
        let events = parse_events(doc.as_bytes()).unwrap();
        let spec = SortSpec::by_attribute("a");
        let size = |compaction: bool| {
            let mut dict = TagDict::new();
            let recs = events_to_recs(&events, &spec, &mut dict, compaction).unwrap();
            recs.iter().map(Rec::encoded_len).sum::<usize>()
        };
        assert!(size(true) < size(false));
    }

    #[test]
    fn emitter_rejects_level_jumps_and_run_pointers() {
        let dict = TagDict::new();
        let mut em = RecEmitter::new(&dict);
        let mut out = Vec::new();
        let jump = Rec::Elem(ElemRec {
            level: 3,
            name: NameRef::Inline(b"x".to_vec()),
            attrs: vec![],
            key: KeyValue::Missing,
            seq: 0,
        });
        assert!(em.push_rec(&jump, &mut out).is_err());
        let ptr =
            Rec::RunPtr(crate::rec::PtrRec { level: 1, run: 0, key: KeyValue::Missing, seq: 0 });
        assert!(em.push_rec(&ptr, &mut out).is_err());
    }

    #[test]
    fn unbalanced_event_streams_are_rejected() {
        let spec = SortSpec::by_attribute("x");
        let mut dict = TagDict::new();
        let events = vec![Event::start("a", &[]), Event::start("b", &[])];
        assert!(events_to_recs(&events, &spec, &mut dict, true).is_err());
        let events = vec![Event::end("a")];
        assert!(events_to_recs(&events, &spec, &mut dict, true).is_err());
        let events = vec![Event::text("stray")];
        assert!(events_to_recs(&events, &spec, &mut dict, true).is_err());
    }
}
