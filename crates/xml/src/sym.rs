//! Tag/attribute-name dictionary compression (Section 3.2).
//!
//! "Each unique string can be converted to an integer before sorting and back
//! during output." The [`TagDict`] is that conversion table; [`NameRef`] lets
//! records carry either a dictionary id (compaction on) or the raw name
//! (compaction off), so the compaction ablation compares honest byte sizes.

use std::collections::HashMap;
use std::fmt;

use crate::error::{Result, XmlError};

/// Interned-name dictionary: byte string <-> dense `u32` id.
#[derive(Debug, Default, Clone)]
pub struct TagDict {
    names: Vec<Vec<u8>>,
    ids: HashMap<Vec<u8>, u32>,
}

impl TagDict {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its id (existing or fresh).
    pub fn intern(&mut self, name: &[u8]) -> u32 {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_vec());
        self.ids.insert(name.to_vec(), id);
        id
    }

    /// Resolve an id back to its name.
    pub fn resolve(&self, id: u32) -> Result<&[u8]> {
        self.names.get(id as usize).map(Vec::as_slice).ok_or(XmlError::UnknownSymbol(id))
    }

    /// Look up an existing id without interning.
    pub fn lookup(&self, name: &[u8]) -> Option<u32> {
        self.ids.get(name).copied()
    }

    /// Number of distinct names interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Approximate resident size in bytes (reported as metadata overhead).
    pub fn approx_bytes(&self) -> usize {
        self.names.iter().map(|n| n.len() * 2 + 16).sum()
    }
}

/// A name stored in a record: interned (compaction on) or inline.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NameRef {
    /// Dictionary id; resolve via the document's [`TagDict`].
    Sym(u32),
    /// The raw name bytes, stored in the record itself.
    Inline(Vec<u8>),
}

impl NameRef {
    /// Resolve to name bytes against `dict`.
    pub fn resolve<'a>(&'a self, dict: &'a TagDict) -> Result<&'a [u8]> {
        match self {
            NameRef::Sym(id) => dict.resolve(*id),
            NameRef::Inline(b) => Ok(b),
        }
    }

    /// Bytes this name contributes to an encoded record (excl. tag byte).
    pub fn encoded_len(&self) -> usize {
        match self {
            NameRef::Sym(id) => crate::varint::uvarint_len(u64::from(*id)),
            NameRef::Inline(b) => crate::varint::uvarint_len(b.len() as u64) + b.len(),
        }
    }
}

impl fmt::Display for NameRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameRef::Sym(id) => write!(f, "#{id}"),
            NameRef::Inline(b) => write!(f, "{}", String::from_utf8_lossy(b)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut d = TagDict::new();
        let a = d.intern(b"region");
        let b = d.intern(b"branch");
        let a2 = d.intern(b"region");
        assert_eq!(a, a2);
        assert_eq!((a, b), (0, 1));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn resolve_roundtrips_and_rejects_unknown() {
        let mut d = TagDict::new();
        let id = d.intern(b"employee");
        assert_eq!(d.resolve(id).unwrap(), b"employee");
        assert!(d.resolve(99).is_err());
        assert_eq!(d.lookup(b"employee"), Some(id));
        assert_eq!(d.lookup(b"nope"), None);
    }

    #[test]
    fn nameref_resolution_both_forms() {
        let mut d = TagDict::new();
        let id = d.intern(b"salary");
        assert_eq!(NameRef::Sym(id).resolve(&d).unwrap(), b"salary");
        assert_eq!(NameRef::Inline(b"bonus".to_vec()).resolve(&d).unwrap(), b"bonus");
        assert!(NameRef::Sym(42).resolve(&d).is_err());
    }

    #[test]
    fn interned_names_encode_smaller_than_inline() {
        let long = NameRef::Inline(b"averyverylongelementname".to_vec());
        let sym = NameRef::Sym(3);
        assert!(sym.encoded_len() < long.encoded_len());
    }
}
