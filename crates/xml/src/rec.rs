//! Compact element records and their on-disk codec.
//!
//! The compaction techniques of Section 3.2, realized: start tags carry a
//! *level number* instead of a matching end tag (end tags are reconstructed
//! during output from level transitions), names are dictionary ids
//! ([`NameRef::Sym`]) when compaction is on, and each element carries its
//! pre-extracted sort key and input sequence number so comparisons never
//! re-parse anything.
//!
//! Record kinds:
//! * [`Rec::Elem`] -- an element start (its subtree follows in DFS order);
//! * [`Rec::Text`] -- a text node;
//! * [`Rec::RunPtr`] -- a collapsed subtree: a pointer to its sorted run
//!   (Figure 2, "replace the subtree with just its root element ... together
//!   with a pointer to the disk location of the sorted run");
//! * [`Rec::KeyPatch`] -- a deferred key, emitted at an element's end tag
//!   when the ordering criterion needs the subtree (Section 3.2, complex
//!   ordering criteria: "this result can be pushed onto the data stack with
//!   the end tag and used for sorting").
//!
//! Every encoded record ends with a fixed 4-byte total length, so streams of
//! records can also be decoded *backward* (used by the reversal pre-pass
//! that resolves deferred keys before an external subtree sort).

use std::cmp::Ordering;

use nexsort_extmem::{ByteReader, ByteSink, ExtentRevCursor, SliceReader};

use crate::error::{Result, XmlError};
use crate::key::KeyValue;
use crate::sym::NameRef;
use crate::varint::{read_bytes, read_uvarint, write_bytes, write_uvarint};

/// An element start record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElemRec {
    /// Depth in the document; the root is at level 1 (paper convention).
    pub level: u32,
    /// Element name (interned or inline).
    pub name: NameRef,
    /// Attributes in document order.
    pub attrs: Vec<(NameRef, Vec<u8>)>,
    /// Sort key; `KeyValue::Missing` until a deferred key is patched in.
    pub key: KeyValue,
    /// Input sequence number: the sibling-uniqueness tiebreak.
    pub seq: u64,
}

/// A text-node record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextRec {
    /// Depth of the text node (parent's level + 1).
    pub level: u32,
    /// The text content.
    pub content: Vec<u8>,
    /// Sort key (see [`crate::key::TextKey`]).
    pub key: KeyValue,
    /// Input sequence number.
    pub seq: u64,
}

/// A collapsed subtree: pointer to its sorted run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PtrRec {
    /// Level the collapsed subtree's root occupies.
    pub level: u32,
    /// The sorted run holding the subtree (root element included).
    pub run: u32,
    /// The root element's sort key (the subtree sorts by it in its parent).
    pub key: KeyValue,
    /// The root element's input sequence number.
    pub seq: u64,
}

/// A deferred key resolved at an element's end tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatchRec {
    /// Level of the element this key belongs to.
    pub level: u32,
    /// The resolved key.
    pub key: KeyValue,
}

/// One record in a document's record stream (DFS order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rec {
    /// Element start.
    Elem(ElemRec),
    /// Text node.
    Text(TextRec),
    /// Collapsed subtree (pointer to a sorted run).
    RunPtr(PtrRec),
    /// Deferred-key patch.
    KeyPatch(PatchRec),
}

const KIND_ELEM: u8 = 1;
const KIND_TEXT: u8 = 2;
const KIND_PTR: u8 = 3;
const KIND_PATCH: u8 = 4;

fn write_name(buf: &mut Vec<u8>, name: &NameRef) -> Result<()> {
    match name {
        NameRef::Sym(id) => {
            buf.write_u8(0)?;
            write_uvarint(buf, u64::from(*id))?;
        }
        NameRef::Inline(b) => {
            buf.write_u8(1)?;
            write_bytes(buf, b)?;
        }
    }
    Ok(())
}

fn read_name(src: &mut impl ByteReader) -> Result<NameRef> {
    match src.read_u8()? {
        0 => Ok(NameRef::Sym(read_uvarint(src)? as u32)),
        1 => Ok(NameRef::Inline(read_bytes(src)?)),
        t => Err(XmlError::Record(format!("bad name tag {t}"))),
    }
}

fn write_key(buf: &mut Vec<u8>, key: &KeyValue) -> Result<()> {
    key.encode(buf)
}

fn read_key(src: &mut impl ByteReader) -> Result<KeyValue> {
    KeyValue::decode(src)
}

impl Rec {
    /// The record's level (depth in the document tree).
    pub fn level(&self) -> u32 {
        match self {
            Rec::Elem(r) => r.level,
            Rec::Text(r) => r.level,
            Rec::RunPtr(r) => r.level,
            Rec::KeyPatch(r) => r.level,
        }
    }

    /// The record's sort key.
    pub fn key(&self) -> &KeyValue {
        match self {
            Rec::Elem(r) => &r.key,
            Rec::Text(r) => &r.key,
            Rec::RunPtr(r) => &r.key,
            Rec::KeyPatch(r) => &r.key,
        }
    }

    /// The record's input sequence number (patches have none and return 0).
    pub fn seq(&self) -> u64 {
        match self {
            Rec::Elem(r) => r.seq,
            Rec::Text(r) => r.seq,
            Rec::RunPtr(r) => r.seq,
            Rec::KeyPatch(_) => 0,
        }
    }

    /// Replace the record's key (applying a patch).
    pub fn set_key(&mut self, key: KeyValue) {
        match self {
            Rec::Elem(r) => r.key = key,
            Rec::Text(r) => r.key = key,
            Rec::RunPtr(r) => r.key = key,
            Rec::KeyPatch(r) => r.key = key,
        }
    }

    /// Sibling comparison: `(key, seq)` -- the paper's uniqueness tiebreak.
    pub fn sibling_cmp(&self, other: &Rec) -> Ordering {
        self.key().cmp(other.key()).then(self.seq().cmp(&other.seq()))
    }

    /// Append the encoded record (body + 4-byte trailing total length).
    pub fn encode(&self, out: &mut Vec<u8>) -> Result<()> {
        let start = out.len();
        match self {
            Rec::Elem(r) => {
                out.write_u8(KIND_ELEM)?;
                write_uvarint(out, u64::from(r.level))?;
                write_name(out, &r.name)?;
                write_uvarint(out, r.attrs.len() as u64)?;
                for (k, v) in &r.attrs {
                    write_name(out, k)?;
                    write_bytes(out, v)?;
                }
                write_key(out, &r.key)?;
                write_uvarint(out, r.seq)?;
            }
            Rec::Text(r) => {
                out.write_u8(KIND_TEXT)?;
                write_uvarint(out, u64::from(r.level))?;
                write_bytes(out, &r.content)?;
                write_key(out, &r.key)?;
                write_uvarint(out, r.seq)?;
            }
            Rec::RunPtr(r) => {
                out.write_u8(KIND_PTR)?;
                write_uvarint(out, u64::from(r.level))?;
                write_uvarint(out, u64::from(r.run))?;
                write_key(out, &r.key)?;
                write_uvarint(out, r.seq)?;
            }
            Rec::KeyPatch(r) => {
                out.write_u8(KIND_PATCH)?;
                write_uvarint(out, u64::from(r.level))?;
                write_key(out, &r.key)?;
            }
        }
        let total = (out.len() - start + 4) as u32;
        out.write_u32(total)?;
        Ok(())
    }

    /// Encoded size in bytes (encodes into a scratch buffer).
    pub fn encoded_len(&self) -> usize {
        let mut buf = Vec::new();
        self.encode(&mut buf).expect("Vec sink cannot fail");
        buf.len()
    }

    /// Decode one record from a forward byte source. Returns the record and
    /// the number of bytes consumed.
    pub fn decode(src: &mut impl ByteReader) -> Result<(Rec, u64)> {
        let kind = src.read_u8()?;
        let level = read_uvarint(src)? as u32;
        let mut consumed = 1 + crate::varint::uvarint_len(u64::from(level)) as u64;
        let before = src.remaining();
        let rec = match kind {
            KIND_ELEM => {
                let name = read_name(src)?;
                let nattrs = read_uvarint(src)? as usize;
                if nattrs as u64 > before {
                    return Err(XmlError::Record(format!("implausible attribute count {nattrs}")));
                }
                let mut attrs = Vec::with_capacity(nattrs);
                for _ in 0..nattrs {
                    let k = read_name(src)?;
                    let v = read_bytes(src)?;
                    attrs.push((k, v));
                }
                let key = read_key(src)?;
                let seq = read_uvarint(src)?;
                Rec::Elem(ElemRec { level, name, attrs, key, seq })
            }
            KIND_TEXT => {
                let content = read_bytes(src)?;
                let key = read_key(src)?;
                let seq = read_uvarint(src)?;
                Rec::Text(TextRec { level, content, key, seq })
            }
            KIND_PTR => {
                let run = read_uvarint(src)? as u32;
                let key = read_key(src)?;
                let seq = read_uvarint(src)?;
                Rec::RunPtr(PtrRec { level, run, key, seq })
            }
            KIND_PATCH => {
                let key = read_key(src)?;
                Rec::KeyPatch(PatchRec { level, key })
            }
            t => return Err(XmlError::Record(format!("bad record kind {t}"))),
        };
        consumed += before - src.remaining();
        let total = src.read_u32()?;
        consumed += 4;
        if u64::from(total) != consumed {
            return Err(XmlError::Record(format!(
                "record trailer says {total} bytes, decoded {consumed}"
            )));
        }
        Ok((rec, consumed))
    }

    /// Decode the record that *ends* at the cursor, moving the cursor back
    /// past it (backward stream decoding via the trailing length).
    pub fn decode_backward(cursor: &mut ExtentRevCursor) -> Result<Rec> {
        let total = cursor.read_back_u32()? as usize;
        if total < 5 || total as u64 - 4 > cursor.remaining() {
            return Err(XmlError::Record(format!("implausible backward record length {total}")));
        }
        let mut buf = vec![0u8; total - 4];
        cursor.read_back(&mut buf)?;
        let mut src = SliceReader::new(&buf);
        // Re-append the trailer so forward decode's verification passes.
        let kind = src.read_u8()?;
        let _ = kind;
        let mut full = buf.clone();
        full.write_u32(total as u32)?;
        let mut src = SliceReader::new(&full);
        let (rec, consumed) = Rec::decode(&mut src)?;
        debug_assert_eq!(consumed as usize, total);
        Ok(rec)
    }
}

/// Decodes a bounded stream of records from a byte source.
pub struct RecDecoder<R: ByteReader> {
    src: R,
    left: u64,
}

impl<R: ByteReader> RecDecoder<R> {
    /// Decode all remaining bytes of `src` as records.
    pub fn new(src: R) -> Self {
        let left = src.remaining();
        Self { src, left }
    }

    /// Decode exactly `nbytes` of records from `src`.
    pub fn with_limit(src: R, nbytes: u64) -> Self {
        Self { src, left: nbytes }
    }

    /// Bytes of encoded records left to decode.
    pub fn remaining_bytes(&self) -> u64 {
        self.left
    }

    /// The next record, or `None` when the byte budget is exhausted.
    pub fn next_rec(&mut self) -> Result<Option<Rec>> {
        if self.left == 0 {
            return Ok(None);
        }
        let (rec, consumed) = Rec::decode(&mut self.src)?;
        if consumed > self.left {
            return Err(XmlError::Record("record overruns its byte budget".into()));
        }
        self.left -= consumed;
        Ok(Some(rec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_recs() -> Vec<Rec> {
        vec![
            Rec::Elem(ElemRec {
                level: 1,
                name: NameRef::Sym(0),
                attrs: vec![(NameRef::Sym(1), b"NE".to_vec())],
                key: KeyValue::Bytes(b"NE".to_vec()),
                seq: 0,
            }),
            Rec::Text(TextRec {
                level: 2,
                content: b"Smith".to_vec(),
                key: KeyValue::Missing,
                seq: 1,
            }),
            Rec::RunPtr(PtrRec { level: 2, run: 7, key: KeyValue::Num(454), seq: 2 }),
            Rec::KeyPatch(PatchRec { level: 2, key: KeyValue::Bytes(b"Jones".to_vec()) }),
            Rec::Elem(ElemRec {
                level: 3,
                name: NameRef::Inline(b"verbatim-name".to_vec()),
                attrs: vec![
                    (NameRef::Inline(b"a".to_vec()), b"1".to_vec()),
                    (NameRef::Sym(2), vec![0u8, 255, 7]),
                ],
                key: KeyValue::Num(-12),
                seq: u64::MAX,
            }),
        ]
    }

    #[test]
    fn encode_decode_roundtrip_every_kind() {
        for rec in sample_recs() {
            let mut buf = Vec::new();
            rec.encode(&mut buf).unwrap();
            let mut src = SliceReader::new(&buf);
            let (back, consumed) = Rec::decode(&mut src).unwrap();
            assert_eq!(back, rec);
            assert_eq!(consumed as usize, buf.len());
            assert_eq!(src.remaining(), 0);
        }
    }

    #[test]
    fn decoder_streams_a_concatenated_sequence() {
        let recs = sample_recs();
        let mut buf = Vec::new();
        for r in &recs {
            r.encode(&mut buf).unwrap();
        }
        let mut dec = RecDecoder::new(SliceReader::new(&buf));
        let mut out = Vec::new();
        while let Some(r) = dec.next_rec().unwrap() {
            out.push(r);
        }
        assert_eq!(out, recs);
    }

    #[test]
    fn backward_decoding_walks_the_stream_in_reverse() {
        let recs = sample_recs();
        let mut buf = Vec::new();
        for r in &recs {
            r.encode(&mut buf).unwrap();
        }
        // Store on a tiny-block disk so backward reads cross blocks.
        let disk = nexsort_extmem::Disk::new_mem(16);
        let budget = nexsort_extmem::MemoryBudget::new(4);
        let mut w = nexsort_extmem::ExtentWriter::new(
            disk.clone(),
            &budget,
            nexsort_extmem::IoCat::SortScratch,
        )
        .unwrap();
        w.write_all(&buf).unwrap();
        let ext = w.finish().unwrap();
        let mut cur = nexsort_extmem::ExtentRevCursor::new(
            disk,
            &budget,
            &ext,
            nexsort_extmem::IoCat::SortScratch,
        )
        .unwrap();
        let mut out = Vec::new();
        while cur.remaining() > 0 {
            out.push(Rec::decode_backward(&mut cur).unwrap());
        }
        out.reverse();
        assert_eq!(out, recs);
    }

    #[test]
    fn corrupt_kind_and_trailer_are_rejected() {
        let mut buf = Vec::new();
        sample_recs()[0].encode(&mut buf).unwrap();
        let mut bad = buf.clone();
        bad[0] = 99; // bad kind
        assert!(Rec::decode(&mut SliceReader::new(&bad)).is_err());
        let n = buf.len();
        let mut bad = buf.clone();
        bad[n - 4] ^= 0xFF; // bad trailer
        assert!(Rec::decode(&mut SliceReader::new(&bad)).is_err());
    }

    #[test]
    fn sibling_cmp_orders_by_key_then_seq() {
        let a = Rec::Text(TextRec { level: 2, content: vec![], key: KeyValue::Num(1), seq: 5 });
        let b = Rec::Text(TextRec { level: 2, content: vec![], key: KeyValue::Num(1), seq: 9 });
        let c = Rec::Text(TextRec { level: 2, content: vec![], key: KeyValue::Num(2), seq: 0 });
        assert_eq!(a.sibling_cmp(&b), Ordering::Less);
        assert_eq!(b.sibling_cmp(&c), Ordering::Less);
        assert_eq!(a.sibling_cmp(&a.clone()), Ordering::Equal);
    }

    #[test]
    fn set_key_applies_a_patch() {
        let mut r = Rec::Elem(ElemRec {
            level: 1,
            name: NameRef::Sym(0),
            attrs: vec![],
            key: KeyValue::Missing,
            seq: 0,
        });
        r.set_key(KeyValue::Bytes(b"resolved".to_vec()));
        assert_eq!(r.key(), &KeyValue::Bytes(b"resolved".to_vec()));
    }

    #[test]
    fn decoder_respects_its_byte_limit() {
        let recs = sample_recs();
        let mut buf = Vec::new();
        recs[0].encode(&mut buf).unwrap();
        let first_len = buf.len() as u64;
        recs[1].encode(&mut buf).unwrap();
        let mut dec = RecDecoder::with_limit(SliceReader::new(&buf), first_len);
        assert_eq!(dec.next_rec().unwrap(), Some(recs[0].clone()));
        assert_eq!(dec.next_rec().unwrap(), None);
    }

    #[test]
    fn encoded_len_matches_actual_encoding() {
        for rec in sample_recs() {
            let mut buf = Vec::new();
            rec.encode(&mut buf).unwrap();
            assert_eq!(rec.encoded_len(), buf.len());
        }
    }

    #[test]
    fn truncated_record_is_rejected() {
        let mut buf = Vec::new();
        sample_recs()[4].encode(&mut buf).unwrap();
        for cut in [1, buf.len() / 2, buf.len() - 1] {
            assert!(Rec::decode(&mut SliceReader::new(&buf[..cut])).is_err());
        }
    }
}
