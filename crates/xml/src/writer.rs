//! XML serialization: events back to text, the inverse of the parser.

use nexsort_extmem::ByteSink;

use crate::error::Result;
use crate::event::Event;

/// Escape character data (`&`, `<`, `>`).
fn escape_text(content: &[u8], out: &mut Vec<u8>) {
    for &b in content {
        match b {
            b'&' => out.extend_from_slice(b"&amp;"),
            b'<' => out.extend_from_slice(b"&lt;"),
            b'>' => out.extend_from_slice(b"&gt;"),
            _ => out.push(b),
        }
    }
}

/// Escape an attribute value (`&`, `<`, `"`).
fn escape_attr(value: &[u8], out: &mut Vec<u8>) {
    for &b in value {
        match b {
            b'&' => out.extend_from_slice(b"&amp;"),
            b'<' => out.extend_from_slice(b"&lt;"),
            b'"' => out.extend_from_slice(b"&quot;"),
            _ => out.push(b),
        }
    }
}

/// Serializes events to XML text, optionally pretty-printed.
pub struct XmlWriter<S: ByteSink> {
    sink: S,
    pretty: bool,
    depth: usize,
    /// The last thing written was a start tag (pretty-printing state).
    after_start: bool,
    /// The element being closed contained only text (inline close).
    had_text: bool,
    scratch: Vec<u8>,
}

impl<S: ByteSink> XmlWriter<S> {
    /// Compact output (no added whitespace) -- byte-faithful round-trips.
    pub fn new(sink: S) -> Self {
        Self {
            sink,
            pretty: false,
            depth: 0,
            after_start: false,
            had_text: false,
            scratch: Vec::new(),
        }
    }

    /// Indented output for human inspection.
    ///
    /// Caveat (inherent to streaming pretty-printers): indentation inserts
    /// whitespace between tags, which is only round-trip-safe for documents
    /// without *mixed content* -- a text node with element siblings will
    /// absorb the inserted whitespace on re-parse. Use compact output when
    /// byte-faithful round-trips of mixed content matter.
    pub fn pretty(mut self, pretty: bool) -> Self {
        self.pretty = pretty;
        self
    }

    fn newline_indent(&mut self) -> Result<()> {
        self.sink.write_u8(b'\n')?;
        for _ in 0..self.depth {
            self.sink.write_all(b"  ")?;
        }
        Ok(())
    }

    /// Write one event.
    pub fn write(&mut self, ev: &Event) -> Result<()> {
        match ev {
            Event::Start { name, attrs } => {
                if self.pretty && self.depth > 0 {
                    self.newline_indent()?;
                }
                self.sink.write_u8(b'<')?;
                self.sink.write_all(name)?;
                for (k, v) in attrs {
                    self.sink.write_u8(b' ')?;
                    self.sink.write_all(k)?;
                    self.sink.write_all(b"=\"")?;
                    self.scratch.clear();
                    escape_attr(v, &mut self.scratch);
                    self.sink.write_all(&self.scratch)?;
                    self.sink.write_u8(b'"')?;
                }
                self.sink.write_u8(b'>')?;
                self.depth += 1;
                self.after_start = true;
                self.had_text = false;
            }
            Event::End { name } => {
                self.depth = self.depth.saturating_sub(1);
                if self.pretty && !self.after_start && !self.had_text {
                    self.newline_indent()?;
                }
                self.sink.write_all(b"</")?;
                self.sink.write_all(name)?;
                self.sink.write_u8(b'>')?;
                self.after_start = false;
                self.had_text = false;
            }
            Event::Text { content } => {
                self.scratch.clear();
                escape_text(content, &mut self.scratch);
                self.sink.write_all(&self.scratch)?;
                self.had_text = true;
            }
        }
        Ok(())
    }

    /// Finish, returning the sink.
    pub fn into_inner(self) -> S {
        self.sink
    }
}

/// Serialize a full event sequence to a byte vector (convenience).
pub fn events_to_xml(events: &[Event], pretty: bool) -> Vec<u8> {
    let mut w = XmlWriter::new(Vec::new()).pretty(pretty);
    for ev in events {
        w.write(ev).expect("Vec sink cannot fail");
    }
    w.into_inner()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_events;

    #[test]
    fn compact_output_roundtrips_through_the_parser() {
        let doc = b"<a k=\"v&amp;w\"><b>x &lt; y</b><c/></a>";
        let events = parse_events(doc).unwrap();
        let text = events_to_xml(&events, false);
        let reparsed = parse_events(&text).unwrap();
        assert_eq!(events, reparsed);
    }

    #[test]
    fn escaping_covers_special_characters() {
        let events = vec![
            Event::start("a", &[("k", "a\"b<c&d")]),
            Event::text("1<2 & 3>2"),
            Event::end("a"),
        ];
        let text = events_to_xml(&events, false);
        let s = String::from_utf8(text.clone()).unwrap();
        assert!(s.contains("&quot;") && s.contains("&lt;") && s.contains("&amp;"));
        assert_eq!(parse_events(&text).unwrap(), events);
    }

    #[test]
    fn pretty_output_is_indented_and_reparses_equal() {
        let events = parse_events(b"<a><b><c>leaf</c></b><d/></a>").unwrap();
        let text = events_to_xml(&events, true);
        let s = String::from_utf8(text.clone()).unwrap();
        assert!(s.contains("\n  <b>"));
        assert!(s.contains("\n    <c>leaf</c>"));
        assert_eq!(parse_events(&text).unwrap(), events);
    }

    #[test]
    fn text_heavy_content_stays_inline() {
        let events = vec![Event::start("p", &[]), Event::text("body"), Event::end("p")];
        let s = String::from_utf8(events_to_xml(&events, true)).unwrap();
        assert_eq!(s, "<p>body</p>");
    }
}
