//! LEB128 variable-length integers for the record codec.
//!
//! The compaction techniques of Section 3.2 shrink records aggressively;
//! varints keep levels, symbol ids, and sequence numbers at one or two bytes
//! in the common case.

use nexsort_extmem::{ByteReader, ByteSink, ExtError};

use crate::error::{Result, XmlError};

/// Append `v` as an unsigned LEB128 varint.
pub fn write_uvarint(sink: &mut impl ByteSink, mut v: u64) -> Result<()> {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            sink.write_u8(byte)?;
            return Ok(());
        }
        sink.write_u8(byte | 0x80)?;
    }
}

/// Read an unsigned LEB128 varint.
pub fn read_uvarint(src: &mut impl ByteReader) -> Result<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = src.read_u8()?;
        if shift == 63 && byte > 1 {
            return Err(XmlError::Ext(ExtError::Corrupt("varint overflows u64".into())));
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Append `v` zigzag-encoded (small magnitudes stay small either sign).
pub fn write_ivarint(sink: &mut impl ByteSink, v: i64) -> Result<()> {
    write_uvarint(sink, ((v << 1) ^ (v >> 63)) as u64)
}

/// Read a zigzag-encoded signed varint.
pub fn read_ivarint(src: &mut impl ByteReader) -> Result<i64> {
    let u = read_uvarint(src)?;
    Ok(((u >> 1) as i64) ^ -((u & 1) as i64))
}

/// Encoded size of `v` as an unsigned varint, in bytes.
pub fn uvarint_len(v: u64) -> usize {
    if v == 0 {
        1
    } else {
        (64 - v.leading_zeros() as usize).div_ceil(7)
    }
}

/// Append a length-prefixed byte string.
pub fn write_bytes(sink: &mut impl ByteSink, b: &[u8]) -> Result<()> {
    write_uvarint(sink, b.len() as u64)?;
    sink.write_all(b)?;
    Ok(())
}

/// Read a length-prefixed byte string.
pub fn read_bytes(src: &mut impl ByteReader) -> Result<Vec<u8>> {
    let len = read_uvarint(src)? as usize;
    if len as u64 > src.remaining() {
        return Err(XmlError::Ext(ExtError::Corrupt(format!(
            "byte-string length {len} exceeds remaining input"
        ))));
    }
    let mut buf = vec![0u8; len];
    src.read_exact(&mut buf)?;
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexsort_extmem::SliceReader;

    #[test]
    fn uvarint_roundtrip_edge_values() {
        for v in [0u64, 1, 127, 128, 300, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_uvarint(&mut buf, v).unwrap();
            assert_eq!(buf.len(), uvarint_len(v), "length mismatch for {v}");
            let mut r = SliceReader::new(&buf);
            assert_eq!(read_uvarint(&mut r).unwrap(), v);
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn ivarint_roundtrip_both_signs() {
        for v in [0i64, 1, -1, 63, -64, 1000, -1000, i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            write_ivarint(&mut buf, v).unwrap();
            let mut r = SliceReader::new(&buf);
            assert_eq!(read_ivarint(&mut r).unwrap(), v);
        }
    }

    #[test]
    fn small_values_take_one_byte() {
        for v in 0..128u64 {
            let mut buf = Vec::new();
            write_uvarint(&mut buf, v).unwrap();
            assert_eq!(buf.len(), 1);
        }
    }

    #[test]
    fn overlong_varint_is_rejected() {
        let buf = [0xFFu8; 11];
        let mut r = SliceReader::new(&buf);
        assert!(read_uvarint(&mut r).is_err());
    }

    #[test]
    fn byte_strings_roundtrip() {
        for s in [&b""[..], b"a", b"hello world", &[0u8; 500]] {
            let mut buf = Vec::new();
            write_bytes(&mut buf, s).unwrap();
            let mut r = SliceReader::new(&buf);
            assert_eq!(read_bytes(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn truncated_byte_string_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        write_uvarint(&mut buf, u64::MAX).unwrap(); // claims a huge length
        let mut r = SliceReader::new(&buf);
        assert!(read_bytes(&mut r).is_err());
    }
}
