//! A from-scratch streaming (SAX-style) XML parser.
//!
//! NEXSORT's sorting phase is a single event-driven scan of the input
//! (Figure 4 line 2, "can be implemented using a simple event-based XML
//! parser"). This parser pulls events from any [`ByteReader`] -- in
//! particular from a device-resident extent, so parsing the input charges
//! the `input-read` I/O category exactly once per block.
//!
//! Supported: elements, attributes (single- or double-quoted), self-closing
//! tags, character data with the five predefined entities plus numeric
//! character references, CDATA sections, comments, processing instructions,
//! the XML declaration, and a (skipped) DOCTYPE with internal subset.
//! Not supported (not needed for data-centric documents): external entities
//! and namespaces-aware processing (prefixes are kept verbatim in names).

use std::collections::VecDeque;

use nexsort_extmem::ByteReader;

use crate::error::{Result, XmlError};
use crate::event::{Event, EventSource};

/// Streaming pull parser over a byte source.
pub struct XmlParser<R: ByteReader> {
    src: R,
    peeked: Option<u8>,
    pos: u64,
    pending: VecDeque<Event>,
    open: Vec<Vec<u8>>,
    keep_whitespace: bool,
    done: bool,
    seen_root: bool,
}

impl<R: ByteReader> XmlParser<R> {
    /// Parse from `src`, dropping whitespace-only text (the default for
    /// data-centric documents; see [`XmlParser::keep_whitespace`]).
    pub fn new(src: R) -> Self {
        Self {
            src,
            peeked: None,
            pos: 0,
            pending: VecDeque::new(),
            open: Vec::new(),
            keep_whitespace: false,
            done: false,
            seen_root: false,
        }
    }

    /// Retain whitespace-only text nodes instead of dropping them.
    pub fn keep_whitespace(mut self, keep: bool) -> Self {
        self.keep_whitespace = keep;
        self
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        Err(XmlError::Parse { offset: self.pos, msg: msg.into() })
    }

    fn peek_byte(&mut self) -> Result<Option<u8>> {
        if self.peeked.is_none() {
            if self.src.remaining() == 0 {
                return Ok(None);
            }
            let b = self.src.read_u8()?;
            self.peeked = Some(b);
        }
        Ok(self.peeked)
    }

    fn next_byte(&mut self) -> Result<Option<u8>> {
        let b = self.peek_byte()?;
        if b.is_some() {
            self.peeked = None;
            self.pos += 1;
        }
        Ok(b)
    }

    fn expect_byte(&mut self) -> Result<u8> {
        match self.next_byte()? {
            Some(b) => Ok(b),
            None => self.err("unexpected end of input"),
        }
    }

    fn expect_literal(&mut self, lit: &[u8]) -> Result<()> {
        for &want in lit {
            let got = self.expect_byte()?;
            if got != want {
                return self.err(format!(
                    "expected {:?}, found byte {:?}",
                    String::from_utf8_lossy(lit),
                    got as char
                ));
            }
        }
        Ok(())
    }

    fn skip_ws(&mut self) -> Result<()> {
        while let Some(b) = self.peek_byte()? {
            if b.is_ascii_whitespace() {
                self.next_byte()?;
            } else {
                break;
            }
        }
        Ok(())
    }

    fn is_name_start(b: u8) -> bool {
        b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80
    }

    fn is_name_char(b: u8) -> bool {
        Self::is_name_start(b) || b.is_ascii_digit() || b == b'-' || b == b'.'
    }

    fn read_name(&mut self) -> Result<Vec<u8>> {
        let first = self.expect_byte()?;
        if !Self::is_name_start(first) {
            return self.err(format!("invalid name start character {:?}", first as char));
        }
        let mut name = vec![first];
        while let Some(b) = self.peek_byte()? {
            if Self::is_name_char(b) {
                name.push(b);
                self.next_byte()?;
            } else {
                break;
            }
        }
        Ok(name)
    }

    fn read_entity(&mut self, out: &mut Vec<u8>) -> Result<()> {
        // '&' already consumed.
        let mut ent = Vec::new();
        loop {
            match self.next_byte()? {
                Some(b';') => break,
                Some(b) if ent.len() < 12 => ent.push(b),
                Some(_) => return self.err("entity reference too long"),
                None => return self.err("unterminated entity reference"),
            }
        }
        match ent.as_slice() {
            b"lt" => out.push(b'<'),
            b"gt" => out.push(b'>'),
            b"amp" => out.push(b'&'),
            b"apos" => out.push(b'\''),
            b"quot" => out.push(b'"'),
            _ if ent.first() == Some(&b'#') => {
                let digits = &ent[1..];
                let cp = if digits.first() == Some(&b'x') || digits.first() == Some(&b'X') {
                    u32::from_str_radix(&String::from_utf8_lossy(&digits[1..]), 16).ok()
                } else {
                    String::from_utf8_lossy(digits).parse::<u32>().ok()
                };
                let Some(cp) = cp else {
                    return self.err("bad numeric character reference");
                };
                match char::from_u32(cp) {
                    Some(c) => {
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                    }
                    None => return self.err("numeric character reference out of range"),
                }
            }
            _ => return self.err(format!("unknown entity &{};", String::from_utf8_lossy(&ent))),
        }
        Ok(())
    }

    fn read_attr_value(&mut self) -> Result<Vec<u8>> {
        let quote = self.expect_byte()?;
        if quote != b'"' && quote != b'\'' {
            return self.err("attribute value must be quoted");
        }
        let mut val = Vec::new();
        loop {
            match self.expect_byte()? {
                b if b == quote => break,
                b'&' => self.read_entity(&mut val)?,
                b'<' => return self.err("'<' not allowed in attribute value"),
                b => val.push(b),
            }
        }
        Ok(val)
    }

    /// Skip a `<!-- ... -->` comment; the leading `<!` has been consumed and
    /// the next two bytes are known to be `--`.
    fn skip_comment(&mut self) -> Result<()> {
        self.expect_literal(b"--")?;
        let mut dashes = 0;
        loop {
            match self.expect_byte()? {
                b'-' => dashes += 1,
                b'>' if dashes >= 2 => return Ok(()),
                _ => dashes = 0,
            }
        }
    }

    /// Skip `<!DOCTYPE ...>` including a bracketed internal subset.
    fn skip_doctype(&mut self) -> Result<()> {
        let mut depth = 0i32; // '[' nesting
        loop {
            match self.expect_byte()? {
                b'[' => depth += 1,
                b']' => depth -= 1,
                b'>' if depth <= 0 => return Ok(()),
                _ => {}
            }
        }
    }

    /// Skip `<? ... ?>`.
    fn skip_pi(&mut self) -> Result<()> {
        let mut question = false;
        loop {
            match self.expect_byte()? {
                b'?' => question = true,
                b'>' if question => return Ok(()),
                _ => question = false,
            }
        }
    }

    /// Read `<![CDATA[ ... ]]>` content; the `<!` is consumed, `[` is next.
    fn read_cdata(&mut self, out: &mut Vec<u8>) -> Result<()> {
        self.expect_literal(b"[CDATA[")?;
        let mut brackets = 0;
        loop {
            match self.expect_byte()? {
                b']' => {
                    brackets += 1;
                    if brackets > 2 {
                        out.push(b']');
                        brackets = 2;
                    }
                }
                b'>' if brackets >= 2 => return Ok(()),
                b => {
                    for _ in 0..brackets {
                        out.push(b']');
                    }
                    brackets = 0;
                    out.push(b);
                }
            }
        }
    }

    /// Parse one markup construct starting at `<` (already consumed),
    /// enqueueing any resulting events.
    fn parse_markup(&mut self) -> Result<()> {
        match self.peek_byte()? {
            Some(b'/') => {
                self.next_byte()?;
                let name = self.read_name()?;
                self.skip_ws()?;
                if self.expect_byte()? != b'>' {
                    return self.err("malformed end tag");
                }
                match self.open.pop() {
                    Some(top) if top == name => {}
                    Some(top) => {
                        return self.err(format!(
                            "mismatched end tag </{}>, open element is <{}>",
                            String::from_utf8_lossy(&name),
                            String::from_utf8_lossy(&top)
                        ))
                    }
                    None => {
                        return self.err(format!(
                            "end tag </{}> with no open element",
                            String::from_utf8_lossy(&name)
                        ))
                    }
                }
                self.pending.push_back(Event::End { name });
                Ok(())
            }
            Some(b'!') => {
                self.next_byte()?;
                match self.peek_byte()? {
                    Some(b'-') => self.skip_comment(),
                    Some(b'[') => {
                        let mut content = Vec::new();
                        self.read_cdata(&mut content)?;
                        if self.open.is_empty() {
                            return self.err("CDATA outside the root element");
                        }
                        self.pending.push_back(Event::Text { content });
                        Ok(())
                    }
                    Some(b'D') => {
                        if self.seen_root {
                            return self.err("DOCTYPE after the root element");
                        }
                        self.skip_doctype()
                    }
                    _ => self.err("unrecognized '<!' construct"),
                }
            }
            Some(b'?') => {
                self.next_byte()?;
                self.skip_pi()
            }
            Some(_) => {
                let name = self.read_name()?;
                let mut attrs = Vec::new();
                loop {
                    self.skip_ws()?;
                    match self.peek_byte()? {
                        Some(b'>') => {
                            self.next_byte()?;
                            self.open.push(name.clone());
                            self.seen_root = true;
                            self.pending.push_back(Event::Start { name, attrs });
                            return Ok(());
                        }
                        Some(b'/') => {
                            self.next_byte()?;
                            if self.expect_byte()? != b'>' {
                                return self.err("expected '>' after '/'");
                            }
                            self.seen_root = true;
                            self.pending.push_back(Event::Start { name: name.clone(), attrs });
                            self.pending.push_back(Event::End { name });
                            return Ok(());
                        }
                        Some(b) if Self::is_name_start(b) => {
                            let key = self.read_name()?;
                            self.skip_ws()?;
                            if self.expect_byte()? != b'=' {
                                return self.err("expected '=' after attribute name");
                            }
                            self.skip_ws()?;
                            let val = self.read_attr_value()?;
                            if attrs.iter().any(|(k, _)| *k == key) {
                                return self.err(format!(
                                    "duplicate attribute {:?}",
                                    String::from_utf8_lossy(&key)
                                ));
                            }
                            attrs.push((key, val));
                        }
                        Some(b) => {
                            return self
                                .err(format!("unexpected character {:?} in start tag", b as char))
                        }
                        None => return self.err("unterminated start tag"),
                    }
                }
            }
            None => self.err("dangling '<' at end of input"),
        }
    }

    /// Accumulate character data up to the next `<` (or end of input).
    fn parse_text(&mut self) -> Result<()> {
        let mut content = Vec::new();
        loop {
            match self.peek_byte()? {
                Some(b'<') | None => break,
                Some(b'&') => {
                    self.next_byte()?;
                    self.read_entity(&mut content)?;
                }
                Some(b) => {
                    content.push(b);
                    self.next_byte()?;
                }
            }
        }
        let all_ws = content.iter().all(u8::is_ascii_whitespace);
        if self.open.is_empty() {
            // Outside the root only whitespace is allowed.
            if all_ws {
                return Ok(());
            }
            return self.err("character data outside the root element");
        }
        if all_ws && !self.keep_whitespace {
            return Ok(());
        }
        self.pending.push_back(Event::Text { content });
        Ok(())
    }

    fn advance(&mut self) -> Result<()> {
        match self.peek_byte()? {
            None => {
                if let Some(open) = self.open.last() {
                    return self.err(format!(
                        "input ended with <{}> still open",
                        String::from_utf8_lossy(open)
                    ));
                }
                if !self.seen_root {
                    return self.err("document has no root element");
                }
                self.done = true;
                Ok(())
            }
            Some(b'<') => {
                self.next_byte()?;
                self.parse_markup()
            }
            Some(_) => self.parse_text(),
        }
    }
}

impl<R: ByteReader> EventSource for XmlParser<R> {
    fn next_event(&mut self) -> Result<Option<Event>> {
        loop {
            if let Some(ev) = self.pending.pop_front() {
                return Ok(Some(ev));
            }
            if self.done {
                return Ok(None);
            }
            self.advance()?;
        }
    }
}

/// Parse a complete byte slice into an event vector (convenience).
pub fn parse_events(input: &[u8]) -> Result<Vec<Event>> {
    let mut p = XmlParser::new(nexsort_extmem::SliceReader::new(input));
    let mut out = Vec::new();
    while let Some(ev) = p.next_event()? {
        out.push(ev);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(input: &str) -> Vec<Event> {
        parse_events(input.as_bytes()).unwrap()
    }

    #[test]
    fn simple_document() {
        let events = ev("<a><b x=\"1\">hi</b></a>");
        assert_eq!(
            events,
            vec![
                Event::start("a", &[]),
                Event::start("b", &[("x", "1")]),
                Event::text("hi"),
                Event::end("b"),
                Event::end("a"),
            ]
        );
    }

    #[test]
    fn self_closing_tags_expand_to_start_end() {
        assert_eq!(
            ev("<a><b/><c x='2'/></a>"),
            vec![
                Event::start("a", &[]),
                Event::start("b", &[]),
                Event::end("b"),
                Event::start("c", &[("x", "2")]),
                Event::end("c"),
                Event::end("a"),
            ]
        );
    }

    #[test]
    fn prolog_doctype_comments_and_pis_are_skipped() {
        let doc = "<?xml version=\"1.0\"?>\n<!DOCTYPE a [<!ELEMENT a ANY>]>\n\
                   <!-- top --><a><!-- inner --><?pi data?><b/></a><!-- after -->";
        let events = ev(doc);
        assert_eq!(events.len(), 4);
        assert_eq!(events[0], Event::start("a", &[]));
    }

    #[test]
    fn entities_decode_in_text_and_attributes() {
        let events = ev("<a t=\"x &lt; y &#65;\">a&amp;b &gt; c &#x41;</a>");
        assert_eq!(events[0].attr(b"t"), Some(&b"x < y A"[..]));
        assert_eq!(events[1], Event::text("a&b > c A"));
    }

    #[test]
    fn cdata_passes_raw_content() {
        let events = ev("<a><![CDATA[x < & > ]] y]]></a>");
        assert_eq!(events[1], Event::text("x < & > ]] y"));
    }

    #[test]
    fn whitespace_only_text_dropped_unless_requested() {
        let events = ev("<a>\n  <b/>\n</a>");
        assert_eq!(events.len(), 4);
        let mut p = XmlParser::new(nexsort_extmem::SliceReader::new(b"<a>\n  <b/>\n</a>" as &[u8]))
            .keep_whitespace(true);
        let mut n = 0;
        while p.next_event().unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 6);
    }

    #[test]
    fn single_quoted_attributes_and_whitespace_in_tags() {
        let events = ev("<a  k1 = 'v1'\n k2=\"v2\" ></a>");
        assert_eq!(events[0], Event::start("a", &[("k1", "v1"), ("k2", "v2")]));
    }

    #[test]
    fn mismatched_tags_are_rejected_with_position() {
        match parse_events(b"<a><b></a></b>") {
            Err(XmlError::Parse { offset, msg }) => {
                assert!(offset > 0);
                assert!(msg.contains("mismatched"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_documents_are_rejected() {
        assert!(parse_events(b"<a><b>").is_err());
        assert!(parse_events(b"<a").is_err());
        assert!(parse_events(b"<a x=>").is_err());
        assert!(parse_events(b"").is_err());
    }

    #[test]
    fn stray_content_outside_root_is_rejected() {
        assert!(parse_events(b"hello<a/>").is_err());
        assert!(parse_events(b"</a>").is_err());
    }

    #[test]
    fn duplicate_attributes_are_rejected() {
        assert!(parse_events(b"<a x=\"1\" x=\"2\"/>").is_err());
    }

    #[test]
    fn unknown_entities_are_rejected() {
        assert!(parse_events(b"<a>&unknown;</a>").is_err());
        assert!(parse_events(b"<a>&#xGG;</a>").is_err());
        assert!(parse_events(b"<a>&#1114112;</a>").is_err()); // beyond char::MAX
    }

    #[test]
    fn names_allow_xml_identifier_characters() {
        let events = ev("<ns:el-em.2 _a=\"1\"/>");
        assert_eq!(events[0], Event::start("ns:el-em.2", &[("_a", "1")]));
    }

    #[test]
    fn deeply_nested_document_parses_iteratively() {
        let depth = 5000;
        let mut doc = String::new();
        for i in 0..depth {
            doc.push_str(&format!("<n{i}>"));
        }
        for i in (0..depth).rev() {
            doc.push_str(&format!("</n{i}>"));
        }
        let events = ev(&doc);
        assert_eq!(events.len(), 2 * depth);
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;

    #[test]
    fn doctype_with_nested_internal_subset() {
        let doc = b"<!DOCTYPE a [ <!ENTITY x \"y\"> [nested] ]><a/>";
        let events = parse_events(doc).unwrap();
        assert_eq!(events.len(), 2);
    }

    #[test]
    fn processing_instructions_everywhere() {
        let doc = b"<?xml version=\"1.0\"?><?style q?><a><?inner x?></a><?post y?>";
        let events = parse_events(doc).unwrap();
        assert_eq!(events.len(), 2);
    }

    #[test]
    fn comments_with_tricky_dashes() {
        let doc = b"<a><!-- - -- almost-end --- --><b/></a>";
        let events = parse_events(doc).unwrap();
        assert_eq!(events.len(), 4);
    }

    #[test]
    fn attribute_values_spanning_lines_and_quotes() {
        let doc = b"<a k=\"line1\nline2\" q='has \"double\" quotes'/>";
        let events = parse_events(doc).unwrap();
        assert_eq!(events[0].attr(b"k"), Some(&b"line1\nline2"[..]));
        assert_eq!(events[0].attr(b"q"), Some(&b"has \"double\" quotes"[..]));
    }

    #[test]
    fn utf8_multibyte_content_and_names_pass_through() {
        let doc = "<r\u{e9}sum\u{e9} lang=\"fran\u{e7}ais\">caf\u{e9} \u{2603}</r\u{e9}sum\u{e9}>";
        let events = parse_events(doc.as_bytes()).unwrap();
        assert_eq!(events.len(), 3);
        match &events[1] {
            Event::Text { content } => {
                assert_eq!(String::from_utf8_lossy(content), "caf\u{e9} \u{2603}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn comment_inside_text_splits_text_nodes() {
        let events = parse_events(b"<a>before<!-- x -->after</a>").unwrap();
        assert_eq!(
            events,
            vec![
                Event::start("a", &[]),
                Event::text("before"),
                Event::text("after"),
                Event::end("a"),
            ]
        );
    }

    #[test]
    fn unterminated_constructs_error_cleanly() {
        for doc in [
            &b"<a><!-- never closed"[..],
            b"<a><![CDATA[ never closed",
            b"<!DOCTYPE a [ <a/>",
            b"<a k=\"unclosed value/>",
            b"<a>&unterminated",
        ] {
            assert!(parse_events(doc).is_err(), "{:?}", String::from_utf8_lossy(doc));
        }
    }
}
