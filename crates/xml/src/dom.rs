//! A small in-memory DOM.
//!
//! The paper's first straw-man ("internal-memory recursive sort", Section 1)
//! reads the whole document into a DOM-like representation; this module is
//! that representation. It also powers the test oracles: structural equality,
//! sibling-permutation equivalence, and document statistics (N, k, height)
//! used to evaluate the analytical bounds.

use crate::error::{Result, XmlError};
use crate::event::Event;
use crate::key::{KeyValue, SortSpec};

/// A child of an element: a sub-element or a text node.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum XNode {
    /// An element subtree.
    Elem(Element),
    /// A text node.
    Text(Vec<u8>),
}

/// An element with attributes and ordered children.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Element {
    /// Element name bytes.
    pub name: Vec<u8>,
    /// Attributes in document order.
    pub attrs: Vec<(Vec<u8>, Vec<u8>)>,
    /// Children in document order.
    pub children: Vec<XNode>,
}

impl Element {
    /// A childless element.
    pub fn new(name: &str) -> Self {
        Element { name: name.as_bytes().to_vec(), attrs: Vec::new(), children: Vec::new() }
    }

    /// Builder: add an attribute.
    pub fn with_attr(mut self, key: &str, value: &str) -> Self {
        self.attrs.push((key.as_bytes().to_vec(), value.as_bytes().to_vec()));
        self
    }

    /// Builder: add an element child.
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(XNode::Elem(child));
        self
    }

    /// Builder: add a text child.
    pub fn with_text(mut self, text: &str) -> Self {
        self.children.push(XNode::Text(text.as_bytes().to_vec()));
        self
    }

    /// Attribute lookup.
    pub fn attr(&self, key: &[u8]) -> Option<&[u8]> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_slice())
    }

    /// Total node count (elements + text nodes), the paper's `N`.
    pub fn num_nodes(&self) -> u64 {
        1 + self
            .children
            .iter()
            .map(|c| match c {
                XNode::Elem(e) => e.num_nodes(),
                XNode::Text(_) => 1,
            })
            .sum::<u64>()
    }

    /// Maximum fan-out over the whole tree, the paper's `k`.
    pub fn max_fanout(&self) -> usize {
        let mut k = self.children.len();
        for c in &self.children {
            if let XNode::Elem(e) = c {
                k = k.max(e.max_fanout());
            }
        }
        k
    }

    /// Height of the tree (a lone root has height 1, Table 2 convention).
    pub fn height(&self) -> u32 {
        1 + self
            .children
            .iter()
            .map(|c| match c {
                XNode::Elem(e) => e.height(),
                XNode::Text(_) => 1,
            })
            .max()
            .unwrap_or(0)
    }

    /// The element's sort key under `spec` (DOM-side evaluation, including
    /// deferred text/child-path sources and composite rules).
    pub fn key_under(&self, spec: &SortSpec) -> KeyValue {
        self.key_by_rule(spec.rule_for(&self.name))
    }

    fn key_by_rule(&self, rule: &crate::key::KeyRule) -> KeyValue {
        use crate::key::KeySource;
        let raw = match &rule.source {
            KeySource::DocOrder => KeyValue::Missing,
            KeySource::TagName => KeyValue::from_bytes(&self.name, rule.ty),
            KeySource::Attribute(a) => {
                self.attr(a).map_or(KeyValue::Missing, |v| KeyValue::from_bytes(v, rule.ty))
            }
            KeySource::Composite(rules) => {
                KeyValue::Tuple(rules.iter().map(|r| self.key_by_rule(r)).collect())
            }
            KeySource::Text => self
                .children
                .iter()
                .find_map(|c| match c {
                    XNode::Text(t) => Some(KeyValue::from_bytes(t, rule.ty)),
                    XNode::Elem(_) => None,
                })
                .unwrap_or(KeyValue::Missing),
            KeySource::ChildPath(path) => {
                let mut cur = self;
                let mut found = true;
                for comp in path {
                    match cur.children.iter().find_map(|c| match c {
                        XNode::Elem(e) if e.name == *comp => Some(e),
                        _ => None,
                    }) {
                        Some(next) => cur = next,
                        None => {
                            found = false;
                            break;
                        }
                    }
                }
                if found {
                    cur.children
                        .iter()
                        .find_map(|c| match c {
                            XNode::Text(t) => Some(KeyValue::from_bytes(t, rule.ty)),
                            XNode::Elem(_) => None,
                        })
                        .unwrap_or(KeyValue::Missing)
                } else {
                    KeyValue::Missing
                }
            }
        };
        rule.oriented(raw)
    }

    /// Emit the subtree as events in document order.
    pub fn to_events(&self, out: &mut Vec<Event>) {
        out.push(Event::Start { name: self.name.clone(), attrs: self.attrs.clone() });
        for c in &self.children {
            match c {
                XNode::Elem(e) => e.to_events(out),
                XNode::Text(t) => out.push(Event::Text { content: t.clone() }),
            }
        }
        out.push(Event::End { name: self.name.clone() });
    }

    /// Serialize to XML text.
    pub fn to_xml(&self, pretty: bool) -> Vec<u8> {
        let mut events = Vec::new();
        self.to_events(&mut events);
        crate::writer::events_to_xml(&events, pretty)
    }

    /// Recursively sort every element's children into a canonical order
    /// (by full subtree content), so two trees that are equal up to sibling
    /// permutations become structurally identical.
    pub fn canonicalize(&mut self) {
        for c in &mut self.children {
            if let XNode::Elem(e) = c {
                e.canonicalize();
            }
        }
        self.children.sort();
    }

    /// True if `self` and `other` are the same tree up to reordering of
    /// siblings -- i.e. `other` is a *legal* sort outcome of `self` (every
    /// parent-child relationship is preserved; Section 4.1's legality).
    pub fn permutation_equivalent(&self, other: &Element) -> bool {
        let mut a = self.clone();
        let mut b = other.clone();
        a.canonicalize();
        b.canonicalize();
        a == b
    }
}

/// Build a DOM from an event stream (must contain exactly one root).
pub fn events_to_dom(events: &[Event]) -> Result<Element> {
    let mut stack: Vec<Element> = Vec::new();
    let mut root: Option<Element> = None;
    for ev in events {
        match ev {
            Event::Start { name, attrs } => {
                stack.push(Element {
                    name: name.clone(),
                    attrs: attrs.clone(),
                    children: Vec::new(),
                });
            }
            Event::Text { content } => match stack.last_mut() {
                Some(top) => top.children.push(XNode::Text(content.clone())),
                None => return Err(XmlError::Record("text outside the root element".into())),
            },
            Event::End { name } => {
                let done = stack
                    .pop()
                    .ok_or_else(|| XmlError::Record("end tag with no open element".into()))?;
                if done.name != *name {
                    return Err(XmlError::Record("mismatched end tag".into()));
                }
                match stack.last_mut() {
                    Some(parent) => parent.children.push(XNode::Elem(done)),
                    None => {
                        if root.is_some() {
                            return Err(XmlError::Record("multiple root elements".into()));
                        }
                        root = Some(done);
                    }
                }
            }
        }
    }
    if !stack.is_empty() {
        return Err(XmlError::Record("event stream ended with open elements".into()));
    }
    root.ok_or_else(|| XmlError::Record("empty event stream".into()))
}

/// Parse XML text straight into a DOM (convenience).
pub fn parse_dom(input: &[u8]) -> Result<Element> {
    events_to_dom(&crate::parser::parse_events(input)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::KeyRule;

    fn sample() -> Element {
        parse_dom(
            b"<company><region name=\"NE\"/><region name=\"AC\">\
              <branch name=\"Durham\"><employee ID=\"454\"/></branch></region></company>",
        )
        .unwrap()
    }

    #[test]
    fn dom_construction_and_stats() {
        let d = sample();
        assert_eq!(d.name, b"company");
        assert_eq!(d.num_nodes(), 5);
        assert_eq!(d.max_fanout(), 2);
        assert_eq!(d.height(), 4);
    }

    #[test]
    fn events_roundtrip_through_dom() {
        let d = sample();
        let mut events = Vec::new();
        d.to_events(&mut events);
        let back = events_to_dom(&events).unwrap();
        assert_eq!(d, back);
        let reparsed = parse_dom(&d.to_xml(false)).unwrap();
        assert_eq!(d, reparsed);
    }

    #[test]
    fn key_evaluation_on_the_dom() {
        let spec = SortSpec::by_attribute("name")
            .with_rule("employee", KeyRule::attr_numeric("ID"))
            .with_rule("person", KeyRule::child_path(&["info", "last"]))
            .with_rule("note", KeyRule::text());
        let d = sample();
        assert_eq!(d.key_under(&spec), KeyValue::Missing); // company has no name attr
        let person = parse_dom(b"<person><info><last>Yang</last></info></person>").unwrap();
        assert_eq!(person.key_under(&spec), KeyValue::Bytes(b"Yang".to_vec()));
        let note = parse_dom(b"<note>remember</note>").unwrap();
        assert_eq!(note.key_under(&spec), KeyValue::Bytes(b"remember".to_vec()));
        let empty_person = parse_dom(b"<person><info/></person>").unwrap();
        assert_eq!(empty_person.key_under(&spec), KeyValue::Missing);
    }

    #[test]
    fn permutation_equivalence_accepts_sibling_reorder_only() {
        let a = parse_dom(b"<r><x i=\"1\"/><x i=\"2\"><y/></x></r>").unwrap();
        let b = parse_dom(b"<r><x i=\"2\"><y/></x><x i=\"1\"/></r>").unwrap();
        assert!(a.permutation_equivalent(&b));
        // Moving y out of its parent is NOT legal.
        let c = parse_dom(b"<r><x i=\"1\"><y/></x><x i=\"2\"/></r>").unwrap();
        assert!(!a.permutation_equivalent(&c));
        // Changing content is not equivalent either.
        let d = parse_dom(b"<r><x i=\"1\"/><x i=\"3\"><y/></x></r>").unwrap();
        assert!(!a.permutation_equivalent(&d));
    }

    #[test]
    fn permutation_equivalence_handles_duplicate_subtrees() {
        let a = parse_dom(b"<r><x/><x/><y/></r>").unwrap();
        let b = parse_dom(b"<r><y/><x/><x/></r>").unwrap();
        assert!(a.permutation_equivalent(&b));
        let c = parse_dom(b"<r><y/><x/><x/><x/></r>").unwrap();
        assert!(!a.permutation_equivalent(&c));
    }

    #[test]
    fn malformed_event_streams_are_rejected() {
        assert!(events_to_dom(&[Event::start("a", &[])]).is_err());
        assert!(events_to_dom(&[Event::end("a")]).is_err());
        assert!(events_to_dom(&[Event::text("x")]).is_err());
        assert!(events_to_dom(&[]).is_err());
        let two_roots =
            [Event::start("a", &[]), Event::end("a"), Event::start("b", &[]), Event::end("b")];
        assert!(events_to_dom(&two_roots).is_err());
    }

    #[test]
    fn builder_api_constructs_documents() {
        let d = Element::new("company")
            .with_child(Element::new("region").with_attr("name", "NE").with_text("hq"));
        assert_eq!(d.num_nodes(), 3);
        assert_eq!(d.to_xml(false), b"<company><region name=\"NE\">hq</region></company>".to_vec());
    }
}
