//! Sort keys and ordering criteria.
//!
//! A *fully sorted* XML document orders the children of every non-leaf
//! element by a given criterion (Section 1). This module defines what a
//! criterion is ([`SortSpec`]), the key values it produces ([`KeyValue`]),
//! and how ties are broken: the paper assumes "the sort key value of an
//! element is unique among its siblings (if not, we can make it unique by
//! appending it with the element's location in the input)" -- every record
//! carries its input sequence number, and all comparisons are on the pair
//! `(key, seq)`.

use std::cmp::Ordering;
use std::fmt;

/// A sort key value, with a total order:
/// `Missing < Num(_) < Bytes(_) < Desc(_) < Tuple(_)`.
///
/// Numeric keys compare by value (`ID=9` before `ID=10`), byte keys compare
/// lexicographically. `Missing` sorts first so elements without the keyed
/// attribute cluster ahead, in document order. `Desc` inverts its inner
/// key's order (descending criteria); `Tuple` compares componentwise
/// (composite criteria, e.g. order by `@last` then `@first`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum KeyValue {
    /// No key (criterion is document order, or the source was absent).
    Missing,
    /// Numeric key, compared by value.
    Num(i64),
    /// Byte-string key, compared lexicographically.
    Bytes(Vec<u8>),
    /// A key whose order is inverted (descending rules).
    Desc(Box<KeyValue>),
    /// A composite key, compared lexicographically componentwise.
    Tuple(Vec<KeyValue>),
}

impl KeyValue {
    /// Build a key from raw bytes under the given [`KeyType`]. Numeric keys
    /// fall back to byte comparison when the value does not parse.
    pub fn from_bytes(raw: &[u8], ty: KeyType) -> KeyValue {
        match ty {
            KeyType::Bytes => KeyValue::Bytes(raw.to_vec()),
            KeyType::Numeric => {
                match std::str::from_utf8(raw).ok().and_then(|s| s.trim().parse().ok()) {
                    Some(n) => KeyValue::Num(n),
                    None => KeyValue::Bytes(raw.to_vec()),
                }
            }
        }
    }

    fn rank(&self) -> u8 {
        match self {
            KeyValue::Missing => 0,
            KeyValue::Num(_) => 1,
            KeyValue::Bytes(_) => 2,
            KeyValue::Desc(_) => 3,
            KeyValue::Tuple(_) => 4,
        }
    }

    /// Render for key-path displays (Table 1).
    pub fn display_lossy(&self) -> String {
        match self {
            KeyValue::Missing => "·".to_string(),
            KeyValue::Num(n) => n.to_string(),
            KeyValue::Bytes(b) => String::from_utf8_lossy(b).into_owned(),
            KeyValue::Desc(inner) => format!("~{}", inner.display_lossy()),
            KeyValue::Tuple(parts) => {
                let inner: Vec<String> = parts.iter().map(Self::display_lossy).collect();
                format!("({})", inner.join(","))
            }
        }
    }

    /// Append the encoded key (shared by the record and key-path codecs).
    pub fn encode(&self, out: &mut Vec<u8>) -> crate::error::Result<()> {
        use nexsort_extmem::ByteSink;
        match self {
            KeyValue::Missing => out.write_u8(0)?,
            KeyValue::Num(n) => {
                out.write_u8(1)?;
                crate::varint::write_ivarint(out, *n)?;
            }
            KeyValue::Bytes(b) => {
                out.write_u8(2)?;
                crate::varint::write_bytes(out, b)?;
            }
            KeyValue::Desc(inner) => {
                out.write_u8(3)?;
                inner.encode(out)?;
            }
            KeyValue::Tuple(parts) => {
                out.write_u8(4)?;
                crate::varint::write_uvarint(out, parts.len() as u64)?;
                for p in parts {
                    p.encode(out)?;
                }
            }
        }
        Ok(())
    }

    /// Decode a key (inverse of [`KeyValue::encode`]).
    pub fn decode(src: &mut impl nexsort_extmem::ByteReader) -> crate::error::Result<KeyValue> {
        use crate::error::XmlError;
        Ok(match src.read_u8()? {
            0 => KeyValue::Missing,
            1 => KeyValue::Num(crate::varint::read_ivarint(src)?),
            2 => KeyValue::Bytes(crate::varint::read_bytes(src)?),
            3 => KeyValue::Desc(Box::new(KeyValue::decode(src)?)),
            4 => {
                let n = crate::varint::read_uvarint(src)? as usize;
                if n > 64 {
                    return Err(XmlError::Record(format!("implausible tuple arity {n}")));
                }
                let mut parts = Vec::with_capacity(n);
                for _ in 0..n {
                    parts.push(KeyValue::decode(src)?);
                }
                KeyValue::Tuple(parts)
            }
            t => return Err(XmlError::Record(format!("bad key tag {t}"))),
        })
    }
}

impl Ord for KeyValue {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (KeyValue::Num(a), KeyValue::Num(b)) => a.cmp(b),
            (KeyValue::Bytes(a), KeyValue::Bytes(b)) => a.cmp(b),
            (KeyValue::Desc(a), KeyValue::Desc(b)) => b.cmp(a),
            (KeyValue::Tuple(a), KeyValue::Tuple(b)) => {
                for (x, y) in a.iter().zip(b) {
                    match x.cmp(y) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                a.len().cmp(&b.len())
            }
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl PartialOrd for KeyValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for KeyValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display_lossy())
    }
}

/// Where an element's key comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeySource {
    /// No key: siblings keep document order (via the sequence tiebreak).
    DocOrder,
    /// The element's tag name.
    TagName,
    /// The value of the named attribute (e.g. `order employee by @ID`).
    Attribute(Vec<u8>),
    /// The element's first immediate text child (resolved at its end tag).
    Text,
    /// A *complex ordering criterion* (Section 3.2): the first text reached
    /// by following the given child-element path, e.g.
    /// `personalInfo/name/lastName`. Evaluated in a single pass over the
    /// subtree with constant space, resolved at the element's end tag.
    ChildPath(Vec<Vec<u8>>),
    /// A composite criterion: primary, secondary, ... sub-rules producing a
    /// [`KeyValue::Tuple`] (e.g. order by `@last`, then `@first`). Sub-rules
    /// must be start-known (no text/child-path sources); see
    /// [`SortSpec::validate`].
    Composite(Vec<KeyRule>),
}

impl KeySource {
    /// Whether the key can only be known once the element's end tag is seen.
    pub fn is_deferred(&self) -> bool {
        match self {
            KeySource::Text | KeySource::ChildPath(_) => true,
            KeySource::Composite(rules) => rules.iter().any(|r| r.source.is_deferred()),
            _ => false,
        }
    }
}

/// How raw key bytes compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyType {
    /// Lexicographic byte comparison.
    Bytes,
    /// Numeric comparison when the bytes parse as an integer.
    Numeric,
}

/// One ordering rule: a source, a comparison type, and a direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyRule {
    /// Where the key value comes from.
    pub source: KeySource,
    /// How key values compare.
    pub ty: KeyType,
    /// Invert the order (descending).
    pub descending: bool,
}

impl KeyRule {
    /// Apply the rule's direction to an extracted key value. `Missing` stays
    /// unwrapped so keyless elements keep their document-order cluster.
    pub fn oriented(&self, key: KeyValue) -> KeyValue {
        if self.descending && key != KeyValue::Missing {
            KeyValue::Desc(Box::new(key))
        } else {
            key
        }
    }

    /// Builder: flip this rule to descending order.
    pub fn desc(mut self) -> Self {
        self.descending = true;
        self
    }

    /// Rule: composite (primary, secondary, ...) of start-known sub-rules.
    pub fn composite(rules: Vec<KeyRule>) -> Self {
        KeyRule { source: KeySource::Composite(rules), ty: KeyType::Bytes, descending: false }
    }

    /// Rule: order by attribute value, byte comparison.
    pub fn attr(name: &str) -> Self {
        KeyRule {
            source: KeySource::Attribute(name.as_bytes().to_vec()),
            ty: KeyType::Bytes,
            descending: false,
        }
    }

    /// Rule: order by attribute value, numeric comparison.
    pub fn attr_numeric(name: &str) -> Self {
        KeyRule {
            source: KeySource::Attribute(name.as_bytes().to_vec()),
            ty: KeyType::Numeric,
            descending: false,
        }
    }

    /// Rule: order by tag name.
    pub fn tag_name() -> Self {
        KeyRule { source: KeySource::TagName, ty: KeyType::Bytes, descending: false }
    }

    /// Rule: order by first immediate text child.
    pub fn text() -> Self {
        KeyRule { source: KeySource::Text, ty: KeyType::Bytes, descending: false }
    }

    /// Rule: keep document order.
    pub fn doc_order() -> Self {
        KeyRule { source: KeySource::DocOrder, ty: KeyType::Bytes, descending: false }
    }

    /// Rule: order by the text reached via a child-element path.
    pub fn child_path(path: &[&str]) -> Self {
        KeyRule {
            source: KeySource::ChildPath(path.iter().map(|s| s.as_bytes().to_vec()).collect()),
            ty: KeyType::Bytes,
            descending: false,
        }
    }
}

/// How text nodes are keyed relative to their element siblings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TextKey {
    /// Text nodes keep document order among siblings (default).
    #[default]
    DocOrder,
    /// Text nodes are keyed by their content.
    Content,
}

/// The full ordering criterion for a document: a default rule, per-tag
/// overrides (Figure 1: region by name, branch by name, employee by ID), and
/// the treatment of text nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortSpec {
    /// Rule applied to elements without a per-tag override.
    pub default: KeyRule,
    /// Per-tag overrides, looked up by element name.
    pub per_tag: Vec<(Vec<u8>, KeyRule)>,
    /// Keying of text nodes.
    pub text_key: TextKey,
}

impl SortSpec {
    /// A spec with the given default rule and no overrides.
    pub fn uniform(default: KeyRule) -> Self {
        SortSpec { default, per_tag: Vec::new(), text_key: TextKey::DocOrder }
    }

    /// The Figure 1 style spec: every element ordered by the same attribute.
    pub fn by_attribute(name: &str) -> Self {
        Self::uniform(KeyRule::attr(name))
    }

    /// Add a per-tag override.
    pub fn with_rule(mut self, tag: &str, rule: KeyRule) -> Self {
        self.per_tag.push((tag.as_bytes().to_vec(), rule));
        self
    }

    /// Set the text-node keying.
    pub fn with_text_key(mut self, tk: TextKey) -> Self {
        self.text_key = tk;
        self
    }

    /// The rule in force for elements named `tag`.
    pub fn rule_for(&self, tag: &[u8]) -> &KeyRule {
        self.per_tag.iter().find(|(t, _)| t == tag).map_or(&self.default, |(_, r)| r)
    }

    /// True if any rule defers key resolution to the end tag (text or
    /// child-path sources), which requires the key-patch machinery.
    pub fn has_deferred_keys(&self) -> bool {
        self.default.source.is_deferred()
            || self.per_tag.iter().any(|(_, r)| r.source.is_deferred())
    }

    /// Extract the *immediately available* key for an element from its start
    /// tag. Returns `None` for deferred sources (resolved later by a patch).
    pub fn start_key(&self, tag: &[u8], attrs: &[(Vec<u8>, Vec<u8>)]) -> Option<KeyValue> {
        let rule = self.rule_for(tag);
        Self::start_key_for(rule, tag, attrs)
    }

    fn start_key_for(rule: &KeyRule, tag: &[u8], attrs: &[(Vec<u8>, Vec<u8>)]) -> Option<KeyValue> {
        let raw = match &rule.source {
            KeySource::DocOrder => KeyValue::Missing,
            KeySource::TagName => KeyValue::from_bytes(tag, rule.ty),
            KeySource::Attribute(name) => attrs
                .iter()
                .find(|(k, _)| k == name)
                .map_or(KeyValue::Missing, |(_, v)| KeyValue::from_bytes(v, rule.ty)),
            KeySource::Composite(rules) => {
                let mut parts = Vec::with_capacity(rules.len());
                for r in rules {
                    parts.push(Self::start_key_for(r, tag, attrs)?);
                }
                KeyValue::Tuple(parts)
            }
            KeySource::Text | KeySource::ChildPath(_) => return None,
        };
        Some(rule.oriented(raw))
    }

    /// Check structural restrictions: composite rules may not contain
    /// deferred (text/child-path) or nested composite sub-rules -- those
    /// would need multiple key patches per element, which the single-pass
    /// evaluation of Section 3.2 does not cover.
    pub fn validate(&self) -> crate::error::Result<()> {
        use crate::error::XmlError;
        let check = |rule: &KeyRule| -> crate::error::Result<()> {
            if let KeySource::Composite(subs) = &rule.source {
                for sub in subs {
                    match &sub.source {
                        KeySource::Composite(_) => {
                            return Err(XmlError::Record(
                                "nested composite key rules are not supported".into(),
                            ))
                        }
                        s if s.is_deferred() => {
                            return Err(XmlError::Record(
                                "composite key rules require start-known sources                                  (attribute or tag name)"
                                    .into(),
                            ))
                        }
                        _ => {}
                    }
                }
            }
            Ok(())
        };
        check(&self.default)?;
        for (_, rule) in &self.per_tag {
            check(rule)?;
        }
        Ok(())
    }

    /// Key for a text node with the given content.
    pub fn text_node_key(&self, content: &[u8]) -> KeyValue {
        match self.text_key {
            TextKey::DocOrder => KeyValue::Missing,
            TextKey::Content => KeyValue::Bytes(content.to_vec()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_value_total_order() {
        let missing = KeyValue::Missing;
        let n1 = KeyValue::Num(5);
        let n2 = KeyValue::Num(40);
        let b1 = KeyValue::Bytes(b"Atlanta".to_vec());
        let b2 = KeyValue::Bytes(b"Durham".to_vec());
        let mut v = vec![b2.clone(), n2.clone(), missing.clone(), b1.clone(), n1.clone()];
        v.sort();
        assert_eq!(v, vec![missing, n1, n2, b1, b2]);
    }

    #[test]
    fn numeric_keys_compare_by_value_not_lexicographically() {
        let nine = KeyValue::from_bytes(b"9", KeyType::Numeric);
        let ten = KeyValue::from_bytes(b"10", KeyType::Numeric);
        assert!(nine < ten);
        // Byte comparison would say the opposite.
        let nine_b = KeyValue::from_bytes(b"9", KeyType::Bytes);
        let ten_b = KeyValue::from_bytes(b"10", KeyType::Bytes);
        assert!(nine_b > ten_b);
    }

    #[test]
    fn numeric_parse_failure_falls_back_to_bytes() {
        assert_eq!(
            KeyValue::from_bytes(b"abc", KeyType::Numeric),
            KeyValue::Bytes(b"abc".to_vec())
        );
        assert_eq!(KeyValue::from_bytes(b" 42 ", KeyType::Numeric), KeyValue::Num(42));
    }

    #[test]
    fn per_tag_rules_override_the_default() {
        let spec = SortSpec::by_attribute("name")
            .with_rule("employee", KeyRule::attr_numeric("ID"))
            .with_rule("note", KeyRule::doc_order());
        assert_eq!(spec.rule_for(b"region"), &KeyRule::attr("name"));
        assert_eq!(spec.rule_for(b"employee"), &KeyRule::attr_numeric("ID"));
        assert_eq!(spec.rule_for(b"note"), &KeyRule::doc_order());
    }

    #[test]
    fn start_key_extraction() {
        let spec =
            SortSpec::by_attribute("name").with_rule("employee", KeyRule::attr_numeric("ID"));
        let attrs = vec![(b"name".to_vec(), b"NE".to_vec())];
        assert_eq!(spec.start_key(b"region", &attrs), Some(KeyValue::Bytes(b"NE".to_vec())));
        assert_eq!(spec.start_key(b"region", &[]), Some(KeyValue::Missing));
        let id = vec![(b"ID".to_vec(), b"454".to_vec())];
        assert_eq!(spec.start_key(b"employee", &id), Some(KeyValue::Num(454)));
    }

    #[test]
    fn deferred_sources_are_detected() {
        assert!(!SortSpec::by_attribute("name").has_deferred_keys());
        assert!(SortSpec::uniform(KeyRule::text()).has_deferred_keys());
        let spec = SortSpec::by_attribute("name")
            .with_rule("employee", KeyRule::child_path(&["personalInfo", "name", "lastName"]));
        assert!(spec.has_deferred_keys());
        assert_eq!(spec.start_key(b"employee", &[]), None);
    }

    #[test]
    fn text_node_keying_modes() {
        let doc_order = SortSpec::by_attribute("x");
        assert_eq!(doc_order.text_node_key(b"hello"), KeyValue::Missing);
        let by_content = SortSpec::by_attribute("x").with_text_key(TextKey::Content);
        assert_eq!(by_content.text_node_key(b"hello"), KeyValue::Bytes(b"hello".to_vec()));
    }

    #[test]
    fn tag_name_source_keys_by_name() {
        let spec = SortSpec::uniform(KeyRule::tag_name());
        assert_eq!(spec.start_key(b"beta", &[]), Some(KeyValue::Bytes(b"beta".to_vec())));
    }
}

#[cfg(test)]
mod direction_tests {
    use super::*;
    use nexsort_extmem::SliceReader;

    #[test]
    fn desc_inverts_order_and_tuple_is_lexicographic() {
        let d = |n: i64| KeyValue::Desc(Box::new(KeyValue::Num(n)));
        assert!(d(10) < d(9), "descending numbers");
        let t = |a: i64, b: &str| {
            KeyValue::Tuple(vec![KeyValue::Num(a), KeyValue::Bytes(b.as_bytes().to_vec())])
        };
        assert!(t(1, "z") < t(2, "a"), "first component dominates");
        assert!(t(1, "a") < t(1, "b"), "second breaks ties");
        let short = KeyValue::Tuple(vec![KeyValue::Num(1)]);
        assert!(short < t(1, "a"), "prefix tuple sorts first");
    }

    #[test]
    fn nested_desc_in_tuple_orders_componentwise() {
        // Order by @last ascending, @age descending.
        let key = |last: &str, age: i64| {
            KeyValue::Tuple(vec![
                KeyValue::Bytes(last.as_bytes().to_vec()),
                KeyValue::Desc(Box::new(KeyValue::Num(age))),
            ])
        };
        assert!(key("smith", 50) < key("smith", 30));
        assert!(key("adams", 1) < key("smith", 99));
    }

    #[test]
    fn new_variants_roundtrip_through_the_codec() {
        let keys = vec![
            KeyValue::Desc(Box::new(KeyValue::Bytes(b"zeta".to_vec()))),
            KeyValue::Tuple(vec![
                KeyValue::Num(-3),
                KeyValue::Missing,
                KeyValue::Desc(Box::new(KeyValue::Num(7))),
            ]),
            KeyValue::Tuple(vec![]),
        ];
        for k in keys {
            let mut buf = Vec::new();
            k.encode(&mut buf).unwrap();
            let back = KeyValue::decode(&mut SliceReader::new(&buf)).unwrap();
            assert_eq!(back, k);
        }
    }

    #[test]
    fn oriented_wraps_except_missing() {
        let rule = KeyRule::attr("k").desc();
        assert_eq!(rule.oriented(KeyValue::Num(5)), KeyValue::Desc(Box::new(KeyValue::Num(5))));
        assert_eq!(rule.oriented(KeyValue::Missing), KeyValue::Missing);
        let asc = KeyRule::attr("k");
        assert_eq!(asc.oriented(KeyValue::Num(5)), KeyValue::Num(5));
    }

    #[test]
    fn composite_start_key_builds_tuples() {
        let spec = SortSpec::uniform(KeyRule::composite(vec![
            KeyRule::attr("last"),
            KeyRule::attr_numeric("age").desc(),
        ]));
        spec.validate().unwrap();
        let attrs = vec![(b"last".to_vec(), b"smith".to_vec()), (b"age".to_vec(), b"41".to_vec())];
        let key = spec.start_key(b"person", &attrs).unwrap();
        assert_eq!(
            key,
            KeyValue::Tuple(vec![
                KeyValue::Bytes(b"smith".to_vec()),
                KeyValue::Desc(Box::new(KeyValue::Num(41))),
            ])
        );
    }

    #[test]
    fn validate_rejects_deferred_and_nested_composites() {
        let bad = SortSpec::uniform(KeyRule::composite(vec![KeyRule::text()]));
        assert!(bad.validate().is_err());
        let nested = SortSpec::uniform(KeyRule::composite(vec![KeyRule::composite(vec![])]));
        assert!(nested.validate().is_err());
        let fine =
            SortSpec::uniform(KeyRule::composite(vec![KeyRule::tag_name(), KeyRule::attr("x")]));
        assert!(fine.validate().is_ok());
    }

    #[test]
    fn descending_composite_displays_readably() {
        let k = KeyValue::Tuple(vec![
            KeyValue::Bytes(b"a".to_vec()),
            KeyValue::Desc(Box::new(KeyValue::Num(2))),
        ]);
        assert_eq!(k.display_lossy(), "(a,~2)");
    }
}
