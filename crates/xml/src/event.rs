//! SAX-style XML events: the unit the sorting phase scans (Figure 4 line 3,
//! "a start tag, an end tag, or a piece of text").

use std::fmt;

/// One unit of XML data in document order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// `<name a="v" ...>`
    Start {
        /// Element name bytes.
        name: Vec<u8>,
        /// Attributes in document order.
        attrs: Vec<(Vec<u8>, Vec<u8>)>,
    },
    /// `</name>`
    End {
        /// Element name bytes (matches the corresponding `Start`).
        name: Vec<u8>,
    },
    /// Character data between tags (entity-decoded).
    Text {
        /// The decoded text content.
        content: Vec<u8>,
    },
}

impl Event {
    /// Convenience constructor for a start tag.
    pub fn start(name: &str, attrs: &[(&str, &str)]) -> Self {
        Event::Start {
            name: name.as_bytes().to_vec(),
            attrs: attrs
                .iter()
                .map(|(k, v)| (k.as_bytes().to_vec(), v.as_bytes().to_vec()))
                .collect(),
        }
    }

    /// Convenience constructor for an end tag.
    pub fn end(name: &str) -> Self {
        Event::End { name: name.as_bytes().to_vec() }
    }

    /// Convenience constructor for text content.
    pub fn text(content: &str) -> Self {
        Event::Text { content: content.as_bytes().to_vec() }
    }

    /// Attribute value lookup on a start tag; `None` otherwise.
    pub fn attr(&self, key: &[u8]) -> Option<&[u8]> {
        match self {
            Event::Start { attrs, .. } => {
                attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_slice())
            }
            _ => None,
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Start { name, attrs } => {
                write!(f, "<{}", String::from_utf8_lossy(name))?;
                for (k, v) in attrs {
                    write!(
                        f,
                        " {}=\"{}\"",
                        String::from_utf8_lossy(k),
                        String::from_utf8_lossy(v)
                    )?;
                }
                write!(f, ">")
            }
            Event::End { name } => write!(f, "</{}>", String::from_utf8_lossy(name)),
            Event::Text { content } => write!(f, "{}", String::from_utf8_lossy(content)),
        }
    }
}

/// Anything that yields XML events in document order.
///
/// Implemented by the streaming parser, generators, and record decoders, so
/// the sorters accept input from any of them.
pub trait EventSource {
    /// The next event, or `None` at end of document.
    fn next_event(&mut self) -> crate::error::Result<Option<Event>>;
}

/// An [`EventSource`] over a pre-built vector of events.
pub struct VecEvents {
    events: std::vec::IntoIter<Event>,
}

impl VecEvents {
    /// Stream the given events.
    pub fn new(events: Vec<Event>) -> Self {
        Self { events: events.into_iter() }
    }
}

impl EventSource for VecEvents {
    fn next_event(&mut self) -> crate::error::Result<Option<Event>> {
        Ok(self.events.next())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_attr_lookup() {
        let e = Event::start("employee", &[("ID", "454"), ("dept", "x")]);
        assert_eq!(e.attr(b"ID"), Some(&b"454"[..]));
        assert_eq!(e.attr(b"missing"), None);
        assert_eq!(Event::end("employee").attr(b"ID"), None);
        assert_eq!(Event::text("hi").attr(b"ID"), None);
    }

    #[test]
    fn display_renders_tags() {
        assert_eq!(Event::start("a", &[("k", "v")]).to_string(), "<a k=\"v\">");
        assert_eq!(Event::end("a").to_string(), "</a>");
        assert_eq!(Event::text("body").to_string(), "body");
    }

    #[test]
    fn vec_source_streams_in_order() {
        let mut s = VecEvents::new(vec![Event::start("a", &[]), Event::end("a")]);
        assert_eq!(s.next_event().unwrap(), Some(Event::start("a", &[])));
        assert_eq!(s.next_event().unwrap(), Some(Event::end("a")));
        assert_eq!(s.next_event().unwrap(), None);
    }
}
