//! Parsing ordering criteria from their string form.
//!
//! The string grammar is shared by every front end -- the CLI's `--key` /
//! `--default` flags, the server's JSON job submissions, and job manifests
//! replayed after a daemon restart -- so it lives with the data model, not
//! with any one front end.
//!
//! Grammar for one rule:
//!
//! ```text
//! RULE   := PART ( '+' PART )*                 -- '+' builds a composite
//! PART   := SOURCE ( ':' FLAG )*
//! SOURCE := '@' NAME        attribute value
//!         | 'tag'           element tag name
//!         | 'text'          first immediate text child
//!         | 'path=' P/A/TH  text at the child-element path
//!         | 'doc'           document order
//! FLAG   := 'num'           numeric comparison
//!         | 'desc'          descending order
//! ```
//!
//! Examples: `@ID:num`, `@last+@first`, `path=info/name/last:desc`, `tag`.
//!
//! A `TAG=RULE` key argument adds a per-tag override; a default rule
//! replaces the document-order default. Errors are plain strings meant to
//! be surfaced verbatim to the user who wrote the spec.

use crate::key::{KeyRule, KeySource, KeyType, SortSpec};

/// Parse one `PART` (no `+`).
fn parse_part(part: &str) -> Result<KeyRule, String> {
    let mut pieces = part.split(':');
    let source = pieces.next().unwrap_or("");
    let mut rule = if let Some(attr) = source.strip_prefix('@') {
        if attr.is_empty() {
            return Err("empty attribute name after '@'".into());
        }
        KeyRule::attr(attr)
    } else if let Some(path) = source.strip_prefix("path=") {
        let comps: Vec<&str> = path.split('/').filter(|c| !c.is_empty()).collect();
        if comps.is_empty() {
            return Err("empty child path after 'path='".into());
        }
        KeyRule::child_path(&comps)
    } else {
        match source {
            "tag" => KeyRule::tag_name(),
            "text" => KeyRule::text(),
            "doc" => KeyRule::doc_order(),
            other => {
                return Err(format!(
                    "unknown key source {other:?} (expected @attr, tag, text, path=..., doc)"
                ))
            }
        }
    };
    for flag in pieces {
        match flag {
            "num" => rule.ty = KeyType::Numeric,
            "desc" => rule.descending = true,
            other => return Err(format!("unknown key flag {other:?} (expected num, desc)")),
        }
    }
    Ok(rule)
}

/// Parse a full `RULE` (possibly composite).
pub fn parse_rule(rule: &str) -> Result<KeyRule, String> {
    let parts: Vec<&str> = rule.split('+').collect();
    if parts.len() == 1 {
        parse_part(parts[0])
    } else {
        let rules = parts.iter().map(|p| parse_part(p)).collect::<Result<Vec<_>, _>>()?;
        if rules.iter().any(|r| matches!(r.source, KeySource::Text | KeySource::ChildPath(_))) {
            return Err("composite rules ('+') only support @attr and tag parts".into());
        }
        Ok(KeyRule::composite(rules))
    }
}

/// Parse a per-tag key argument: `TAG=RULE`.
pub fn parse_key_arg(arg: &str) -> Result<(String, KeyRule), String> {
    let (tag, rule) =
        arg.split_once('=').ok_or_else(|| format!("--key expects TAG=RULE, got {arg:?}"))?;
    if tag.is_empty() {
        return Err("--key has an empty tag name".into());
    }
    Ok((tag.to_string(), parse_rule(rule)?))
}

/// Assemble a [`SortSpec`] from an optional default rule plus `TAG=RULE`
/// overrides, validating the result.
pub fn build_spec(default: Option<&str>, keys: &[String]) -> Result<SortSpec, String> {
    let default_rule = match default {
        Some(r) => parse_rule(r)?,
        None => KeyRule::doc_order(),
    };
    let mut spec = SortSpec::uniform(default_rule);
    for arg in keys {
        let (tag, rule) = parse_key_arg(arg)?;
        spec = spec.with_rule(&tag, rule);
    }
    spec.validate().map_err(|e| e.to_string())?;
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::KeyValue;

    #[test]
    fn basic_sources_parse() {
        assert_eq!(parse_rule("@ID").unwrap(), KeyRule::attr("ID"));
        assert_eq!(parse_rule("tag").unwrap(), KeyRule::tag_name());
        assert_eq!(parse_rule("text").unwrap(), KeyRule::text());
        assert_eq!(parse_rule("doc").unwrap(), KeyRule::doc_order());
        assert_eq!(
            parse_rule("path=info/name/last").unwrap(),
            KeyRule::child_path(&["info", "name", "last"])
        );
    }

    #[test]
    fn flags_apply() {
        assert_eq!(parse_rule("@ID:num").unwrap(), KeyRule::attr_numeric("ID"));
        assert_eq!(parse_rule("@ID:desc").unwrap(), KeyRule::attr("ID").desc());
        assert_eq!(parse_rule("@ID:num:desc").unwrap(), KeyRule::attr_numeric("ID").desc());
    }

    #[test]
    fn composite_rules_parse_and_reject_deferred_parts() {
        let r = parse_rule("@last+@first:desc").unwrap();
        match &r.source {
            KeySource::Composite(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(parts[1].descending);
            }
            other => panic!("expected composite, got {other:?}"),
        }
        assert!(parse_rule("@a+text").is_err());
        assert!(parse_rule("@a+path=x").is_err());
    }

    #[test]
    fn key_args_and_spec_assembly() {
        let spec =
            build_spec(Some("@name"), &["employee=@ID:num".to_string(), "note=doc".to_string()])
                .unwrap();
        assert_eq!(spec.rule_for(b"employee"), &KeyRule::attr_numeric("ID"));
        assert_eq!(spec.rule_for(b"note"), &KeyRule::doc_order());
        assert_eq!(spec.rule_for(b"region"), &KeyRule::attr("name"));
        // The composite actually orders as declared.
        let spec = build_spec(Some("@a+@b"), &[]).unwrap();
        let k = spec
            .start_key(b"x", &[(b"a".to_vec(), b"1".to_vec()), (b"b".to_vec(), b"2".to_vec())])
            .unwrap();
        assert_eq!(
            k,
            KeyValue::Tuple(vec![KeyValue::Bytes(b"1".to_vec()), KeyValue::Bytes(b"2".to_vec())])
        );
    }

    #[test]
    fn malformed_arguments_give_readable_errors() {
        assert!(parse_rule("@").is_err());
        assert!(parse_rule("path=").is_err());
        assert!(parse_rule("bogus").is_err());
        assert!(parse_rule("@a:sideways").is_err());
        assert!(parse_key_arg("noequals").is_err());
        assert!(parse_key_arg("=@a").is_err());
    }
}
