//! The `.xrec` container: a sorted (or any) record stream plus its tag
//! dictionary in one self-describing byte stream.
//!
//! Re-parsing XML text is the most CPU-expensive step of any pipeline built
//! on these crates; a document that has already been scanned, keyed, and
//! sorted can be persisted as records and fed straight back into a merge,
//! batch update, or later sort. Layout:
//!
//! ```text
//! magic  "XREC1"                      5 bytes
//! flags  uvarint                      (bit 0: records carry final keys)
//! dict   uvarint count, then count x (uvarint len, bytes)
//! body   uvarint record-byte-length, then encoded records back to back
//! ```

use nexsort_extmem::{ByteReader, ByteSink};

use crate::error::{Result, XmlError};
use crate::rec::{Rec, RecDecoder};
use crate::sym::TagDict;
use crate::varint::{read_bytes, read_uvarint, write_bytes, write_uvarint};

const MAGIC: &[u8; 5] = b"XREC1";

/// Flag bit: every record's key is final (no pending patches).
pub const FLAG_KEYS_FINAL: u64 = 1;

/// Serialize a dictionary and record sequence as an `.xrec` stream.
pub fn write_xrec(out: &mut Vec<u8>, dict: &TagDict, recs: &[Rec], flags: u64) -> Result<()> {
    out.write_all(MAGIC)?;
    write_uvarint(out, flags)?;
    write_uvarint(out, dict.len() as u64)?;
    for id in 0..dict.len() as u32 {
        write_bytes(out, dict.resolve(id)?)?;
    }
    let mut body = Vec::new();
    for r in recs {
        r.encode(&mut body)?;
    }
    write_uvarint(out, body.len() as u64)?;
    out.write_all(&body)?;
    Ok(())
}

/// Quick sniff: does this byte stream start with the `.xrec` magic?
pub fn is_xrec(bytes: &[u8]) -> bool {
    bytes.len() >= MAGIC.len() && &bytes[..MAGIC.len()] == MAGIC
}

/// Deserialize an `.xrec` stream.
pub fn read_xrec(src: &mut impl ByteReader) -> Result<(TagDict, Vec<Rec>, u64)> {
    let mut magic = [0u8; 5];
    src.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(XmlError::Record("not an XREC1 stream (bad magic)".into()));
    }
    let flags = read_uvarint(src)?;
    let count = read_uvarint(src)? as usize;
    if count as u64 > src.remaining() {
        return Err(XmlError::Record(format!("implausible dictionary size {count}")));
    }
    let mut dict = TagDict::new();
    for i in 0..count {
        let name = read_bytes(src)?;
        let id = dict.intern(&name);
        if id as usize != i {
            return Err(XmlError::Record(format!(
                "duplicate dictionary entry {:?}",
                String::from_utf8_lossy(&name)
            )));
        }
    }
    let body_len = read_uvarint(src)?;
    if body_len > src.remaining() {
        return Err(XmlError::Record(format!(
            "truncated XREC body: header says {body_len}, {} available",
            src.remaining()
        )));
    }
    let mut dec = RecDecoder::with_limit(src, body_len);
    let mut recs = Vec::new();
    while let Some(r) = dec.next_rec()? {
        recs.push(r);
    }
    Ok((dict, recs, flags))
}

/// Wrapper over `RecDecoder` that streams records from an already-validated
/// `.xrec` body without materializing them (large pipelines).
pub struct XrecReader<R: ByteReader> {
    dict: TagDict,
    flags: u64,
    dec: RecDecoder<R>,
}

impl<R: ByteReader> XrecReader<R> {
    /// Parse the header of an `.xrec` stream; records stream afterwards.
    pub fn open(mut src: R) -> Result<Self> {
        let mut magic = [0u8; 5];
        src.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(XmlError::Record("not an XREC1 stream (bad magic)".into()));
        }
        let flags = read_uvarint(&mut src)?;
        let count = read_uvarint(&mut src)? as usize;
        if count as u64 > src.remaining() {
            return Err(XmlError::Record(format!("implausible dictionary size {count}")));
        }
        let mut dict = TagDict::new();
        for _ in 0..count {
            let name = read_bytes(&mut src)?;
            dict.intern(&name);
        }
        let body_len = read_uvarint(&mut src)?;
        if body_len > src.remaining() {
            return Err(XmlError::Record("truncated XREC body".into()));
        }
        Ok(Self { dict, flags, dec: RecDecoder::with_limit(src, body_len) })
    }

    /// The embedded dictionary.
    pub fn dict(&self) -> &TagDict {
        &self.dict
    }

    /// The header flags.
    pub fn flags(&self) -> u64 {
        self.flags
    }

    /// The next record, or `None` at end of body.
    pub fn next_rec(&mut self) -> Result<Option<Rec>> {
        self.dec.next_rec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::SortSpec;
    use crate::parser::parse_events;
    use crate::recstream::{events_to_recs, recs_to_events};
    use nexsort_extmem::SliceReader;

    fn sample() -> (TagDict, Vec<Rec>) {
        let doc = b"<r><a k=\"2\">hi</a><a k=\"1\"/></r>";
        let events = parse_events(doc).unwrap();
        let spec = SortSpec::by_attribute("k");
        let mut dict = TagDict::new();
        let recs = events_to_recs(&events, &spec, &mut dict, true).unwrap();
        (dict, recs)
    }

    #[test]
    fn roundtrip_preserves_dictionary_and_records() {
        let (dict, recs) = sample();
        let mut buf = Vec::new();
        write_xrec(&mut buf, &dict, &recs, FLAG_KEYS_FINAL).unwrap();
        assert!(is_xrec(&buf));
        let (dict2, recs2, flags) = read_xrec(&mut SliceReader::new(&buf)).unwrap();
        assert_eq!(flags, FLAG_KEYS_FINAL);
        assert_eq!(recs2, recs);
        assert_eq!(dict2.len(), dict.len());
        // The round-tripped pair regenerates the same events.
        assert_eq!(recs_to_events(&recs2, &dict2).unwrap(), recs_to_events(&recs, &dict).unwrap());
    }

    #[test]
    fn streaming_reader_matches_bulk_reader() {
        let (dict, recs) = sample();
        let mut buf = Vec::new();
        write_xrec(&mut buf, &dict, &recs, 0).unwrap();
        let mut r = XrecReader::open(SliceReader::new(&buf)).unwrap();
        assert_eq!(r.flags(), 0);
        assert_eq!(r.dict().len(), dict.len());
        let mut streamed = Vec::new();
        while let Some(rec) = r.next_rec().unwrap() {
            streamed.push(rec);
        }
        assert_eq!(streamed, recs);
    }

    #[test]
    fn corrupt_streams_are_rejected() {
        let (dict, recs) = sample();
        let mut buf = Vec::new();
        write_xrec(&mut buf, &dict, &recs, 0).unwrap();
        // Bad magic.
        let mut bad = buf.clone();
        bad[0] = b'Y';
        assert!(read_xrec(&mut SliceReader::new(&bad)).is_err());
        assert!(!is_xrec(&bad));
        // Truncations at every prefix must error, never panic.
        for cut in [3, 6, 10, buf.len() / 2, buf.len() - 1] {
            assert!(read_xrec(&mut SliceReader::new(&buf[..cut])).is_err(), "cut {cut}");
        }
        // Oversized body length.
        let mut huge = Vec::new();
        huge.extend_from_slice(MAGIC);
        write_uvarint(&mut huge, 0).unwrap();
        write_uvarint(&mut huge, 0).unwrap();
        write_uvarint(&mut huge, u64::MAX).unwrap();
        assert!(read_xrec(&mut SliceReader::new(&huge)).is_err());
    }

    #[test]
    fn empty_document_roundtrips() {
        let dict = TagDict::new();
        let mut buf = Vec::new();
        write_xrec(&mut buf, &dict, &[], 0).unwrap();
        let (d2, r2, _) = read_xrec(&mut SliceReader::new(&buf)).unwrap();
        assert!(d2.is_empty() && r2.is_empty());
    }
}
