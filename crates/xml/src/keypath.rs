//! Key paths: the flat representation the merge-sort baseline sorts by.
//!
//! "The key path of an element is the concatenation of the sort key values of
//! all elements along the path from the root" (Section 1, Table 1). Sorting
//! all records lexicographically by key path yields the DFS preorder of the
//! fully sorted tree, because a parent's path is a proper prefix of its
//! children's and siblings compare by their own `(key, seq)` component.
//!
//! This module provides the path type, the streaming path builder (tracking
//! level transitions over a record stream), the `(path, record)` codec used
//! by external runs, and the Table 1 rendering.

use std::cmp::Ordering;

use nexsort_extmem::ByteReader;

use crate::error::{Result, XmlError};
use crate::key::KeyValue;
use crate::rec::Rec;
use crate::varint::{read_uvarint, write_uvarint};

/// One component of a key path: an element's `(key, seq)` pair. The sequence
/// number is the paper's "appending the element's location in the input" to
/// make keys unique among siblings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathComp {
    /// The element's sort key.
    pub key: KeyValue,
    /// The element's input sequence number (uniqueness tiebreak).
    pub seq: u64,
}

impl PathComp {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key.cmp(&other.key).then(self.seq.cmp(&other.seq))
    }
}

/// A key path: components from the root down to (and including) the record.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct KeyPath {
    /// Components, root first.
    pub comps: Vec<PathComp>,
}

impl KeyPath {
    /// Number of components (equals the record's level).
    pub fn len(&self) -> usize {
        self.comps.len()
    }

    /// True if the path has no components.
    pub fn is_empty(&self) -> bool {
        self.comps.is_empty()
    }

    /// Lexicographic comparison; a proper prefix sorts first, so parents
    /// precede their descendants.
    pub fn cmp_path(&self, other: &Self) -> Ordering {
        for (a, b) in self.comps.iter().zip(&other.comps) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        self.comps.len().cmp(&other.comps.len())
    }

    /// Render like Table 1: `/AC/Durham/454`.
    pub fn display(&self) -> String {
        if self.comps.is_empty() {
            return "/".to_string();
        }
        // The root's own key is conventionally omitted in Table 1 ("/" for
        // the document element), so skip the first component.
        let mut s = String::new();
        if self.comps.len() == 1 {
            return "/".to_string();
        }
        for c in &self.comps[1..] {
            s.push('/');
            s.push_str(&c.key.display_lossy());
        }
        s
    }

    fn encode(&self, out: &mut Vec<u8>) -> Result<()> {
        write_uvarint(out, self.comps.len() as u64)?;
        for c in &self.comps {
            c.key.encode(out)?;
            write_uvarint(out, c.seq)?;
        }
        Ok(())
    }

    fn decode(src: &mut impl ByteReader) -> Result<KeyPath> {
        let n = read_uvarint(src)? as usize;
        if n as u64 > src.remaining() {
            return Err(XmlError::Record(format!("implausible key-path length {n}")));
        }
        let mut comps = Vec::with_capacity(n);
        for _ in 0..n {
            let key = KeyValue::decode(src)?;
            let seq = read_uvarint(src)?;
            comps.push(PathComp { key, seq });
        }
        Ok(KeyPath { comps })
    }
}

/// A record annotated with its key path -- the unit the key-path external
/// merge sort works on. Note the space blow-up the paper warns about: tall
/// trees repeat long ancestor prefixes in every record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathedRec {
    /// Key path from the root down to this record.
    pub path: KeyPath,
    /// The record itself.
    pub rec: Rec,
}

impl PathedRec {
    /// Sort order of the key-path representation.
    pub fn cmp_order(&self, other: &Self) -> Ordering {
        self.path.cmp_path(&other.path)
    }

    /// Append the encoded `(path, rec)` pair.
    pub fn encode(&self, out: &mut Vec<u8>) -> Result<()> {
        self.path.encode(out)?;
        self.rec.encode(out)?;
        Ok(())
    }

    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        let mut buf = Vec::new();
        self.encode(&mut buf).expect("Vec sink cannot fail");
        buf.len()
    }

    /// Decode one `(path, rec)` pair, returning it and the bytes consumed.
    pub fn decode(src: &mut impl ByteReader) -> Result<(PathedRec, u64)> {
        let before = src.remaining();
        let path = KeyPath::decode(src)?;
        let (rec, _) = Rec::decode(src)?;
        let consumed = before - src.remaining();
        Ok((PathedRec { path, rec }, consumed))
    }
}

/// Streaming key-path builder over a record stream in document order.
///
/// Records must arrive with final keys (deferred keys already resolved); the
/// builder maintains the current root-to-here path via level transitions.
#[derive(Debug, Default)]
pub struct PathBuilder {
    path: Vec<PathComp>,
}

impl PathBuilder {
    /// A builder with an empty current path.
    pub fn new() -> Self {
        Self::default()
    }

    /// Annotate the next record of the stream with its key path.
    pub fn attach(&mut self, rec: Rec) -> Result<PathedRec> {
        let level = rec.level() as usize;
        if level == 0 {
            return Err(XmlError::Record("record at level 0".into()));
        }
        if level > self.path.len() + 1 {
            return Err(XmlError::Record(format!(
                "level jump from {} to {}",
                self.path.len(),
                level
            )));
        }
        self.path.truncate(level - 1);
        self.path.push(PathComp { key: rec.key().clone(), seq: rec.seq() });
        Ok(PathedRec { path: KeyPath { comps: self.path.clone() }, rec })
    }
}

/// Annotate a whole record stream with key paths (convenience wrapper).
pub fn attach_paths(recs: Vec<Rec>) -> Result<Vec<PathedRec>> {
    let mut b = PathBuilder::new();
    recs.into_iter().map(|r| b.attach(r)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::SortSpec;
    use crate::parser::parse_events;
    use crate::rec::RecDecoder;
    use crate::recstream::events_to_recs;
    use crate::sym::TagDict;
    use nexsort_extmem::SliceReader;

    fn d1_recs() -> Vec<Rec> {
        // The document of Figure 1 / Table 1 (D1, first region subtree).
        let doc = "<company><region name=\"NE\"/><region name=\"AC\">\
                   <branch name=\"Durham\"><employee ID=\"454\"/>\
                   <employee ID=\"323\"><name>Smith</name><phone>5552345</phone></employee>\
                   </branch><branch name=\"Atlanta\"/></region></company>";
        let spec = SortSpec::by_attribute("name")
            .with_rule("employee", crate::key::KeyRule::attr("ID"))
            .with_rule("name", crate::key::KeyRule::tag_name())
            .with_rule("phone", crate::key::KeyRule::tag_name())
            .with_text_key(crate::key::TextKey::Content);
        let events = parse_events(doc.as_bytes()).unwrap();
        let mut dict = TagDict::new();
        events_to_recs(&events, &spec, &mut dict, true).unwrap()
    }

    #[test]
    fn table_1_key_paths_render_as_in_the_paper() {
        let pathed = attach_paths(d1_recs()).unwrap();
        let shown: Vec<String> = pathed.iter().map(|p| p.path.display()).collect();
        assert_eq!(
            shown,
            vec![
                "/",
                "/NE",
                "/AC",
                "/AC/Durham",
                "/AC/Durham/454",
                "/AC/Durham/323",
                "/AC/Durham/323/name",
                "/AC/Durham/323/name/Smith",
                "/AC/Durham/323/phone",
                "/AC/Durham/323/phone/5552345",
                "/AC/Atlanta",
            ]
        );
    }

    #[test]
    fn parents_sort_before_descendants() {
        let pathed = attach_paths(d1_recs()).unwrap();
        let root = &pathed[0];
        for p in &pathed[1..] {
            assert_eq!(root.cmp_order(p), Ordering::Less);
        }
        // /AC/Durham before /AC/Durham/454.
        assert_eq!(pathed[3].cmp_order(&pathed[4]), Ordering::Less);
    }

    #[test]
    fn sorting_by_key_path_yields_sorted_sibling_order() {
        let mut pathed = attach_paths(d1_recs()).unwrap();
        pathed.sort_by(|a, b| a.cmp_order(b));
        let shown: Vec<String> = pathed.iter().map(|p| p.path.display()).collect();
        // AC < NE; Atlanta < Durham; 323 < 454 (byte comparison).
        assert_eq!(shown[1], "/AC");
        assert_eq!(shown[2], "/AC/Atlanta");
        assert_eq!(shown[3], "/AC/Durham");
        assert_eq!(shown[4], "/AC/Durham/323");
        assert_eq!(*shown.last().unwrap(), "/NE");
    }

    #[test]
    fn seq_breaks_ties_between_equal_keys() {
        use crate::rec::{ElemRec, Rec};
        use crate::sym::NameRef;
        let mk = |seq| {
            Rec::Elem(ElemRec {
                level: 1,
                name: NameRef::Sym(0),
                attrs: vec![],
                key: KeyValue::Bytes(b"same".to_vec()),
                seq,
            })
        };
        let mut b1 = PathBuilder::new();
        let p1 = b1.attach(mk(7)).unwrap();
        let mut b2 = PathBuilder::new();
        let p2 = b2.attach(mk(9)).unwrap();
        assert_eq!(p1.cmp_order(&p2), Ordering::Less);
    }

    #[test]
    fn pathed_rec_codec_roundtrip() {
        let pathed = attach_paths(d1_recs()).unwrap();
        let mut buf = Vec::new();
        for p in &pathed {
            p.encode(&mut buf).unwrap();
        }
        let mut src = SliceReader::new(&buf);
        let mut out = Vec::new();
        while src.remaining() > 0 {
            let (p, _) = PathedRec::decode(&mut src).unwrap();
            out.push(p);
        }
        assert_eq!(out, pathed);
    }

    #[test]
    fn key_path_space_blowup_grows_with_depth() {
        // The paper's motivation: tall trees repeat ancestor keys. Verify the
        // pathed encoding of a chain grows quadratically while records alone
        // grow linearly.
        let depth = 30;
        let mut doc = String::new();
        for i in 0..depth {
            doc.push_str(&format!("<n k=\"key-{i:04}\">"));
        }
        for _ in 0..depth {
            doc.push_str("</n>");
        }
        let events = parse_events(doc.as_bytes()).unwrap();
        let spec = SortSpec::by_attribute("k");
        let mut dict = TagDict::new();
        let recs = events_to_recs(&events, &spec, &mut dict, true).unwrap();
        let plain: usize = recs.iter().map(Rec::encoded_len).sum();
        let pathed = attach_paths(recs).unwrap();
        let with_paths: usize = pathed.iter().map(PathedRec::encoded_len).sum();
        assert!(
            with_paths > plain * (depth / 8),
            "expected super-linear blow-up: plain={plain} pathed={with_paths}"
        );
    }

    #[test]
    fn level_jumps_are_rejected() {
        use crate::rec::{ElemRec, Rec};
        use crate::sym::NameRef;
        let mut b = PathBuilder::new();
        let bad = Rec::Elem(ElemRec {
            level: 3,
            name: NameRef::Sym(0),
            attrs: vec![],
            key: KeyValue::Missing,
            seq: 0,
        });
        assert!(b.attach(bad).is_err());
    }

    #[test]
    fn rec_stream_roundtrips_through_extent_storage() {
        // Sanity: records with paths survive block storage (cross-module).
        let pathed = attach_paths(d1_recs()).unwrap();
        let recs: Vec<Rec> = pathed.iter().map(|p| p.rec.clone()).collect();
        let mut buf = Vec::new();
        for r in &recs {
            r.encode(&mut buf).unwrap();
        }
        let mut dec = RecDecoder::new(SliceReader::new(&buf));
        let mut out = Vec::new();
        while let Some(r) = dec.next_rec().unwrap() {
            out.push(r);
        }
        assert_eq!(out, recs);
    }
}
