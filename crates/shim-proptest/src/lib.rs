//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! slice of proptest's API that `tests/properties.rs` uses: the [`Strategy`]
//! trait with `prop_map` / `prop_recursive` / `boxed`, ranges, tuples,
//! [`Just`], `any::<T>()`, `prop::collection::vec`, a character-class subset
//! of the string-regex strategies, weighted [`prop_oneof!`], and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from upstream, by design:
//! - **No shrinking.** A failing case reports the case number and message;
//!   re-running reproduces it exactly (seeds are derived from the test name).
//! - Value streams differ from upstream proptest; only determinism and a
//!   reasonable distribution are promised.
//! - String strategies accept only `[class]{m,n}`-style patterns (sequences
//!   of char classes / literals with optional repetition), which covers every
//!   pattern in this repository. Unsupported syntax panics loudly.
//!
//! Set `PROPTEST_SHIM_SEED=<u64>` to perturb every test's seed, e.g. for a
//! soak run exploring fresh cases.
#![forbid(unsafe_code)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

use rand::{Rng as _, RngCore, SeedableRng};

/// Deterministic generator handed to strategies; one per test function.
pub struct TestRng(rand::rngs::StdRng);

impl TestRng {
    /// Derive the generator for a named test: FNV-1a of the name, optionally
    /// xor-perturbed by `PROPTEST_SHIM_SEED` for soak runs.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        if let Ok(s) = std::env::var("PROPTEST_SHIM_SEED") {
            if let Ok(v) = s.trim().parse::<u64>() {
                h ^= v;
            }
        }
        TestRng(rand::rngs::StdRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Mirror of `proptest::test_runner` for code that names the full path.
pub mod test_runner {
    pub use super::TestRng;
}

// ---------- errors and config ----------

/// A failed property case (what `prop_assert!` returns).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure carrying `msg`.
    pub fn fail(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-block configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

// ---------- the Strategy trait ----------

/// A recipe for generating values of `Self::Value`.
///
/// Object-safe core (`generate`) plus sized combinators, like upstream.
pub trait Strategy: 'static {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + 'static,
    {
        Map { inner: self, f }
    }

    /// Recursive strategy: `self` is the leaf; `branch` builds one level on
    /// top of the strategy for the level below. `depth` bounds nesting; the
    /// size hints are accepted for API compatibility but unused (sizes are
    /// bounded by `depth` times the branch fan-out instead).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        R: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            // Each added level branches with probability 3/4, so expected
            // sizes stay modest while deep nesting remains reachable.
            let deeper = branch(cur).boxed();
            cur = Union::weighted(vec![(1, leaf.clone()), (3, deeper)]).boxed();
        }
        cur
    }

    /// Type-erase into a cloneable, reference-counted strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply cloneable [`Strategy`].
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

// ---------- primitive strategies ----------

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for Range<T>
where
    T: rand::SampleUniform + 'static,
    Range<T>: rand::SampleRange<T> + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Uniform draw over the whole domain of `T` (`bool`, the integers, `f64`).
pub fn any<T: rand::Standard + 'static>() -> Any<T> {
    Any(PhantomData)
}

impl<T: rand::Standard + 'static> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen::<T>()
    }
}

/// Mapped strategy (see [`Strategy::prop_map`]).
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + 'static,
    U: 'static,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice among boxed strategies (what [`prop_oneof!`] builds).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T: 'static> Union<T> {
    /// Build from `(weight, strategy)` pairs; weights need not be normalised.
    pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (w, s) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights summed correctly")
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

// ---------- collections ----------

/// Mirror of `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng as _;
    use std::ops::Range;

    /// `Vec` strategy: length drawn from `size`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range in prop::collection::vec");
        VecStrategy { element, size }
    }

    /// Strategy produced by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------- string (regex-subset) strategies ----------

/// One parsed pattern atom: the characters it may yield and its repetition.
struct Atom {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

/// Parse the supported regex subset: a sequence of `[class]`, `\c`, or
/// literal-char atoms, each optionally followed by `{n}` or `{m,n}`.
fn parse_pattern(pat: &str) -> Vec<Atom> {
    let chars: Vec<char> = pat.chars().collect();
    let mut i = 0;
    let mut atoms = Vec::new();
    let unsupported = |what: &str| -> ! {
        panic!("proptest shim: unsupported regex syntax ({what}) in pattern {pat:?}")
    };
    while i < chars.len() {
        let choices = match chars[i] {
            '[' => {
                i += 1;
                let mut set = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let c = if chars[i] == '\\' {
                        i += 1;
                        *chars.get(i).unwrap_or_else(|| unsupported("trailing backslash"))
                    } else {
                        chars[i]
                    };
                    // A `-` between two plain chars is a range; elsewhere
                    // (escaped, first, or last) it is a literal.
                    if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|c| *c != ']')
                    {
                        let hi = if chars[i + 2] == '\\' {
                            i += 1;
                            *chars.get(i + 2).unwrap_or_else(|| unsupported("trailing backslash"))
                        } else {
                            chars[i + 2]
                        };
                        if c > hi {
                            unsupported("descending class range");
                        }
                        set.extend((c..=hi).collect::<Vec<char>>());
                        i += 3;
                    } else {
                        set.push(c);
                        i += 1;
                    }
                }
                if i >= chars.len() {
                    unsupported("unterminated character class");
                }
                i += 1; // consume ']'
                set
            }
            '\\' => {
                i += 1;
                let c = *chars.get(i).unwrap_or_else(|| unsupported("trailing backslash"));
                i += 1;
                vec![c]
            }
            '(' | ')' | '|' | '*' | '+' | '?' | '.' | '^' | '$' => {
                unsupported("operator outside a character class")
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        if choices.is_empty() {
            unsupported("empty character class");
        }
        // Optional {n} or {m,n} repetition.
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|c| *c == '}')
                .unwrap_or_else(|| unsupported("unterminated repetition"));
            let body: String = chars[i + 1..i + close].iter().collect();
            i += close + 1;
            let parse = |s: &str| -> usize {
                s.trim().parse().unwrap_or_else(|_| unsupported("non-numeric repetition"))
            };
            match body.split_once(',') {
                Some((m, n)) => (parse(m), parse(n)),
                None => (parse(&body), parse(&body)),
            }
        } else {
            (1, 1)
        };
        if min > max {
            unsupported("descending repetition range");
        }
        atoms.push(Atom { choices, min, max });
    }
    atoms
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(self) {
            let n = rng.gen_range(atom.min..=atom.max);
            for _ in 0..n {
                out.push(atom.choices[rng.gen_range(0..atom.choices.len())]);
            }
        }
        out
    }
}

// ---------- macros ----------

/// Weighted (`w => strat`) or uniform choice among strategies of one value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::weighted(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Fail the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fail the current property case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq! failed:\n  left: {:?}\n right: {:?}",
                left, right
            )));
        }
    }};
}

/// Expand property functions into `#[test]`s that run `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            let strategies = ( $( $strat, )+ );
            for case in 0..cfg.cases {
                let ( $( $arg, )+ ) = {
                    let ( $( ref $arg, )+ ) = strategies;
                    ( $( $crate::Strategy::generate($arg, &mut rng), )+ )
                };
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}\n(no shrinking in the \
                         offline proptest shim; seeds are deterministic per test name)",
                        stringify!($name),
                        case + 1,
                        cfg.cases,
                        e
                    );
                }
            }
        }
    )*};
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    /// Alias so `prop::collection::vec(...)` and friends resolve.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    fn rng() -> TestRng {
        TestRng::for_test("shim-internal")
    }

    #[test]
    fn ranges_tuples_and_map() {
        let s = (0..4u8, 10..20u32).prop_map(|(a, b)| u64::from(a) + u64::from(b));
        let mut r = rng();
        for _ in 0..200 {
            let v = s.generate(&mut r);
            assert!((10..24).contains(&v), "{v}");
        }
    }

    #[test]
    fn oneof_weighted_and_uniform() {
        let w = prop_oneof![3 => Just(1u8), 1 => Just(2u8)];
        let u = prop_oneof![Just(10u8), Just(20u8), Just(30u8)];
        let mut r = rng();
        let mut ones = 0;
        for _ in 0..400 {
            if w.generate(&mut r) == 1 {
                ones += 1;
            }
            assert!([10, 20, 30].contains(&u.generate(&mut r)));
        }
        assert!((200..400).contains(&ones), "3:1 weighting should dominate: {ones}");
    }

    #[test]
    fn string_patterns_from_the_test_suite() {
        let mut r = rng();
        for _ in 0..100 {
            let s = "[a-z<&\"]{1,10}".generate(&mut r);
            assert!((1..=10).contains(&s.chars().count()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || "<&\"".contains(c)), "{s:?}");

            let soup = "[<>/=a-c\"'& !\\?\\-\\[\\]]{0,120}".generate(&mut r);
            assert!(soup.chars().count() <= 120);
            assert!(soup.chars().all(|c| "<>/=abc\"'& !?-[]".contains(c)), "{soup:?}");
        }
    }

    #[test]
    fn recursive_strategies_terminate_and_nest() {
        #[derive(Debug)]
        enum Tree {
            Leaf(#[allow(dead_code)] u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0..10u8).prop_map(Tree::Leaf).prop_recursive(4, 48, 6, |inner| {
            prop::collection::vec(inner, 0..4).prop_map(Tree::Node)
        });
        let mut r = rng();
        let mut max_depth = 0;
        for _ in 0..300 {
            max_depth = max_depth.max(depth(&strat.generate(&mut r)));
        }
        assert!(max_depth >= 2, "recursion should nest: {max_depth}");
        assert!(max_depth <= 4, "depth bound respected: {max_depth}");
    }

    #[test]
    fn collection_vec_respects_bounds() {
        let s = prop::collection::vec(any::<bool>(), 1..7);
        let mut r = rng();
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!((1..7).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The proptest! macro itself: args bind, prop_assert works.
        #[test]
        fn macro_binds_args(a in 0..5u8, b in 10..15u32) {
            prop_assert!(a < 5);
            prop_assert_eq!(b / 10, 1);
        }
    }
}
