// placeholder
#![forbid(unsafe_code)]
