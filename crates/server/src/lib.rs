//! nexsort-server: sort-as-a-service.
//!
//! A long-lived daemon that accepts NEXSORT jobs over a Unix or TCP
//! socket (newline-delimited JSON, see [`net`]), runs each job on a real
//! OS worker thread from a bounded pool, and arbitrates one global memory
//! budget across concurrent jobs through strict-FIFO frame leases
//! (`nexsort_extmem::BudgetArbiter`).
//!
//! Every accepted job is durable before it is acknowledged: its input is
//! copied into a server-owned job directory alongside a JSON manifest and
//! a file-backed device image, and the sort itself runs with
//! crash-consistent checkpointing (the PR-5 write-ahead manifest
//! journal). A daemon killed mid-flight therefore restarts with
//! [`Server::open`], replays its job manifests, and resumes every
//! unfinished sort from its journal -- committed merge passes are never
//! redone, and finished output is bit-identical to an uninterrupted run.
//!
//! The crate splits into:
//! - [`job`]: job specs, lifecycle states, and persisted manifests;
//! - [`server`]: the in-process daemon (worker pool, admission control,
//!   restart/resume);
//! - [`net`]: the socket front end and the client helper;
//! - [`json`]: a dependency-free JSON reader/writer for the protocol and
//!   the manifests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod job;
pub mod json;
pub mod net;
pub mod server;

pub use job::{JobInput, JobOp, JobSpec, JobState, Manifest};
pub use net::{
    connect_with_retry, parse_addr, request, request_fetch_chunked, request_submit,
    request_with_retry, request_with_retry_injected, serve, serve_with, submit_value, Addr,
    ClientOptions, ServeOptions,
};
pub use server::{JobStatus, Server, ServerConfig, ServerStats, SubmitError};
