//! Job specifications, lifecycle state, and the persisted per-job manifest.
//!
//! Every accepted job owns a directory `job-<id>/` under the server's job
//! root holding:
//!
//! * `input.xml`  -- a private copy of the input document, taken at accept
//!   time so a resumed job never depends on the submitter's file surviving;
//! * `device.bin` (plus `.0..N-1` when striped) -- the job's block device,
//!   carrying the sort's PR-5 write-ahead journal;
//! * `job.json`   -- the manifest: the full spec, the lifecycle state, and
//!   (once staged) the raw input extent, i.e. everything a restarted daemon
//!   needs to reattach the device and resume the sort.
//!
//! The manifest is rewritten via temp-file + rename so a crash mid-update
//! leaves the previous consistent version in place.

use std::path::{Path, PathBuf};

use nexsort_extmem::CachePolicy;

use crate::json::{self, b, n, obj, s, Value};

/// Where a submitted job's input bytes come from.
#[derive(Debug, Clone)]
pub enum JobInput {
    /// Read the file at accept time.
    Path(PathBuf),
    /// The document text was inlined in the submit request.
    Inline(Vec<u8>),
}

/// What kind of work a job performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JobOp {
    /// Full NEXSORT sort (the default).
    #[default]
    Sort,
    /// `ORDER BY ... LIMIT k`: sort, keep only the first `k` records.
    /// Journaled and resumable exactly like a sort.
    TopK,
    /// External priority queue: the input is a script of `push KEY` /
    /// `pop` / `peek` lines; the output records each pop/peek result.
    /// Deterministic, so an interrupted job redoes the script from its
    /// input copy.
    Pq,
}

impl JobOp {
    /// Stable wire/manifest name.
    pub fn name(self) -> &'static str {
        match self {
            JobOp::Sort => "sort",
            JobOp::TopK => "topk",
            JobOp::Pq => "pq",
        }
    }

    /// Parse a manifest/wire name.
    pub fn from_name(name: &str) -> Result<Self, String> {
        Ok(match name {
            "sort" => JobOp::Sort,
            "topk" => JobOp::TopK,
            "pq" => JobOp::Pq,
            other => return Err(format!("unknown job op {other:?} (expected sort, topk, pq)")),
        })
    }
}

/// Everything needed to run one sort job. Plain data (`Send`): the worker
/// thread builds the actual device stack and sorter from it.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// What to do with the input.
    pub op: JobOp,
    /// The `k` of a top-k job; ignored by other ops.
    pub k: u64,
    /// Tenant this job is billed to, for the per-tenant fairness cap.
    pub tenant: Option<String>,
    /// Client-supplied idempotency token. A resubmit carrying a token the
    /// server has already accepted adopts the existing job (same id) instead
    /// of sorting twice -- the dropped-ACK retry case. Persisted in the
    /// manifest, so deduplication survives a daemon restart.
    pub idem: Option<String>,
    /// Input document.
    pub input: JobInput,
    /// Where the sorted output lands; `out.xml` inside the job directory
    /// when absent (fetch it over the protocol).
    pub output: Option<PathBuf>,
    /// Default ordering rule (spec-string grammar); document order if absent.
    pub default_rule: Option<String>,
    /// Per-tag `TAG=RULE` overrides.
    pub keys: Vec<String>,
    /// Device block size in bytes.
    pub block_size: usize,
    /// Sort memory in frames (the model's `m`).
    pub mem_frames: usize,
    /// Sort threshold in bytes (`None` = 2 blocks).
    pub threshold: Option<u64>,
    /// Depth limit for subtree descent.
    pub depth_limit: Option<u32>,
    /// Run the graceful-degeneration variant.
    pub degeneration: bool,
    /// Page-cache frames (0 = no cache). Leased from the global budget on
    /// top of `mem_frames`.
    pub cache_frames: usize,
    /// Page-cache eviction policy.
    pub cache_policy: CachePolicy,
    /// Write-back caching instead of write-through.
    pub write_back: bool,
    /// I/O scheduler workers (0 = synchronous).
    pub io_workers: usize,
    /// Read-ahead depth in blocks.
    pub prefetch_depth: usize,
    /// Defer physical writes to the write-behind queue.
    pub write_behind: bool,
    /// Stripe the device over N backing files.
    pub stripe: usize,
    /// Parity blocks per K data blocks of each sealed run (0 = none).
    pub parity_group: usize,
    /// Pretty-print the XML output.
    pub pretty: bool,
    /// Test hook: freeze the job's device after this many physical I/Os of
    /// the sort proper -- the in-process stand-in for `kill -9` mid-job.
    pub crash_after_ios: Option<u64>,
}

impl Default for JobSpec {
    fn default() -> Self {
        Self {
            op: JobOp::Sort,
            k: 0,
            tenant: None,
            idem: None,
            input: JobInput::Inline(Vec::new()),
            output: None,
            default_rule: None,
            keys: Vec::new(),
            block_size: 4096,
            mem_frames: 32,
            threshold: None,
            depth_limit: None,
            degeneration: false,
            cache_frames: 0,
            cache_policy: CachePolicy::Lru,
            write_back: false,
            io_workers: 0,
            prefetch_depth: 0,
            write_behind: false,
            stripe: 1,
            parity_group: 0,
            pretty: false,
            crash_after_ios: None,
        }
    }
}

impl JobSpec {
    /// Frames this job holds from the global budget while it runs: its sort
    /// memory plus its private page cache.
    pub fn frames_needed(&self) -> usize {
        self.mem_frames + self.cache_frames
    }
}

/// Lifecycle of a job. Terminal states are `Done`, `Failed`, and
/// `Canceled`; `Interrupted` means the job's device froze mid-sort (crash
/// injection or daemon death) and the job resumes on the next restart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// On a worker thread (staging, sorting, or writing output).
    Running,
    /// Output written and byte-complete.
    Done,
    /// Sort failed; see the error message.
    Failed,
    /// Dequeued by a cancel request before a worker picked it up.
    Canceled,
    /// Frozen mid-sort; will resume from the journal on restart.
    Interrupted,
}

impl JobState {
    /// Stable wire/manifest name.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Canceled => "canceled",
            JobState::Interrupted => "interrupted",
        }
    }

    /// Parse a manifest/wire name.
    pub fn from_name(name: &str) -> Result<Self, String> {
        Ok(match name {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "done" => JobState::Done,
            "failed" => JobState::Failed,
            "canceled" => JobState::Canceled,
            "interrupted" => JobState::Interrupted,
            other => return Err(format!("unknown job state {other:?}")),
        })
    }

    /// True when no further work will happen on this job.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed | JobState::Canceled)
    }
}

/// The persisted manifest of one job.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Job id (also names the job directory).
    pub id: u64,
    /// Lifecycle state at the last manifest write.
    pub state: JobState,
    /// The job's full specification (input is always the job-local copy).
    pub spec: JobSpec,
    /// The staged input extent `(blocks, byte_len)`, recorded before the
    /// sort starts so a restart can reattach it.
    pub staged: Option<(Vec<u64>, u64)>,
    /// Error message of a failed job.
    pub error: Option<String>,
    /// True when the job has already been resumed at least once.
    pub resumed: bool,
}

/// Cache-policy wire names.
pub fn policy_name(policy: CachePolicy) -> &'static str {
    match policy {
        CachePolicy::Lru => "lru",
        CachePolicy::Clock => "clock",
    }
}

/// Parse a cache-policy wire name.
pub fn policy_from_name(name: &str) -> Result<CachePolicy, String> {
    match name {
        "lru" => Ok(CachePolicy::Lru),
        "clock" => Ok(CachePolicy::Clock),
        other => Err(format!("unknown cache policy {other:?} (expected lru, clock)")),
    }
}

fn opt_num(v: Option<u64>) -> Value {
    match v {
        Some(x) => n(x),
        None => Value::Null,
    }
}

fn opt_str(v: &Option<String>) -> Value {
    match v {
        Some(x) => s(x.clone()),
        None => Value::Null,
    }
}

/// Serialize a spec to its JSON object form (shared by the manifest and the
/// submit protocol's echo).
pub fn spec_to_value(spec: &JobSpec) -> Value {
    obj(vec![
        ("op", s(spec.op.name())),
        ("k", n(spec.k)),
        ("tenant", opt_str(&spec.tenant)),
        ("idem", opt_str(&spec.idem)),
        ("output", spec.output.as_ref().map_or(Value::Null, |p| s(p.display().to_string()))),
        ("default", opt_str(&spec.default_rule)),
        ("keys", Value::Arr(spec.keys.iter().map(|k| s(k.clone())).collect())),
        ("block", n(spec.block_size as u64)),
        ("mem_frames", n(spec.mem_frames as u64)),
        ("threshold", opt_num(spec.threshold)),
        ("depth_limit", opt_num(spec.depth_limit.map(u64::from))),
        ("degeneration", b(spec.degeneration)),
        ("cache_frames", n(spec.cache_frames as u64)),
        ("cache_policy", s(policy_name(spec.cache_policy))),
        ("write_back", b(spec.write_back)),
        ("io_workers", n(spec.io_workers as u64)),
        ("prefetch_depth", n(spec.prefetch_depth as u64)),
        ("write_behind", b(spec.write_behind)),
        ("stripe", n(spec.stripe as u64)),
        ("parity_group", n(spec.parity_group as u64)),
        ("pretty", b(spec.pretty)),
        ("crash_after_ios", opt_num(spec.crash_after_ios)),
    ])
}

/// Parse the spec fields out of a JSON object (absent fields keep their
/// defaults). The `input` field is handled by the caller: the protocol
/// accepts `input` (a path) or `xml` (inline text); the manifest always
/// uses the job-local copy.
pub fn spec_from_value(v: &Value) -> Result<JobSpec, String> {
    let mut spec = JobSpec::default();
    let get_usize = |key: &str| -> Result<Option<usize>, String> {
        match v.get(key) {
            None | Some(Value::Null) => Ok(None),
            Some(x) => x
                .as_u64()
                .map(|u| Some(u as usize))
                .ok_or_else(|| format!("field {key:?} must be a non-negative integer")),
        }
    };
    let get_bool = |key: &str| -> Result<Option<bool>, String> {
        match v.get(key) {
            None | Some(Value::Null) => Ok(None),
            Some(x) => {
                x.as_bool().map(Some).ok_or_else(|| format!("field {key:?} must be a boolean"))
            }
        }
    };
    if let Some(op) = v.get("op") {
        if let Some(name) = op.as_str() {
            spec.op = JobOp::from_name(name)?;
        }
    }
    if let Some(x) = get_usize("k")? {
        spec.k = x as u64;
    }
    if let Some(t) = v.get("tenant") {
        if let Some(name) = t.as_str() {
            spec.tenant = Some(name.to_string());
        }
    }
    if let Some(t) = v.get("idem") {
        if let Some(token) = t.as_str() {
            spec.idem = Some(token.to_string());
        }
    }
    if let Some(out) = v.get("output") {
        if let Some(path) = out.as_str() {
            spec.output = Some(PathBuf::from(path));
        }
    }
    if let Some(d) = v.get("default") {
        if let Some(rule) = d.as_str() {
            spec.default_rule = Some(rule.to_string());
        }
    }
    if let Some(keys) = v.get("keys") {
        let items = keys.as_arr().ok_or("field \"keys\" must be an array of TAG=RULE strings")?;
        for item in items {
            spec.keys.push(item.as_str().ok_or("field \"keys\" must contain strings")?.to_string());
        }
    }
    if let Some(x) = get_usize("block")? {
        spec.block_size = x;
    }
    if let Some(x) = get_usize("mem_frames")? {
        spec.mem_frames = x;
    }
    if let Some(x) = get_usize("threshold")? {
        spec.threshold = Some(x as u64);
    }
    if let Some(x) = get_usize("depth_limit")? {
        spec.depth_limit = Some(x as u32);
    }
    if let Some(x) = get_bool("degeneration")? {
        spec.degeneration = x;
    }
    if let Some(x) = get_usize("cache_frames")? {
        spec.cache_frames = x;
    }
    if let Some(p) = v.get("cache_policy") {
        if let Some(name) = p.as_str() {
            spec.cache_policy = policy_from_name(name)?;
        }
    }
    if let Some(x) = get_bool("write_back")? {
        spec.write_back = x;
    }
    if let Some(x) = get_usize("io_workers")? {
        spec.io_workers = x;
    }
    if let Some(x) = get_usize("prefetch_depth")? {
        spec.prefetch_depth = x;
    }
    if let Some(x) = get_bool("write_behind")? {
        spec.write_behind = x;
    }
    if let Some(x) = get_usize("stripe")? {
        spec.stripe = x.max(1);
    }
    if let Some(x) = get_usize("parity_group")? {
        spec.parity_group = x;
    }
    if let Some(x) = get_bool("pretty")? {
        spec.pretty = x;
    }
    if let Some(x) = get_usize("crash_after_ios")? {
        spec.crash_after_ios = Some(x as u64);
    }
    Ok(spec)
}

impl Manifest {
    /// Serialize to the `job.json` document.
    pub fn to_json(&self) -> String {
        let staged = match &self.staged {
            None => Value::Null,
            Some((blocks, len)) => obj(vec![
                ("blocks", Value::Arr(blocks.iter().map(|&id| n(id)).collect())),
                ("len", n(*len)),
            ]),
        };
        obj(vec![
            ("id", n(self.id)),
            ("state", s(self.state.name())),
            ("spec", spec_to_value(&self.spec)),
            ("staged", staged),
            ("error", opt_str(&self.error)),
            ("resumed", b(self.resumed)),
        ])
        .to_json()
    }

    /// Parse a `job.json` document. `job_dir` supplies the input path (the
    /// manifest never records it; the copy is always `job_dir/input.xml`).
    pub fn from_json(text: &str, job_dir: &Path) -> Result<Self, String> {
        let v = json::parse(text)?;
        let id = v.get("id").and_then(Value::as_u64).ok_or("manifest missing \"id\"")?;
        let state = JobState::from_name(
            v.get("state").and_then(Value::as_str).ok_or("manifest missing \"state\"")?,
        )?;
        let mut spec = spec_from_value(v.get("spec").ok_or("manifest missing \"spec\"")?)?;
        spec.input = JobInput::Path(job_dir.join("input.xml"));
        let staged = match v.get("staged") {
            None | Some(Value::Null) => None,
            Some(st) => {
                let blocks = st
                    .get("blocks")
                    .and_then(Value::as_arr)
                    .ok_or("manifest \"staged\" missing \"blocks\"")?
                    .iter()
                    .map(|b| b.as_u64().ok_or("staged block ids must be integers"))
                    .collect::<Result<Vec<u64>, _>>()?;
                let len = st
                    .get("len")
                    .and_then(Value::as_u64)
                    .ok_or("manifest \"staged\" missing \"len\"")?;
                Some((blocks, len))
            }
        };
        let error = v.get("error").and_then(Value::as_str).map(str::to_string);
        let resumed = v.get("resumed").and_then(Value::as_bool).unwrap_or(false);
        Ok(Self { id, state, spec, staged, error, resumed })
    }

    /// Write the manifest atomically (temp file + rename) into `job_dir`.
    pub fn store(&self, job_dir: &Path) -> Result<(), String> {
        let tmp = job_dir.join("job.json.tmp");
        let dst = job_dir.join("job.json");
        std::fs::write(&tmp, self.to_json())
            .map_err(|e| format!("cannot write manifest {tmp:?}: {e}"))?;
        std::fs::rename(&tmp, &dst).map_err(|e| format!("cannot commit manifest {dst:?}: {e}"))
    }

    /// Load the manifest from `job_dir`, if one exists.
    pub fn load(job_dir: &Path) -> Result<Option<Self>, String> {
        let path = job_dir.join("job.json");
        match std::fs::read_to_string(&path) {
            Ok(text) => Self::from_json(&text, job_dir).map(Some),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(format!("cannot read manifest {path:?}: {e}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifests_round_trip() {
        let spec = JobSpec {
            op: JobOp::TopK,
            k: 25,
            tenant: Some("acme".into()),
            idem: Some("retry-token-1".into()),
            output: Some(PathBuf::from("/tmp/out.xml")),
            default_rule: Some("@k:num".into()),
            keys: vec!["t=@a".into(), "u=@b:desc".into()],
            block_size: 256,
            mem_frames: 16,
            threshold: Some(512),
            depth_limit: Some(3),
            degeneration: true,
            cache_frames: 8,
            cache_policy: CachePolicy::Clock,
            write_back: true,
            io_workers: 2,
            prefetch_depth: 4,
            write_behind: true,
            stripe: 3,
            parity_group: 4,
            pretty: true,
            crash_after_ios: Some(77),
            ..JobSpec::default()
        };
        let m = Manifest {
            id: 9,
            state: JobState::Interrupted,
            spec,
            staged: Some((vec![5, 6, 7], 1234)),
            error: None,
            resumed: true,
        };
        let back = Manifest::from_json(&m.to_json(), Path::new("/jobs/job-9")).unwrap();
        assert_eq!(back.id, 9);
        assert_eq!(back.state, JobState::Interrupted);
        assert_eq!(back.staged, Some((vec![5, 6, 7], 1234)));
        assert!(back.resumed);
        assert_eq!(back.spec.block_size, 256);
        assert_eq!(back.spec.mem_frames, 16);
        assert_eq!(back.spec.threshold, Some(512));
        assert_eq!(back.spec.depth_limit, Some(3));
        assert!(back.spec.degeneration && back.spec.write_back && back.spec.write_behind);
        assert_eq!(back.spec.cache_policy, CachePolicy::Clock);
        assert_eq!(back.spec.stripe, 3);
        assert_eq!(back.spec.parity_group, 4);
        assert_eq!(back.spec.crash_after_ios, Some(77));
        assert_eq!(back.spec.op, JobOp::TopK);
        assert_eq!(back.spec.k, 25);
        assert_eq!(back.spec.tenant.as_deref(), Some("acme"));
        assert_eq!(back.spec.idem.as_deref(), Some("retry-token-1"));
        assert_eq!(back.spec.keys, vec!["t=@a".to_string(), "u=@b:desc".to_string()]);
        match &back.spec.input {
            JobInput::Path(p) => assert_eq!(p, Path::new("/jobs/job-9/input.xml")),
            other => panic!("expected job-local input path, got {other:?}"),
        }
    }

    #[test]
    fn states_round_trip_and_classify() {
        for st in [
            JobState::Queued,
            JobState::Running,
            JobState::Done,
            JobState::Failed,
            JobState::Canceled,
            JobState::Interrupted,
        ] {
            assert_eq!(JobState::from_name(st.name()).unwrap(), st);
        }
        assert!(JobState::Done.is_terminal());
        assert!(!JobState::Interrupted.is_terminal(), "interrupted jobs resume on restart");
        assert!(JobState::from_name("zombie").is_err());
    }

    #[test]
    fn store_and_load_are_atomic_siblings() {
        let dir = std::env::temp_dir().join(format!("xjob-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(Manifest::load(&dir).unwrap().is_none());
        let m = Manifest {
            id: 1,
            state: JobState::Queued,
            spec: JobSpec::default(),
            staged: None,
            error: Some("boom".into()),
            resumed: false,
        };
        m.store(&dir).unwrap();
        let back = Manifest::load(&dir).unwrap().expect("stored");
        assert_eq!(back.error.as_deref(), Some("boom"));
        assert!(!dir.join("job.json.tmp").exists(), "temp file was renamed away");
        std::fs::remove_dir_all(&dir).ok();
    }
}
