//! A small hand-rolled JSON value, parser, and serializer.
//!
//! The workspace builds fully offline (xlint R8: path-only dependencies),
//! so the wire protocol cannot lean on serde. The server's protocol is
//! newline-delimited JSON with a flat, known vocabulary, which this module
//! covers completely: objects, arrays, strings with `\uXXXX` escapes,
//! integer and fractional numbers, booleans, null. Objects preserve
//! insertion order (a `Vec` of pairs) so serialized messages are
//! deterministic -- tests compare them textually.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as f64; integers round-trip exactly up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key of an object (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric content as u64, if this is a non-negative whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The numeric content, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean content, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize to compact JSON (no whitespace, stable key order).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Build an object value from key/value pairs.
pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Shorthand constructors.
pub fn s(v: impl Into<String>) -> Value {
    Value::Str(v.into())
}

/// A whole-number value.
pub fn n(v: u64) -> Value {
    Value::Num(v as f64)
}

/// A boolean value.
pub fn b(v: bool) -> Value {
    Value::Bool(v)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse one JSON document; trailing garbage is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_value(bytes, pos)? {
                    Value::Str(k) => k,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>().map(Value::Num).map_err(|_| format!("invalid number {text:?}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        // Surrogate pairs: join a high surrogate with the
                        // following \uXXXX low surrogate.
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            if bytes.get(*pos + 5..*pos + 7) != Some(b"\\u") {
                                return Err("lone high surrogate".into());
                            }
                            let lo_hex = bytes
                                .get(*pos + 7..*pos + 11)
                                .ok_or_else(|| "truncated surrogate pair".to_string())?;
                            let lo_hex = std::str::from_utf8(lo_hex).map_err(|e| e.to_string())?;
                            let lo = u32::from_str_radix(lo_hex, 16)
                                .map_err(|_| "bad surrogate".to_string())?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err("invalid low surrogate".into());
                            }
                            *pos += 6;
                            char::from_u32(0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00))
                                .ok_or_else(|| "invalid surrogate pair".to_string())?
                        } else {
                            char::from_u32(cp).ok_or_else(|| "invalid code point".to_string())?
                        };
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid by construction).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or_else(|| "unterminated string".to_string())?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip() {
        let v = obj(vec![
            ("op", s("submit")),
            ("id", n(42)),
            ("ok", b(true)),
            ("nothing", Value::Null),
            ("keys", Value::Arr(vec![s("a=@x"), s("b=@y:num")])),
            ("nested", obj(vec![("pi", Value::Num(3.25))])),
        ]);
        let text = v.to_json();
        assert_eq!(parse(&text).unwrap(), v);
        assert_eq!(
            text,
            r#"{"op":"submit","id":42,"ok":true,"nothing":null,"keys":["a=@x","b=@y:num"],"nested":{"pi":3.25}}"#
        );
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = Value::Str("a\"b\\c\nd\te\u{1}–\u{1F600}".to_string());
        let text = v.to_json();
        assert_eq!(parse(&text).unwrap(), v);
        // Standard escape forms parse too.
        assert_eq!(parse(r#""Aé😀\/""#).unwrap(), Value::Str("Aé\u{1F600}/".to_string()));
    }

    #[test]
    fn numbers_parse() {
        assert_eq!(parse("0").unwrap().as_u64(), Some(0));
        assert_eq!(parse("12345678901").unwrap().as_u64(), Some(12345678901));
        assert_eq!(parse("-3").unwrap().as_f64(), Some(-3.0));
        assert_eq!(parse("2.5e2").unwrap().as_f64(), Some(250.0));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }

    #[test]
    fn accessors_navigate_objects() {
        let v = parse(r#"{"a": {"b": [1, true, "x"]}}"#).unwrap();
        let arr = v.get("a").unwrap().get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_bool(), Some(true));
        assert_eq!(arr[2].as_str(), Some("x"));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn malformed_documents_error() {
        for bad in ["", "{", "[1,", r#"{"a"}"#, "tru", "1x", r#""\q""#, "{} extra"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    mod properties {
        use super::super::*;
        use proptest::prelude::*;

        /// Characters that stress every serializer path: ASCII, all the
        /// short escapes, raw control chars, multi-byte BMP, and an
        /// astral-plane char (surrogate pair territory), plus JSON
        /// punctuation embedded in string content.
        const PALETTE: &[char] = &[
            'a',
            'Z',
            '9',
            '_',
            '"',
            '\\',
            '/',
            '\n',
            '\r',
            '\t',
            '\u{0008}',
            '\u{000C}',
            '\u{1}',
            '\u{1f}',
            'é',
            '\u{2013}',
            '中',
            '\u{1F600}',
            ' ',
            ':',
            '{',
            '}',
            '[',
            ']',
            ',',
        ];

        fn strings() -> BoxedStrategy<String> {
            proptest::collection::vec(0usize..PALETTE.len(), 0..12)
                .prop_map(|idx| idx.into_iter().map(|i| PALETTE[i]).collect())
                .boxed()
        }

        /// Arbitrary JSON values: nested objects/arrays over leaves that
        /// cover null, booleans, whole numbers up to 2^53, exact binary
        /// fractions, and palette strings.
        fn values() -> BoxedStrategy<Value> {
            let leaf = prop_oneof![
                Just(Value::Null),
                any::<bool>().prop_map(Value::Bool),
                (0u64..(1u64 << 53)).prop_map(|u| Value::Num(u as f64)),
                ((-(1i64 << 31))..(1i64 << 31), 0u32..3)
                    .prop_map(|(m, d)| Value::Num(m as f64 / f64::from(1u32 << d))),
                strings().prop_map(Value::Str),
            ];
            leaf.prop_recursive(3, 24, 4, |inner| {
                prop_oneof![
                    proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::Arr),
                    proptest::collection::vec((strings(), inner), 0..4).prop_map(Value::Obj),
                ]
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(512))]

            /// encode -> decode is the identity for every representable
            /// value, including escapes, unicode, nesting, and numbers at
            /// the edge of exact f64 integers.
            #[test]
            fn encode_decode_is_identity(v in values()) {
                let text = v.to_json();
                let back = parse(&text)
                    .map_err(|e| TestCaseError::fail(format!("{e} parsing {text:?}")))?;
                prop_assert_eq!(back, v);
            }

            /// Any truncation of a valid document either parses (a shorter
            /// prefix can itself be a complete document, e.g. numbers) or
            /// yields a structured error -- never a panic, and re-encoding
            /// a successful parse still round-trips.
            #[test]
            fn truncated_documents_never_panic(v in values(), cut in 0usize..64) {
                let text = v.to_json();
                let cut = cut.min(text.len());
                let prefix: String = text.chars().take(cut).collect();
                match parse(&prefix) {
                    Ok(reparsed) => {
                        let again = parse(&reparsed.to_json())
                            .map_err(TestCaseError::fail)?;
                        prop_assert_eq!(again, reparsed);
                    }
                    Err(e) => prop_assert!(!e.is_empty(), "error text must describe the failure"),
                }
            }

            /// Arbitrary palette junk (quotes, braces, backslashes, raw
            /// control characters) never panics the parser.
            #[test]
            fn arbitrary_input_never_panics(junk in strings()) {
                match parse(&junk) {
                    Ok(_) => {}
                    Err(e) => prop_assert!(!e.is_empty()),
                }
            }
        }
    }
}
