//! The sort daemon: a bounded worker pool running journaled, resumable sort
//! jobs under one globally-arbitrated memory budget.
//!
//! # Job lifecycle
//!
//! ```text
//! submit -> queued -> running -> done
//!              |         |-----> failed        (unrecoverable fault)
//!              |         `-----> interrupted   (device froze mid-sort)
//!              `-> canceled                    (cancel before a worker)
//! interrupted/queued/running --[restart: Server::open]--> queued -> ...
//! ```
//!
//! Admission control happens at `submit`: a job whose frame demand exceeds
//! the global budget is rejected outright (it could never run), and a full
//! queue pushes back with a busy error instead of queueing unboundedly.
//! Once accepted, a job is durable: its input copy, manifest, and device
//! file live in the server's job directory, so a killed daemon reopened
//! with [`Server::open`] re-queues every unfinished job and resumes it from
//! its on-device journal (PR-5 crash consistency) -- committed merge passes
//! are never redone.
//!
//! # Threading
//!
//! The sorting substrate is deliberately single-threaded (`Rc`/`Cell`), so
//! each job's entire device stack is built, used, and dropped on one worker
//! thread. The only cross-thread pieces are plain-data [`JobSpec`]s, the
//! job table, and the [`BudgetArbiter`]: a worker leases its job's frames
//! (sort memory + private page cache) before building the stack and
//! releases them when the job leaves the thread, so concurrent jobs share
//! one machine-wide budget with strict-FIFO fairness.

use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use nexsort::{Nexsort, NexsortOptions, SortReport};
use nexsort_baseline::stage_input;
use nexsort_extmem::locksan::{self, TrackedCondvar, TrackedGuard, TrackedMutex};
use nexsort_extmem::{BudgetArbiter, CrashPlan, Disk, DiskBuilder, DiskStack, ExtError, Extent};
use nexsort_xml::{build_spec, XmlError};

use crate::job::{JobInput, JobOp, JobSpec, JobState, Manifest};

/// Configuration of a server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (concurrent jobs).
    pub workers: usize,
    /// Maximum jobs waiting in the queue before `submit` pushes back.
    pub queue_depth: usize,
    /// Global memory budget in frames, shared by all concurrent jobs.
    pub budget_frames: usize,
    /// Max budget leases any single tenant may hold at once (0 = no cap).
    /// See `BudgetArbiter::set_tenant_cap` for the fairness model.
    pub tenant_cap: usize,
    /// Directory owning every job's input copy, device file, and manifest.
    pub job_dir: PathBuf,
}

impl ServerConfig {
    /// A config with `workers` threads and proportionate defaults, rooted
    /// at `job_dir`.
    pub fn new(workers: usize, job_dir: impl Into<PathBuf>) -> Self {
        Self {
            workers: workers.max(1),
            queue_depth: 16,
            budget_frames: 4096,
            tenant_cap: 0,
            job_dir: job_dir.into(),
        }
    }
}

/// Why a submission was not accepted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is full; retry later (backpressure, not failure).
    Busy(String),
    /// The job can never run as specified.
    Invalid(String),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Busy(msg) => write!(f, "busy: {msg}"),
            SubmitError::Invalid(msg) => write!(f, "invalid job: {msg}"),
        }
    }
}

/// A queryable snapshot of one job.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// Job id.
    pub id: u64,
    /// Current lifecycle state.
    pub state: JobState,
    /// Error message of a failed job.
    pub error: Option<String>,
    /// Where the output landed (or will land).
    pub output: PathBuf,
    /// True when the job was resumed from its journal at least once.
    pub resumed: bool,
    /// The sort's full report, once the job is done.
    pub report: Option<SortReport>,
    /// Submit-to-finish latency, once the job is terminal.
    pub latency: Option<Duration>,
}

/// Aggregate server counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Worker threads.
    pub workers: usize,
    /// Queue capacity.
    pub queue_depth: usize,
    /// Jobs currently waiting for a worker.
    pub queued: usize,
    /// Jobs currently on a worker.
    pub running: usize,
    /// Jobs completed byte-exact.
    pub done: usize,
    /// Jobs failed.
    pub failed: usize,
    /// Jobs canceled before running.
    pub canceled: usize,
    /// Jobs frozen mid-sort, awaiting a restart.
    pub interrupted: usize,
    /// Jobs accepted over this instance's lifetime (including re-queued
    /// jobs adopted by [`Server::open`]).
    pub submitted: u64,
    /// Jobs that went through journal resume.
    pub resumed: u64,
    /// Global budget: total frames.
    pub budget_total: usize,
    /// Global budget: frames currently leased.
    pub budget_used: usize,
    /// Global budget: high-water mark of simultaneous leases.
    pub budget_high_water: usize,
    /// Requests parked in the budget's FIFO waiter queue.
    pub budget_waiters: usize,
    /// Mutex-poisoning recoveries performed (process-wide) by the audited
    /// `locksan::recover_poison` helper: each one means a thread panicked
    /// while holding a lock and the guard was recovered rather than
    /// silently swallowed.
    pub lock_recoveries: u64,
    /// Violations recorded (process-wide) by the `NEXSORT_LOCKSAN=1`
    /// lock-discipline sanitizer; always 0 when the sanitizer is off.
    pub locksan_violations: u64,
    /// True while the server is draining: admissions get lame-duck busy
    /// replies and workers exit once no job is running.
    pub draining: bool,
    /// Drains initiated over this instance's lifetime.
    pub drains: u64,
    /// Submits deduplicated by idempotency token: each one is a retried
    /// `submit` that adopted its existing job instead of sorting twice.
    pub duplicate_submits: u64,
    /// Connections the socket front end accepted.
    pub conns_accepted: u64,
    /// Connections closed by a read deadline (idle or mid-request).
    pub conns_timed_out: u64,
    /// Responses hit by an injected network fault (chaos testing).
    pub conns_faulted: u64,
    /// Requests dispatched by the socket front end.
    pub requests: u64,
    /// Requests rejected for exceeding the frame length cap.
    pub lines_too_long: u64,
    /// Retries performed (process-wide) by this process's
    /// `request_with_retry` clients; observable here so in-process chaos
    /// tests can assert the retry path actually ran.
    pub client_retries: u64,
}

/// Counters the socket front end (`net::serve`) bumps per connection and
/// per request. Plain atomics: they sit outside every lock order.
#[derive(Debug, Default)]
pub(crate) struct NetStats {
    pub(crate) conns_accepted: AtomicU64,
    pub(crate) conns_timed_out: AtomicU64,
    pub(crate) conns_faulted: AtomicU64,
    pub(crate) requests: AtomicU64,
    pub(crate) lines_too_long: AtomicU64,
}

/// One job's record in the in-memory table.
struct JobRecord {
    spec: JobSpec,
    state: JobState,
    /// Start via journal resume (set for jobs adopted from manifests).
    resume: bool,
    error: Option<String>,
    report: Option<SortReport>,
    output: PathBuf,
    submitted: Instant,
    latency: Option<Duration>,
    resumed: bool,
}

struct Core {
    queue: VecDeque<u64>,
    jobs: BTreeMap<u64, JobRecord>,
    /// Idempotency token -> job id, covering every job ever accepted by
    /// this directory (terminal ones included): a retried submit must adopt
    /// its job no matter how far the job got in the meantime.
    idem: BTreeMap<String, u64>,
    next_id: u64,
    submitted: u64,
    resumed_total: u64,
    duplicate_submits: u64,
    drains: u64,
    shutdown: bool,
    draining: bool,
}

struct Shared {
    cfg: ServerConfig,
    arbiter: BudgetArbiter,
    core: TrackedMutex<Core>,
    cv: TrackedCondvar,
    net: NetStats,
}

impl Shared {
    /// The single acquisition choke point for the core lock: the job
    /// table, queue, and lifetime counters are only ever touched through
    /// the guard returned here, which is what lets the static checker
    /// (xlint R11-R14) and the runtime sanitizer identify core critical
    /// sections. Poisoning routes through the audited
    /// `locksan::recover_poison` helper inside `TrackedMutex::lock` and is
    /// surfaced as `ServerStats::lock_recoveries`.
    fn lock_core(&self) -> TrackedGuard<'_, Core> {
        let core = self.core.lock();
        locksan::access("server.job-table");
        core
    }
}

/// The daemon: owns the worker pool and the job table. Dropping (or
/// [`shutdown`](Server::shutdown)) stops the workers after their current
/// job; everything else is durable in the job directory.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

/// Journal extent size for a given block size: 32 blocks, clamped so the
/// header still self-describes the extent within one block.
pub fn journal_blocks(block_size: usize) -> usize {
    32usize.min(((block_size.saturating_sub(28)) / 8).max(2))
}

impl Server {
    /// Start a fresh server over `cfg.job_dir` (created if missing).
    pub fn start(cfg: ServerConfig) -> Result<Self, String> {
        std::fs::create_dir_all(&cfg.job_dir)
            .map_err(|e| format!("cannot create job dir {:?}: {e}", cfg.job_dir))?;
        Ok(Self::boot(cfg, Vec::new()))
    }

    /// Open an existing job directory: adopt every persisted job, re-queue
    /// the unfinished ones (resuming from their journals), and start the
    /// workers. This is the restart path after a daemon death.
    pub fn open(cfg: ServerConfig) -> Result<Self, String> {
        std::fs::create_dir_all(&cfg.job_dir)
            .map_err(|e| format!("cannot create job dir {:?}: {e}", cfg.job_dir))?;
        let mut adopted = Vec::new();
        let entries = std::fs::read_dir(&cfg.job_dir)
            .map_err(|e| format!("cannot scan job dir {:?}: {e}", cfg.job_dir))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("cannot scan job dir: {e}"))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if !name.starts_with("job-") {
                continue;
            }
            match Manifest::load(&entry.path())? {
                Some(m) => adopted.push(m),
                None => continue,
            }
        }
        adopted.sort_by_key(|m| m.id);
        Ok(Self::boot(cfg, adopted))
    }

    fn boot(cfg: ServerConfig, adopted: Vec<Manifest>) -> Self {
        let mut core = Core {
            queue: VecDeque::new(),
            jobs: BTreeMap::new(),
            idem: BTreeMap::new(),
            next_id: adopted.iter().map(|m| m.id + 1).max().unwrap_or(0),
            submitted: 0,
            resumed_total: 0,
            duplicate_submits: 0,
            drains: 0,
            shutdown: false,
            draining: false,
        };
        for m in adopted {
            if let Some(tok) = &m.spec.idem {
                core.idem.insert(tok.clone(), m.id);
            }
            let unfinished = !m.state.is_terminal();
            // A job with a staged input extent has a device image (and
            // journal) worth reattaching; one without re-runs from its
            // input copy. An unfinished pq job that already ran once is a
            // deterministic redo: flag it so the crash hook (which models
            // the daemon death that got us here) is not re-armed.
            let resume = unfinished
                && (m.staged.is_some() || (m.spec.op == JobOp::Pq && m.state != JobState::Queued));
            let output = resolve_output(&cfg, m.id, &m.spec);
            core.jobs.insert(
                m.id,
                JobRecord {
                    spec: m.spec,
                    state: if unfinished { JobState::Queued } else { m.state },
                    resume,
                    error: m.error,
                    report: None,
                    output,
                    submitted: Instant::now(),
                    latency: None,
                    resumed: m.resumed,
                },
            );
            if unfinished {
                core.queue.push_back(m.id);
                core.submitted += 1;
            }
        }
        let arbiter = BudgetArbiter::new(cfg.budget_frames);
        arbiter.set_tenant_cap(cfg.tenant_cap);
        let shared = Arc::new(Shared {
            arbiter,
            cfg,
            core: TrackedMutex::new("server.core", core),
            cv: TrackedCondvar::new(),
            net: NetStats::default(),
        });
        let workers = (0..shared.cfg.workers)
            .map(|_| {
                let sh = shared.clone();
                std::thread::spawn(move || worker_loop(&sh))
            })
            .collect();
        Self { shared, workers }
    }

    /// The job directory this server owns.
    pub fn job_dir(&self) -> &PathBuf {
        &self.shared.cfg.job_dir
    }

    /// Submit a job. Validates the spec, copies the input into the job
    /// directory, persists the manifest, and queues the job. Backpressure:
    /// a full queue returns [`SubmitError::Busy`] without accepting.
    pub fn submit(&self, mut spec: JobSpec) -> Result<u64, SubmitError> {
        // Validation first: reject what could never run.
        build_spec(spec.default_rule.as_deref(), &spec.keys).map_err(SubmitError::Invalid)?;
        if spec.block_size < 64 {
            return Err(SubmitError::Invalid(format!(
                "block size {} is below the 64-byte minimum",
                spec.block_size
            )));
        }
        spec.mem_frames = spec.mem_frames.max(NexsortOptions::MIN_MEM_FRAMES);
        spec.stripe = spec.stripe.max(1);
        if spec.op == JobOp::TopK && spec.k == 0 {
            return Err(SubmitError::Invalid("top-k jobs need k >= 1".into()));
        }
        if spec.frames_needed() > self.shared.arbiter.total_frames() {
            return Err(SubmitError::Invalid(format!(
                "job needs {} frames ({} sort + {} cache); the global budget is {}",
                spec.frames_needed(),
                spec.mem_frames,
                spec.cache_frames,
                self.shared.arbiter.total_frames()
            )));
        }
        let input_bytes = match &spec.input {
            JobInput::Path(path) => std::fs::read(path)
                .map_err(|e| SubmitError::Invalid(format!("cannot read {path:?}: {e}")))?,
            JobInput::Inline(bytes) => bytes.clone(),
        };
        if spec.op != JobOp::Pq && nexsort_xml::is_xrec(&input_bytes) {
            return Err(SubmitError::Invalid(
                "server jobs take XML text; .xrec inputs are not resumable across restarts".into(),
            ));
        }
        // Admission: reserve a queue slot (or push back) and an id. A
        // resubmit carrying a known idempotency token short-circuits to its
        // existing job -- the client's first submit was accepted but the
        // ACK never arrived, so accepting again would sort twice.
        let id = {
            let mut core = self.shared.lock_core();
            if core.shutdown {
                return Err(SubmitError::Busy("server is shutting down".into()));
            }
            if let Some(tok) = &spec.idem {
                if let Some(&existing) = core.idem.get(tok) {
                    core.duplicate_submits += 1;
                    return Ok(existing);
                }
            }
            if core.draining {
                return Err(SubmitError::Busy("server is draining; not accepting new jobs".into()));
            }
            if core.queue.len() >= self.shared.cfg.queue_depth {
                return Err(SubmitError::Busy(format!(
                    "queue full ({} job(s) waiting); retry later",
                    core.queue.len()
                )));
            }
            let id = core.next_id;
            core.next_id += 1;
            // Register the token before the lock drops: a concurrent retry
            // of the same submit must adopt this id, not race to a second.
            if let Some(tok) = &spec.idem {
                core.idem.insert(tok.clone(), id);
            }
            id
        };
        // Make the job durable before announcing it.
        let job_dir = self.shared.cfg.job_dir.join(format!("job-{id}"));
        let persist = (|| -> Result<(), String> {
            std::fs::create_dir_all(&job_dir).map_err(|e| format!("mkdir {job_dir:?}: {e}"))?;
            std::fs::write(job_dir.join("input.xml"), &input_bytes)
                .map_err(|e| format!("cannot copy input: {e}"))?;
            let mut stored = spec.clone();
            stored.input = JobInput::Path(job_dir.join("input.xml"));
            Manifest {
                id,
                state: JobState::Queued,
                spec: stored,
                staged: None,
                error: None,
                resumed: false,
            }
            .store(&job_dir)
        })();
        if let Err(e) = persist {
            // The job never became durable: un-register its token so a
            // genuine resubmit is not pointed at a ghost.
            if let Some(tok) = &spec.idem {
                let mut core = self.shared.lock_core();
                core.idem.remove(tok);
            }
            return Err(SubmitError::Invalid(e));
        }
        spec.input = JobInput::Path(job_dir.join("input.xml"));
        let output = resolve_output(&self.shared.cfg, id, &spec);
        let mut core = self.shared.lock_core();
        core.jobs.insert(
            id,
            JobRecord {
                spec,
                state: JobState::Queued,
                resume: false,
                error: None,
                report: None,
                output,
                submitted: Instant::now(),
                latency: None,
                resumed: false,
            },
        );
        core.queue.push_back(id);
        core.submitted += 1;
        drop(core);
        self.shared.cv.notify_all();
        Ok(id)
    }

    /// Status of one job.
    pub fn status(&self, id: u64) -> Option<JobStatus> {
        let core = self.shared.lock_core();
        core.jobs.get(&id).map(|r| snapshot(id, r))
    }

    /// Status of every known job, in id order.
    pub fn list(&self) -> Vec<JobStatus> {
        let core = self.shared.lock_core();
        core.jobs.iter().map(|(&id, r)| snapshot(id, r)).collect()
    }

    /// Cancel a queued job. Returns true when the job was dequeued; a job
    /// already on a worker runs to completion (the sorting substrate is
    /// single-threaded and cannot be interrupted across threads) and
    /// cancel returns false.
    pub fn cancel(&self, id: u64) -> bool {
        let mut core = self.shared.lock_core();
        let Some(rec) = core.jobs.get_mut(&id) else { return false };
        if rec.state != JobState::Queued {
            return false;
        }
        rec.state = JobState::Canceled;
        rec.latency = Some(rec.submitted.elapsed());
        let spec = rec.spec.clone();
        let resumed = rec.resumed;
        core.queue.retain(|&q| q != id);
        drop(core);
        let job_dir = self.shared.cfg.job_dir.join(format!("job-{id}"));
        let _ =
            Manifest { id, state: JobState::Canceled, spec, staged: None, error: None, resumed }
                .store(&job_dir);
        true
    }

    /// Aggregate counters.
    pub fn stats(&self) -> ServerStats {
        // Lock order (xlint R11): the arbiter counters are read *before*
        // the core lock is taken — each arbiter getter briefly takes the
        // arbiter lock, and the global order is arbiter before core.
        let budget_total = self.shared.arbiter.total_frames();
        let budget_used = self.shared.arbiter.used_frames();
        let budget_high_water = self.shared.arbiter.high_water_frames();
        let budget_waiters = self.shared.arbiter.waiters();
        // Likewise read outside the core region: violation_count takes the
        // sanitizer's own bookkeeping lock, which must not nest under core.
        let lock_recoveries = locksan::poison_recoveries();
        let locksan_violations = locksan::violation_count() as u64;
        // Socket-edge counters are plain atomics outside every lock order.
        let conns_accepted = self.shared.net.conns_accepted.load(Ordering::Relaxed);
        let conns_timed_out = self.shared.net.conns_timed_out.load(Ordering::Relaxed);
        let conns_faulted = self.shared.net.conns_faulted.load(Ordering::Relaxed);
        let requests = self.shared.net.requests.load(Ordering::Relaxed);
        let lines_too_long = self.shared.net.lines_too_long.load(Ordering::Relaxed);
        let client_retries = crate::net::client_retries();
        let core = self.shared.lock_core();
        let mut st = ServerStats {
            workers: self.shared.cfg.workers,
            queue_depth: self.shared.cfg.queue_depth,
            submitted: core.submitted,
            resumed: core.resumed_total,
            budget_total,
            budget_used,
            budget_high_water,
            budget_waiters,
            lock_recoveries,
            locksan_violations,
            draining: core.draining,
            drains: core.drains,
            duplicate_submits: core.duplicate_submits,
            conns_accepted,
            conns_timed_out,
            conns_faulted,
            requests,
            lines_too_long,
            client_retries,
            ..ServerStats::default()
        };
        for rec in core.jobs.values() {
            match rec.state {
                JobState::Queued => st.queued += 1,
                JobState::Running => st.running += 1,
                JobState::Done => st.done += 1,
                JobState::Failed => st.failed += 1,
                JobState::Canceled => st.canceled += 1,
                JobState::Interrupted => st.interrupted += 1,
            }
        }
        st
    }

    /// Read the finished output of a done job.
    pub fn fetch_output(&self, id: u64) -> Result<Vec<u8>, String> {
        let (state, output) = {
            let core = self.shared.lock_core();
            let rec = core.jobs.get(&id).ok_or_else(|| format!("no such job {id}"))?;
            (rec.state, rec.output.clone())
        };
        if state != JobState::Done {
            return Err(format!("job {id} is {}, not done", state.name()));
        }
        std::fs::read(&output).map_err(|e| format!("cannot read output {output:?}: {e}"))
    }

    /// Read one bounded chunk of a done job's output: up to `len` bytes
    /// starting at byte `offset`, trimmed back to a UTF-8 character
    /// boundary so every chunk is valid text on the wire. Returns
    /// `(chunk, total_len, eof)`.
    pub fn fetch_output_chunk(
        &self,
        id: u64,
        offset: u64,
        len: u64,
    ) -> Result<(Vec<u8>, u64, bool), String> {
        let bytes = self.fetch_output(id)?;
        let total = bytes.len() as u64;
        let start = offset.min(total) as usize;
        let mut end = (offset.saturating_add(len)).min(total) as usize;
        // Never split a multi-byte character: back off while the byte at
        // `end` is a UTF-8 continuation byte (0b10xxxxxx).
        while end > start && end < bytes.len() && bytes[end] & 0xC0 == 0x80 {
            end -= 1;
        }
        let eof = end as u64 >= total;
        Ok((bytes[start..end].to_vec(), total, eof))
    }

    /// Block until job `id` reaches a settled state (terminal or
    /// interrupted) or `timeout` passes. Returns the final status.
    pub fn wait(&self, id: u64, timeout: Duration) -> Option<JobStatus> {
        let deadline = Instant::now() + timeout;
        loop {
            let status = self.status(id)?;
            if status.state.is_terminal() || status.state == JobState::Interrupted {
                return Some(status);
            }
            if Instant::now() >= deadline {
                return Some(status);
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Block until no job is queued or running, or `timeout` passes.
    /// Returns true when the server is idle.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            {
                let core = self.shared.lock_core();
                let busy = !core.queue.is_empty()
                    || core.jobs.values().any(|r| matches!(r.state, JobState::Running));
                if !busy {
                    return true;
                }
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Enter lame-duck mode: new submits get a busy reply (retryable
    /// backpressure), idle workers exit, running jobs keep their workers
    /// until they settle. Queued jobs stay parked in their manifests and
    /// run on the next [`Server::open`]. Idempotent.
    pub fn begin_drain(&self) {
        {
            let mut core = self.shared.lock_core();
            if core.draining {
                return;
            }
            core.draining = true;
            core.drains += 1;
        }
        self.shared.cv.notify_all();
    }

    /// Graceful drain: [`begin_drain`](Server::begin_drain), then block
    /// until no job is running or `timeout` passes. Returns true when
    /// every running job settled in time; false means the drain deadline
    /// expired with work still on a worker (the caller may still shut
    /// down -- the journal makes that equivalent to a kill -9, and the
    /// next [`Server::open`] resumes without redoing committed passes).
    pub fn drain(&self, timeout: Duration) -> bool {
        self.begin_drain();
        let deadline = Instant::now() + timeout;
        loop {
            {
                let core = self.shared.lock_core();
                let busy = core.jobs.values().any(|r| matches!(r.state, JobState::Running));
                if !busy {
                    return true;
                }
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// The socket front end's counters (bumped by `net::serve`).
    pub(crate) fn net_stats(&self) -> &NetStats {
        &self.shared.net
    }

    /// Stop accepting work, let running jobs finish, and join the workers.
    /// Queued jobs stay queued in their manifests and run on the next
    /// [`Server::open`].
    pub fn shutdown(mut self) {
        self.stop_workers();
    }

    fn stop_workers(&mut self) {
        {
            let mut core = self.shared.lock_core();
            core.shutdown = true;
        }
        self.shared.cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

fn snapshot(id: u64, rec: &JobRecord) -> JobStatus {
    JobStatus {
        id,
        state: rec.state,
        error: rec.error.clone(),
        output: rec.output.clone(),
        resumed: rec.resumed,
        report: rec.report.clone(),
        latency: rec.latency,
    }
}

/// Where a job's output lands: the requested path, or `out.xml` in the job
/// directory.
fn resolve_output(cfg: &ServerConfig, id: u64, spec: &JobSpec) -> PathBuf {
    match &spec.output {
        Some(path) => path.clone(),
        None => cfg.job_dir.join(format!("job-{id}")).join("out.xml"),
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let id = {
            let mut core = shared.lock_core();
            loop {
                if core.shutdown || core.draining {
                    return;
                }
                if let Some(id) = core.queue.pop_front() {
                    // Mark Running inside the same critical section as the
                    // pop: a drain that observed "queue empty, none
                    // running" between the two would think the job never
                    // existed and declare the server idle too early.
                    if let Some(rec) = core.jobs.get_mut(&id) {
                        rec.state = JobState::Running;
                    }
                    break id;
                }
                core = shared.cv.wait(core);
            }
        };
        run_job(shared, id);
    }
}

/// Run one job end to end on this thread. Every failure path lands in the
/// job record and manifest; this function never panics the worker.
fn run_job(shared: &Arc<Shared>, id: u64) {
    let (spec, resume, was_resumed) = {
        let mut core = shared.lock_core();
        let Some(rec) = core.jobs.get_mut(&id) else { return };
        rec.state = JobState::Running;
        (rec.spec.clone(), rec.resume, rec.resumed)
    };
    let job_dir = shared.cfg.job_dir.join(format!("job-{id}"));
    let manifest = |state: JobState,
                    staged: &Option<(Vec<u64>, u64)>,
                    error: Option<String>,
                    resumed: bool| {
        let mut stored = spec.clone();
        stored.input = JobInput::Path(job_dir.join("input.xml"));
        let _ = Manifest { id, state, spec: stored, staged: staged.clone(), error, resumed }
            .store(&job_dir);
    };
    let resumed_now = was_resumed || resume;
    // Keep whatever input extent an earlier (interrupted) run staged: the
    // resume path reattaches through it.
    let prior_staged = Manifest::load(&job_dir).ok().flatten().and_then(|m| m.staged);
    manifest(JobState::Running, &prior_staged, None, resumed_now);
    if resume {
        let mut core = shared.lock_core();
        core.resumed_total += 1;
        if let Some(rec) = core.jobs.get_mut(&id) {
            rec.resumed = true;
        }
    }

    // Lease the job's frames from the global budget (strict-FIFO with the
    // per-tenant cap; blocks until admitted) for the whole on-thread
    // lifetime of the stack.
    let lease = match shared.arbiter.acquire_as(spec.frames_needed(), spec.tenant.as_deref()) {
        Ok(lease) => lease,
        Err(e) => {
            finish(shared, id, JobState::Failed, Some(format!("budget lease: {e}")), None);
            manifest(JobState::Failed, &None, Some(format!("budget lease: {e}")), resumed_now);
            return;
        }
    };

    let outcome = execute(shared, id, &spec, resume, &job_dir, &manifest);
    drop(lease);
    match outcome {
        Outcome::Done(report) => finish(shared, id, JobState::Done, None, report.map(|b| *b)),
        Outcome::Interrupted => finish(shared, id, JobState::Interrupted, None, None),
        Outcome::Failed(msg) => finish(shared, id, JobState::Failed, Some(msg), None),
    }
}

enum Outcome {
    Done(Option<Box<SortReport>>),
    Interrupted,
    Failed(String),
}

/// Writer closure persisting the job manifest at each state change
/// (state, staged input extent, error, resumed).
type ManifestWriter<'a> = dyn Fn(JobState, &Option<(Vec<u64>, u64)>, Option<String>, bool) + 'a;

fn finish(
    shared: &Arc<Shared>,
    id: u64,
    state: JobState,
    error: Option<String>,
    report: Option<SortReport>,
) {
    let mut core = shared.lock_core();
    if let Some(rec) = core.jobs.get_mut(&id) {
        rec.state = state;
        rec.error = error;
        rec.report = report;
        rec.latency = Some(rec.submitted.elapsed());
    }
}

/// The single-threaded portion: device stack, staging, sort (or resume),
/// output. Everything `Rc` lives and dies inside this call.
fn execute(
    shared: &Arc<Shared>,
    id: u64,
    spec: &JobSpec,
    resume: bool,
    job_dir: &std::path::Path,
    manifest: &ManifestWriter<'_>,
) -> Outcome {
    if spec.op == JobOp::Pq {
        // Not journaled: the script is deterministic, so an interrupted pq
        // job redoes the whole script from its input copy.
        return execute_pq(shared, id, spec, resume, job_dir, manifest);
    }
    let sortspec = match build_spec(spec.default_rule.as_deref(), &spec.keys) {
        Ok(sp) => sp,
        Err(e) => return Outcome::Failed(format!("ordering criterion: {e}")),
    };
    let device_path = job_dir.join("device.bin");
    let mut builder = DiskBuilder::new(spec.block_size).stripe(spec.stripe);
    builder = if resume { builder.open_file(&device_path) } else { builder.file(&device_path) };
    if !resume && spec.crash_after_ios.is_some() {
        // Created disarmed; armed only after staging so the crash point
        // counts I/Os of the sort proper, exactly like the CLI.
        builder = builder.crash(CrashPlan::Disarmed);
    }
    let DiskStack { disk, injectors: _injectors, crash } = match builder.build() {
        Ok(stack) => stack,
        Err(e) => return Outcome::Failed(e.to_string()),
    };

    // Stage (or reattach) the input.
    let manifest_of = Manifest::load(job_dir).ok().flatten();
    let (input, staged) = if resume {
        match manifest_of.as_ref().and_then(|m| m.staged.clone()) {
            Some((blocks, len)) => {
                let ext = Extent::from_raw(blocks.clone(), len);
                (ext, Some((blocks, len)))
            }
            None => return Outcome::Failed("resume without a staged input extent".into()),
        }
    } else {
        let bytes = match std::fs::read(job_dir.join("input.xml")) {
            Ok(b) => b,
            Err(e) => return Outcome::Failed(format!("cannot read input copy: {e}")),
        };
        match stage_input(&disk, &bytes) {
            Ok(ext) => {
                let staged = Some((ext.blocks().to_vec(), ext.len()));
                (ext, staged)
            }
            Err(e) => return Outcome::Failed(format!("staging: {e}")),
        }
    };
    // The staged extent is what a restart reattaches: persist it before the
    // sort can be interrupted.
    manifest(JobState::Running, &staged, None, resume);

    let opts = NexsortOptions {
        mem_frames: spec.mem_frames,
        threshold: spec.threshold,
        depth_limit: spec.depth_limit,
        degeneration: spec.degeneration,
        cache_frames: spec.cache_frames,
        cache_policy: spec.cache_policy,
        cache_write_mode: if spec.write_back {
            nexsort_extmem::WriteMode::Back
        } else {
            nexsort_extmem::WriteMode::Through
        },
        io_workers: spec.io_workers,
        prefetch_depth: spec.prefetch_depth,
        write_behind: spec.write_behind,
        checkpoint: true,
        journal_blocks: journal_blocks(spec.block_size),
        parity_group: spec.parity_group,
        ..Default::default()
    };
    if spec.op == JobOp::TopK {
        let topk = match nexsort_query::TopK::new(disk.clone(), opts, sortspec, spec.k) {
            Ok(t) => t,
            Err(e) => return Outcome::Failed(e.to_string()),
        };
        if let (Some(ctl), Some(after)) = (&crash, spec.crash_after_ios) {
            ctl.arm_after(ctl.ios() + after);
        }
        let result =
            if resume { topk.resume_xml_extent(&input) } else { topk.topk_xml_extent(&input) };
        let text = result.and_then(|doc| doc.to_text().map(|t| (t, doc.report)));
        let (text, report) = match text {
            Ok(pair) => pair,
            Err(XmlError::Ext(ExtError::SimulatedCrash { .. }))
                if crash.as_ref().is_some_and(|c| c.crashed()) =>
            {
                // Same durable state as a killed sort: the journal has the
                // last sealed phase, and the next Server::open resumes it.
                manifest(JobState::Interrupted, &staged, None, resume);
                return Outcome::Interrupted;
            }
            Err(e) => {
                let msg = e.to_string();
                manifest(JobState::Failed, &staged, Some(msg.clone()), resume);
                return Outcome::Failed(msg);
            }
        };
        let output = resolve_output(&shared.cfg, id, spec);
        if let Err(e) = std::fs::write(&output, &text) {
            let msg = format!("cannot write output {output:?}: {e}");
            manifest(JobState::Failed, &staged, Some(msg.clone()), resume);
            return Outcome::Failed(msg);
        }
        let _ = settle(&disk);
        manifest(JobState::Done, &staged, None, resume);
        let mut sort_report = report.sort;
        sort_report.resumed = sort_report.resumed || resume;
        return Outcome::Done(Some(Box::new(sort_report)));
    }

    let sorter = match Nexsort::new(disk.clone(), opts, sortspec) {
        Ok(s) => s,
        Err(e) => return Outcome::Failed(e.to_string()),
    };
    if let (Some(ctl), Some(after)) = (&crash, spec.crash_after_ios) {
        ctl.arm_after(ctl.ios() + after);
    }
    let result = if resume {
        sorter.try_resume_xml_extent(&input)
    } else {
        sorter.try_sort_xml_extent(&input)
    };
    let doc = match result {
        Ok(doc) => doc,
        Err(f)
            if matches!(f.error, XmlError::Ext(ExtError::SimulatedCrash { .. }))
                && crash.as_ref().is_some_and(|c| c.crashed()) =>
        {
            // The device froze mid-sort: the job's durable state (journal,
            // staged input, manifest) is exactly what a kill -9 leaves
            // behind. The next Server::open resumes it.
            manifest(JobState::Interrupted, &staged, None, resume);
            return Outcome::Interrupted;
        }
        Err(f) => {
            let msg = f.to_string();
            manifest(JobState::Failed, &staged, Some(msg.clone()), resume);
            return Outcome::Failed(msg);
        }
    };
    let xml = match doc.to_xml(spec.pretty) {
        Ok(xml) => xml,
        Err(XmlError::Ext(ExtError::SimulatedCrash { .. }))
            if crash.as_ref().is_some_and(|c| c.crashed()) =>
        {
            // Froze during the output phase: the sort itself is fully
            // journalled, so the restart replays it and redoes the output.
            manifest(JobState::Interrupted, &staged, None, resume);
            return Outcome::Interrupted;
        }
        Err(e) => {
            let msg = format!("output phase: {e}");
            manifest(JobState::Failed, &staged, Some(msg.clone()), resume);
            return Outcome::Failed(msg);
        }
    };
    let output = resolve_output(&shared.cfg, id, spec);
    if let Err(e) = std::fs::write(&output, &xml) {
        let msg = format!("cannot write output {output:?}: {e}");
        manifest(JobState::Failed, &staged, Some(msg.clone()), resume);
        return Outcome::Failed(msg);
    }
    // Settle the device image (flush write-back pages, drain write-behind)
    // so the on-disk file is consistent once the job is marked done.
    let _ = settle(&disk);
    manifest(JobState::Done, &staged, None, resume);
    let mut report = doc.report.clone();
    report.resumed = report.resumed || resume;
    Outcome::Done(Some(Box::new(report)))
}

/// Run a pq job: execute its `push KEY` / `pop` / `peek` script over an
/// [`ExtPq`](nexsort_query::ExtPq) on the job's device, recording one
/// output line per pop/peek. The script is deterministic, so this same
/// function is also the resume path -- an interrupted job redoes the
/// script from the input copy and lands on identical output.
fn execute_pq(
    shared: &Arc<Shared>,
    id: u64,
    spec: &JobSpec,
    redo: bool,
    job_dir: &std::path::Path,
    manifest: &ManifestWriter<'_>,
) -> Outcome {
    let device_path = job_dir.join("device.bin");
    let mut builder = DiskBuilder::new(spec.block_size).stripe(spec.stripe).file(&device_path);
    if !redo && spec.crash_after_ios.is_some() {
        // The crash hook models the daemon death; a post-restart redo runs
        // the script to completion on a clean device.
        builder = builder.crash(CrashPlan::Disarmed);
    }
    let DiskStack { disk, injectors: _injectors, crash } = match builder.build() {
        Ok(stack) => stack,
        Err(e) => return Outcome::Failed(e.to_string()),
    };
    let script = match std::fs::read_to_string(job_dir.join("input.xml")) {
        Ok(s) => s,
        Err(e) => return Outcome::Failed(format!("cannot read pq script copy: {e}")),
    };
    let mut pq = match nexsort_query::ExtPq::new(disk.clone(), spec.mem_frames, spec.parity_group) {
        Ok(q) => q,
        Err(e) => return Outcome::Failed(e.to_string()),
    };
    if let (Some(ctl), Some(after)) = (&crash, spec.crash_after_ios) {
        ctl.arm_after(ctl.ios() + after);
    }
    let mut out = String::new();
    for (ln, raw) in script.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let step = if let Some(key) = line.strip_prefix("push ") {
            pq.push(key.as_bytes())
        } else if line == "pop" {
            pq.pop().map(|popped| match popped {
                Some(k) => out.push_str(&format!("pop {}\n", String::from_utf8_lossy(&k))),
                None => out.push_str("pop -\n"),
            })
        } else if line == "peek" {
            pq.peek().map(|head| match head {
                Some(k) => out.push_str(&format!("peek {}\n", String::from_utf8_lossy(&k))),
                None => out.push_str("peek -\n"),
            })
        } else {
            return Outcome::Failed(format!(
                "pq script line {}: expected \"push KEY\", \"pop\", or \"peek\", got {line:?}",
                ln + 1
            ));
        };
        match step {
            Ok(()) => {}
            Err(XmlError::Ext(ExtError::SimulatedCrash { .. }))
                if crash.as_ref().is_some_and(|c| c.crashed()) =>
            {
                // The device froze mid-script; the next Server::open
                // re-queues the job, which redoes the script from scratch.
                manifest(JobState::Interrupted, &None, None, false);
                return Outcome::Interrupted;
            }
            Err(e) => {
                let msg = format!("pq script line {}: {e}", ln + 1);
                manifest(JobState::Failed, &None, Some(msg.clone()), false);
                return Outcome::Failed(msg);
            }
        }
    }
    out.push_str(&format!("len {}\n", pq.len()));
    let output = resolve_output(&shared.cfg, id, spec);
    if let Err(e) = std::fs::write(&output, &out) {
        let msg = format!("cannot write output {output:?}: {e}");
        manifest(JobState::Failed, &None, Some(msg.clone()), false);
        return Outcome::Failed(msg);
    }
    let _ = settle(&disk);
    manifest(JobState::Done, &None, None, false);
    Outcome::Done(None)
}

fn settle(disk: &Rc<Disk>) -> Result<(), ExtError> {
    disk.cache_flush_all()?;
    disk.io_barrier()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_xml() -> Vec<u8> {
        let mut doc = String::from("<catalog>");
        for i in (0..40).rev() {
            doc.push_str(&format!("<item id=\"{:03}\"><name>n{}</name></item>", i, (i * 7) % 40));
        }
        doc.push_str("</catalog>");
        doc.into_bytes()
    }

    /// What a one-shot in-memory sort of the same spec produces.
    fn direct_sort(xml: &[u8], spec: &JobSpec) -> Vec<u8> {
        let stack = DiskBuilder::new(spec.block_size).build().unwrap();
        let input = stage_input(&stack.disk, xml).unwrap();
        let sortspec = build_spec(spec.default_rule.as_deref(), &spec.keys).unwrap();
        let opts = NexsortOptions { mem_frames: spec.mem_frames, ..Default::default() };
        let sorter = Nexsort::new(stack.disk.clone(), opts, sortspec).unwrap();
        sorter.sort_xml_extent(&input).unwrap().to_xml(spec.pretty).unwrap()
    }

    #[test]
    fn journal_blocks_clamps_at_the_boundaries() {
        // Nominal: 32 blocks whenever the block can describe that many.
        assert_eq!(journal_blocks(284), 32, "(284-28)/8 = 32: smallest size at the cap");
        assert_eq!(journal_blocks(1 << 20), 32, "huge blocks stay capped at 32");
        assert_eq!(journal_blocks(usize::MAX), 32, "no overflow at the extreme");
        // Small blocks: the 28-byte header eats into the self-description.
        assert_eq!(journal_blocks(64), 4, "(64-28)/8 floors to 4");
        assert_eq!(journal_blocks(52), 3);
        assert_eq!(journal_blocks(44), 2);
        // Just above the header: the floor of 2 takes over.
        assert_eq!(journal_blocks(36), 2, "(36-28)/8 = 1 is clamped up to the floor");
        assert_eq!(journal_blocks(29), 2);
        // At or below the header size the subtraction saturates; still 2.
        assert_eq!(journal_blocks(28), 2);
        assert_eq!(journal_blocks(0), 2);
    }

    #[test]
    fn stats_surface_lock_recovery_counters() {
        let st = ServerStats::default();
        assert_eq!(st.lock_recoveries, 0);
        assert_eq!(st.locksan_violations, 0);
    }

    #[test]
    fn submit_runs_to_done_bit_identical() {
        let dir = std::env::temp_dir().join(format!("nxsrv-unit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let server = Server::start(ServerConfig::new(2, &dir)).unwrap();
        let xml = sample_xml();
        let spec = JobSpec {
            input: JobInput::Inline(xml.clone()),
            default_rule: Some("@id".into()),
            ..JobSpec::default()
        };
        let expected = direct_sort(&xml, &spec);
        let id = server.submit(spec).unwrap();
        let st = server.wait(id, Duration::from_secs(30)).unwrap();
        assert_eq!(st.state, JobState::Done, "error: {:?}", st.error);
        assert_eq!(server.fetch_output(id).unwrap(), expected);
        let report = st.report.expect("done job carries a report");
        assert!(report.n_records >= 40, "report covers the whole document");
        assert!(st.latency.is_some());
        // The manifest on disk agrees.
        let m = Manifest::load(&dir.join(format!("job-{id}"))).unwrap().unwrap();
        assert_eq!(m.state, JobState::Done);
        assert!(m.staged.is_some());
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_jobs_are_rejected_at_submit() {
        let dir = std::env::temp_dir().join(format!("nxsrv-unit-inv-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = ServerConfig::new(1, &dir);
        cfg.budget_frames = 64;
        let server = Server::start(cfg).unwrap();
        // Bad ordering criterion.
        let bad_rule = JobSpec {
            input: JobInput::Inline(b"<a/>".to_vec()),
            default_rule: Some("::".into()),
            ..JobSpec::default()
        };
        assert!(matches!(server.submit(bad_rule), Err(SubmitError::Invalid(_))));
        // Demands more frames than the global budget will ever have.
        let too_big = JobSpec {
            input: JobInput::Inline(b"<a/>".to_vec()),
            mem_frames: 1000,
            ..JobSpec::default()
        };
        assert!(matches!(server.submit(too_big), Err(SubmitError::Invalid(_))));
        // Missing input file.
        let no_input =
            JobSpec { input: JobInput::Path(dir.join("nope.xml")), ..JobSpec::default() };
        assert!(matches!(server.submit(no_input), Err(SubmitError::Invalid(_))));
        assert_eq!(server.stats().submitted, 0);
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
