//! Wire protocol: newline-delimited JSON over a Unix or TCP socket.
//!
//! # Grammar
//!
//! One request per line, one response per line, UTF-8, no framing beyond
//! the newline. Every request is an object with an `"op"` field:
//!
//! ```text
//! {"op":"ping"}
//! {"op":"submit","spec":{...}}          -> {"ok":true,"id":3}
//! {"op":"status","id":3}                -> {"ok":true,"job":{...}}
//! {"op":"wait","id":3,"timeout_ms":N}   -> {"ok":true,"job":{...}}
//! {"op":"fetch","id":3}                 -> {"ok":true,"output":"<xml.."}
//! {"op":"fetch_chunk","id":3,
//!        "offset":0,"len":65536}        -> {"ok":true,"chunk":"..",
//!                                           "offset":0,"total":N,"eof":false}
//! {"op":"cancel","id":3}                -> {"ok":true,"canceled":true}
//! {"op":"list"}                         -> {"ok":true,"jobs":[...]}
//! {"op":"stats"}                        -> {"ok":true,"stats":{...}}
//! {"op":"shutdown"}                     -> {"ok":true}
//! {"op":"shutdown","mode":"drain",
//!        "timeout_ms":N}                -> {"ok":true,"drained":true}
//! ```
//!
//! Failures are `{"ok":false,"error":"..."}`; a full queue (or a draining
//! server) additionally sets `"busy":true` so clients can distinguish
//! backpressure (retry later) from rejection (fix the job).
//!
//! Addresses are `unix:/path/to.sock` or `host:port`.
//!
//! # Hardened edge
//!
//! The daemon side reads through a bounded framer with two deadlines
//! ([`ServeOptions`]): an *idle* timeout between requests and a tighter
//! *request* timeout once a line has started arriving, so a stalled or
//! malicious peer can neither pin a connection thread forever nor OOM the
//! daemon with an unbounded line. The client side gets
//! [`request_with_retry`]: seeded-backoff retries ([`NetRetryPolicy`])
//! that auto-attach an idempotency token to `submit`, so a retry after a
//! dropped ACK adopts the already-journaled job instead of sorting twice.
//!
//! Both sides take an optional [`NetFaultPlan`] that injects disconnects,
//! stalls, torn frames, and byte corruption at chosen exchange indices --
//! the network mirror of `FaultyDevice`, driven by the same seeded
//! determinism, and the substrate of the `net_chaos` sweep.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use nexsort_extmem::locksan::TrackedMutex;
use nexsort_extmem::{NetFaultKind, NetFaultPlan, NetFaultState, NetRetryPolicy};

use crate::job::{spec_from_value, spec_to_value};
use crate::json::{b, n, obj, parse, s, Value};
use crate::server::{JobStatus, Server, ServerStats, SubmitError};

/// A parsed listen/connect address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Addr {
    /// `unix:/path/to.sock`
    Unix(PathBuf),
    /// `host:port`
    Tcp(String),
}

/// Parse `unix:/path` or `host:port`.
pub fn parse_addr(addr: &str) -> Result<Addr, String> {
    if let Some(path) = addr.strip_prefix("unix:") {
        if path.is_empty() {
            return Err("unix: address needs a socket path".into());
        }
        return Ok(Addr::Unix(PathBuf::from(path)));
    }
    match addr.rsplit_once(':') {
        Some((host, port)) if !host.is_empty() && port.parse::<u16>().is_ok() => {
            Ok(Addr::Tcp(addr.to_string()))
        }
        _ => Err(format!("bad address {addr:?}: expected unix:/path or host:port")),
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl std::io::Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(st) => st.read(buf),
            Stream::Tcp(st) => st.read(buf),
        }
    }
}

impl std::io::Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(st) => st.write(buf),
            Stream::Tcp(st) => st.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Unix(st) => st.flush(),
            Stream::Tcp(st) => st.flush(),
        }
    }
}

impl Stream {
    fn try_clone(&self) -> std::io::Result<Stream> {
        Ok(match self {
            Stream::Unix(st) => Stream::Unix(st.try_clone()?),
            Stream::Tcp(st) => Stream::Tcp(st.try_clone()?),
        })
    }

    /// `None` or zero disables the deadline.
    fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        let timeout = timeout.filter(|t| !t.is_zero());
        match self {
            Stream::Unix(st) => st.set_read_timeout(timeout),
            Stream::Tcp(st) => st.set_read_timeout(timeout),
        }
    }

    /// `None` or zero disables the deadline.
    fn set_write_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        let timeout = timeout.filter(|t| !t.is_zero());
        match self {
            Stream::Unix(st) => st.set_write_timeout(timeout),
            Stream::Tcp(st) => st.set_write_timeout(timeout),
        }
    }
}

/// Knobs of the daemon's socket edge. All timeouts take `0` as "disabled".
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Read/write deadline once an exchange is in progress (a request line
    /// has started arriving, or a response is being written).
    pub request_timeout_ms: u64,
    /// How long a connection may sit idle between requests before the
    /// daemon closes it.
    pub idle_timeout_ms: u64,
    /// Longest accepted request line; longer requests get a structured
    /// `"line too long"` error and the connection closes (the framer
    /// cannot resynchronize past an oversized line).
    pub max_line_bytes: usize,
    /// Default deadline of a `{"op":"shutdown","mode":"drain"}` without an
    /// explicit `timeout_ms`.
    pub drain_timeout_ms: u64,
    /// Inject network faults into responses (chaos testing).
    pub fault_plan: Option<NetFaultPlan>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            request_timeout_ms: 30_000,
            idle_timeout_ms: 300_000,
            max_line_bytes: 16 << 20,
            drain_timeout_ms: 30_000,
            fault_plan: None,
        }
    }
}

/// Serve `server` on `addr` with default [`ServeOptions`] until a client
/// sends `{"op":"shutdown"}`. Blocks the calling thread; on return the
/// listener is closed, running jobs have finished, and queued jobs are
/// parked in their manifests.
pub fn serve(server: Server, addr: &str) -> Result<(), String> {
    serve_with(server, addr, ServeOptions::default())
}

/// [`serve`] with explicit socket-edge options.
pub fn serve_with(server: Server, addr: &str, opts: ServeOptions) -> Result<(), String> {
    let parsed = parse_addr(addr)?;
    let listener = match &parsed {
        Addr::Unix(path) => {
            // A dead daemon leaves its socket file behind; reclaim it.
            let _ = std::fs::remove_file(path);
            Listener::Unix(UnixListener::bind(path).map_err(|e| format!("bind {path:?}: {e}"))?)
        }
        Addr::Tcp(hostport) => {
            Listener::Tcp(TcpListener::bind(hostport).map_err(|e| format!("bind {hostport}: {e}"))?)
        }
    };
    match &listener {
        Listener::Unix(l) => l.set_nonblocking(true),
        Listener::Tcp(l) => l.set_nonblocking(true),
    }
    .map_err(|e| format!("set_nonblocking: {e}"))?;

    let server = Arc::new(server);
    let opts = Arc::new(opts);
    // The injector is shared by every connection thread so exchange indices
    // are global and deterministic in arrival order. It is a leaf lock:
    // taken briefly per response, never while any other lock is held.
    let faults = opts
        .fault_plan
        .clone()
        .map(|plan| Arc::new(TrackedMutex::new("server.netfault", NetFaultState::new(plan))));
    let stop = Arc::new(AtomicBool::new(false));
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        let accepted = match &listener {
            Listener::Unix(l) => l.accept().map(|(st, _)| Stream::Unix(st)),
            Listener::Tcp(l) => l.accept().map(|(st, _)| Stream::Tcp(st)),
        };
        match accepted {
            Ok(stream) => {
                let server = server.clone();
                let stop = stop.clone();
                let opts = opts.clone();
                let faults = faults.clone();
                conns.push(std::thread::spawn(move || {
                    handle_conn(&server, &stop, stream, &opts, faults.as_deref());
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                conns.retain(|h| !h.is_finished());
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(format!("accept: {e}")),
        }
    }
    for handle in conns {
        let _ = handle.join();
    }
    if let Addr::Unix(path) = &parsed {
        let _ = std::fs::remove_file(path);
    }
    // Last reference: drops the Server, which joins the worker pool.
    drop(server);
    Ok(())
}

/// One framed request line, or why there isn't one.
enum Frame {
    /// A complete line (without the newline).
    Line(String),
    /// The peer closed the connection (possibly mid-line: a torn frame is
    /// indistinguishable from a close and is dropped the same way).
    Eof,
    /// A read deadline fired (idle between requests, or stalled mid-line).
    TimedOut,
    /// The line exceeded the cap before a newline arrived.
    TooLong,
    /// Transport error.
    Err,
}

/// Read one newline-terminated request with a length cap and two-phase
/// deadline: `idle` while waiting for the first byte of a line, `request`
/// once a line is in progress. Never allocates more than `max` + one
/// buffer's worth of bytes.
fn read_frame(
    reader: &mut BufReader<Stream>,
    max: usize,
    idle: Duration,
    request: Duration,
) -> Frame {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let deadline = if line.is_empty() { idle } else { request };
        if reader.buffer().is_empty() && reader.get_ref().set_read_timeout(Some(deadline)).is_err()
        {
            return Frame::Err;
        }
        let buf = match reader.fill_buf() {
            Ok([]) => return Frame::Eof,
            Ok(buf) => buf,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Frame::TimedOut;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Frame::Err,
        };
        match buf.iter().position(|&c| c == b'\n') {
            Some(pos) => {
                if line.len() + pos > max {
                    return Frame::TooLong;
                }
                line.extend_from_slice(&buf[..pos]);
                reader.consume(pos + 1);
                return Frame::Line(String::from_utf8_lossy(&line).into_owned());
            }
            None => {
                if line.len() + buf.len() > max {
                    return Frame::TooLong;
                }
                line.extend_from_slice(buf);
                let taken = buf.len();
                reader.consume(taken);
            }
        }
    }
}

fn handle_conn(
    server: &Server,
    stop: &AtomicBool,
    stream: Stream,
    opts: &ServeOptions,
    faults: Option<&TrackedMutex<NetFaultState>>,
) {
    let net = server.net_stats();
    net.conns_accepted.fetch_add(1, Ordering::Relaxed);
    let Ok(writer) = stream.try_clone() else { return };
    let _ = writer.set_write_timeout(Some(Duration::from_millis(opts.request_timeout_ms)));
    let mut writer = std::io::BufWriter::new(writer);
    let mut reader = BufReader::new(stream);
    let idle = Duration::from_millis(opts.idle_timeout_ms);
    let request = Duration::from_millis(opts.request_timeout_ms);
    loop {
        let line = match read_frame(&mut reader, opts.max_line_bytes, idle, request) {
            Frame::Line(line) => line,
            Frame::Eof | Frame::Err => return,
            Frame::TimedOut => {
                net.conns_timed_out.fetch_add(1, Ordering::Relaxed);
                return;
            }
            Frame::TooLong => {
                net.lines_too_long.fetch_add(1, Ordering::Relaxed);
                let err = err_value(
                    &format!("line too long: request exceeds the {}-byte cap", opts.max_line_bytes),
                    false,
                );
                let mut text = err.to_json();
                text.push('\n');
                let _ = writer.write_all(text.as_bytes()).and_then(|()| writer.flush());
                return; // Cannot resynchronize past an unread oversized line.
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        net.requests.fetch_add(1, Ordering::Relaxed);
        let (resp, shutdown) = match parse(&line) {
            Ok(req) => dispatch(server, &req, opts),
            Err(e) => (err_value(&format!("bad request: {e}"), false), false),
        };
        let mut text = resp.to_json();
        text.push('\n');
        // Chaos hook: the injector decides this exchange's fate. A faulted
        // response never carries the stop flag -- a dropped or corrupted
        // shutdown ACK means the client retries, and the *delivered* ACK
        // stops the daemon, exactly like any other retried request.
        let fault = faults.map(|f| f.lock().next_exchange().1).unwrap_or(None);
        let delivered = match fault {
            None => true,
            Some(kind) => {
                net.conns_faulted.fetch_add(1, Ordering::Relaxed);
                match kind {
                    NetFaultKind::Disconnect => return,
                    NetFaultKind::TornFrame => {
                        let half = text.len() / 2;
                        let _ = writer.write_all(&text.as_bytes()[..half]);
                        let _ = writer.flush();
                        return;
                    }
                    NetFaultKind::Stall => {
                        let ms = faults.map(|f| f.lock().stall_millis()).unwrap_or(0);
                        std::thread::sleep(Duration::from_millis(ms));
                        true
                    }
                    NetFaultKind::Corrupt => {
                        // Responses start with '{'; breaking that byte makes
                        // the corruption always *detectable* by the peer's
                        // JSON parser instead of silently altering a value.
                        let mut bytes = text.into_bytes();
                        bytes[0] ^= 0x04;
                        text = String::from_utf8_lossy(&bytes).into_owned();
                        false
                    }
                }
            }
        };
        if writer.write_all(text.as_bytes()).is_err() || writer.flush().is_err() {
            return;
        }
        if shutdown && delivered {
            stop.store(true, Ordering::SeqCst);
            return;
        }
    }
}

fn err_value(msg: &str, busy: bool) -> Value {
    let mut fields = vec![("ok", b(false)), ("error", s(msg))];
    if busy {
        fields.push(("busy", b(true)));
    }
    obj(fields)
}

fn req_id(req: &Value) -> Result<u64, Value> {
    req.get("id").and_then(Value::as_u64).ok_or_else(|| err_value("missing numeric \"id\"", false))
}

/// Map one request to one response; the bool asks the accept loop to stop.
fn dispatch(server: &Server, req: &Value, opts: &ServeOptions) -> (Value, bool) {
    let op = req.get("op").and_then(Value::as_str).unwrap_or("");
    match op {
        "ping" => (obj(vec![("ok", b(true))]), false),
        "submit" => {
            let spec = match req.get("spec") {
                Some(v) => spec_from_value(v).and_then(|mut spec| {
                    // The input rides next to the spec fields: "xml" carries
                    // the document inline; "input" names a daemon-visible path.
                    if let Some(xml) = v.get("xml").and_then(Value::as_str) {
                        spec.input = crate::job::JobInput::Inline(xml.as_bytes().to_vec());
                        Ok(spec)
                    } else if let Some(path) = v.get("input").and_then(Value::as_str) {
                        spec.input = crate::job::JobInput::Path(PathBuf::from(path));
                        Ok(spec)
                    } else {
                        Err("spec needs \"xml\" (inline document) or \"input\" (path)".into())
                    }
                }),
                None => Err("missing \"spec\"".into()),
            };
            match spec {
                Ok(spec) => match server.submit(spec) {
                    Ok(id) => (obj(vec![("ok", b(true)), ("id", n(id))]), false),
                    Err(SubmitError::Busy(msg)) => (err_value(&msg, true), false),
                    Err(SubmitError::Invalid(msg)) => (err_value(&msg, false), false),
                },
                Err(e) => (err_value(&e, false), false),
            }
        }
        "status" => match req_id(req) {
            Ok(id) => match server.status(id) {
                Some(st) => (obj(vec![("ok", b(true)), ("job", status_value(&st))]), false),
                None => (err_value(&format!("no such job {id}"), false), false),
            },
            Err(resp) => (resp, false),
        },
        "wait" => match req_id(req) {
            Ok(id) => {
                let timeout = req.get("timeout_ms").and_then(Value::as_u64).unwrap_or(60_000);
                match server.wait(id, Duration::from_millis(timeout)) {
                    Some(st) => (obj(vec![("ok", b(true)), ("job", status_value(&st))]), false),
                    None => (err_value(&format!("no such job {id}"), false), false),
                }
            }
            Err(resp) => (resp, false),
        },
        "fetch" => match req_id(req) {
            Ok(id) => match server.fetch_output(id) {
                Ok(bytes) => (
                    obj(vec![
                        ("ok", b(true)),
                        ("output", s(String::from_utf8_lossy(&bytes).into_owned())),
                    ]),
                    false,
                ),
                Err(e) => (err_value(&e, false), false),
            },
            Err(resp) => (resp, false),
        },
        "fetch_chunk" => match req_id(req) {
            Ok(id) => {
                let offset = req.get("offset").and_then(Value::as_u64).unwrap_or(0);
                // Clamp so a chunk always makes progress (at least one full
                // UTF-8 character) and bounds the response line.
                let len =
                    req.get("len").and_then(Value::as_u64).unwrap_or(64 * 1024).clamp(16, 1 << 20);
                match server.fetch_output_chunk(id, offset, len) {
                    Ok((chunk, total, eof)) => (
                        obj(vec![
                            ("ok", b(true)),
                            ("chunk", s(String::from_utf8_lossy(&chunk).into_owned())),
                            ("offset", n(offset)),
                            ("total", n(total)),
                            ("eof", b(eof)),
                        ]),
                        false,
                    ),
                    Err(e) => (err_value(&e, false), false),
                }
            }
            Err(resp) => (resp, false),
        },
        "cancel" => match req_id(req) {
            Ok(id) => (obj(vec![("ok", b(true)), ("canceled", b(server.cancel(id)))]), false),
            Err(resp) => (resp, false),
        },
        "list" => {
            let jobs = server.list().iter().map(status_value).collect();
            (obj(vec![("ok", b(true)), ("jobs", Value::Arr(jobs))]), false)
        }
        "stats" => (obj(vec![("ok", b(true)), ("stats", stats_value(&server.stats()))]), false),
        "shutdown" => match req.get("mode").and_then(Value::as_str).unwrap_or("now") {
            "now" => (obj(vec![("ok", b(true))]), true),
            "drain" => {
                let timeout =
                    req.get("timeout_ms").and_then(Value::as_u64).unwrap_or(opts.drain_timeout_ms);
                // Blocks this connection thread only; other connections
                // keep being served (and see lame-duck busy on submit).
                let drained = server.drain(Duration::from_millis(timeout));
                (obj(vec![("ok", b(true)), ("drained", b(drained))]), true)
            }
            other => (
                err_value(&format!("unknown shutdown mode {other:?} (expected now, drain)"), false),
                false,
            ),
        },
        other => (err_value(&format!("unknown op {other:?}"), false), false),
    }
}

fn status_value(st: &JobStatus) -> Value {
    let mut fields = vec![
        ("id", n(st.id)),
        ("state", s(st.state.name())),
        ("output", s(st.output.display().to_string())),
        ("resumed", b(st.resumed)),
    ];
    if let Some(e) = &st.error {
        fields.push(("error", s(e)));
    }
    if let Some(latency) = st.latency {
        fields.push(("latency_ms", Value::Num(latency.as_secs_f64() * 1000.0)));
    }
    if let Some(report) = &st.report {
        fields.push((
            "report",
            obj(vec![
                ("records", n(report.n_records)),
                ("input_bytes", n(report.input_bytes)),
                ("logical_reads", n(report.io.total_reads())),
                ("logical_writes", n(report.io.total_writes())),
                ("physical_total", n(report.io.grand_total_physical())),
                ("external_sorts", n(report.external_sorts as u64)),
                ("resumed", b(report.resumed)),
                ("committed_passes_skipped", n(report.committed_passes_skipped as u64)),
                ("degraded", b(report.degraded)),
                ("repairs", n(report.repairs)),
                ("quarantined_blocks", n(report.quarantined_blocks)),
                ("elapsed_ms", Value::Num(report.elapsed.as_secs_f64() * 1000.0)),
            ]),
        ));
    }
    obj(fields)
}

fn stats_value(st: &ServerStats) -> Value {
    obj(vec![
        ("workers", n(st.workers as u64)),
        ("queue_depth", n(st.queue_depth as u64)),
        ("queued", n(st.queued as u64)),
        ("running", n(st.running as u64)),
        ("done", n(st.done as u64)),
        ("failed", n(st.failed as u64)),
        ("canceled", n(st.canceled as u64)),
        ("interrupted", n(st.interrupted as u64)),
        ("submitted", n(st.submitted)),
        ("resumed", n(st.resumed)),
        ("budget_total", n(st.budget_total as u64)),
        ("budget_used", n(st.budget_used as u64)),
        ("budget_high_water", n(st.budget_high_water as u64)),
        ("budget_waiters", n(st.budget_waiters as u64)),
        ("lock_recoveries", n(st.lock_recoveries)),
        ("locksan_violations", n(st.locksan_violations)),
        ("draining", b(st.draining)),
        ("drains", n(st.drains)),
        ("duplicate_submits", n(st.duplicate_submits)),
        ("conns_accepted", n(st.conns_accepted)),
        ("conns_timed_out", n(st.conns_timed_out)),
        ("conns_faulted", n(st.conns_faulted)),
        ("requests", n(st.requests)),
        ("lines_too_long", n(st.lines_too_long)),
        ("client_retries", n(st.client_retries)),
    ])
}

/// Client side: send one request line to `addr`, read one response line.
/// One shot, no deadline, no retry -- the building block [`request_with_retry`]
/// hardens.
pub fn request(addr: &str, req: &Value) -> Result<Value, String> {
    request_once(addr, &req.to_json(), None)
}

/// One request/response exchange. `timeout` bounds the response read (and
/// the request write); `None` blocks indefinitely.
fn request_once(addr: &str, req_json: &str, timeout: Option<Duration>) -> Result<Value, String> {
    let mut stream = connect(addr)?;
    stream.set_read_timeout(timeout).map_err(|e| format!("deadline on {addr}: {e}"))?;
    stream.set_write_timeout(timeout).map_err(|e| format!("deadline on {addr}: {e}"))?;
    let mut text = String::with_capacity(req_json.len() + 1);
    text.push_str(req_json);
    text.push('\n');
    stream
        .write_all(text.as_bytes())
        .and_then(|()| stream.flush())
        .map_err(|e| format!("send to {addr}: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| format!("read from {addr}: {e}"))?;
    if line.trim().is_empty() {
        return Err(format!("server at {addr} closed the connection"));
    }
    parse(line.trim())
}

/// Retries performed by this process's [`request_with_retry`] /
/// [`connect_with_retry`] calls, surfaced in [`ServerStats`] so in-process
/// chaos tests can assert the retry path ran.
static CLIENT_RETRIES: AtomicU64 = AtomicU64::new(0);

/// Monotone counter feeding auto-generated idempotency tokens.
static NEXT_IDEM: AtomicU64 = AtomicU64::new(0);

pub(crate) fn client_retries() -> u64 {
    CLIENT_RETRIES.load(Ordering::Relaxed)
}

/// Client-side knobs of [`request_with_retry`].
#[derive(Debug, Clone, Default)]
pub struct ClientOptions {
    /// Retry schedule; [`NetRetryPolicy::none`] makes the call one-shot.
    pub retry: NetRetryPolicy,
    /// Per-attempt read/write deadline; `None` blocks indefinitely. Keep
    /// it above any server-side `wait` timeout the request carries.
    pub attempt_timeout_ms: Option<u64>,
}

impl ClientOptions {
    /// `n` retries with `base_ms` seeded backoff and no attempt deadline.
    pub fn retries(n: u32, base_ms: u64, seed: u64) -> Self {
        ClientOptions { retry: NetRetryPolicy::retries(n, base_ms, seed), attempt_timeout_ms: None }
    }
}

/// True when a response means "same request may succeed later": transport
/// trouble, a busy (backpressure / draining) server, or a `bad request`
/// reply to a request this client knows it sent well-formed (i.e. the
/// request was corrupted in flight).
fn retryable(resp: &Result<Value, String>) -> bool {
    match resp {
        Err(_) => true,
        Ok(v) => {
            if v.get("ok").and_then(Value::as_bool) == Some(true) {
                return false;
            }
            if v.get("busy").and_then(Value::as_bool) == Some(true) {
                return true;
            }
            v.get("error").and_then(Value::as_str).is_some_and(|e| e.starts_with("bad request"))
        }
    }
}

/// Client side: [`request`] hardened with seeded-backoff retries.
///
/// An attempt is retried on connect/send/read errors, a torn or corrupt
/// response, a busy reply (queue backpressure or a draining server), and a
/// `bad request` reply (the request this client sent was well-formed, so
/// the server must have read a corrupted line). A non-busy rejection is
/// returned immediately -- retrying cannot fix an invalid job.
///
/// A `submit` request going out with retries enabled and no client-chosen
/// token gets an auto-generated idempotency token first, so the attempts
/// are exactly-once end to end: a retry after a dropped ACK adopts the
/// journaled job instead of double-sorting.
pub fn request_with_retry(addr: &str, req: &Value, opts: &ClientOptions) -> Result<Value, String> {
    request_with_retry_injected(addr, req, opts, None)
}

/// [`request_with_retry`] with a client-side fault injector: each attempt
/// consumes one exchange of `faults`, corrupting or cutting the *request*
/// before it reaches the server (the mirror of the server-side response
/// injection). Chaos tests drive both sides from seeded plans.
pub fn request_with_retry_injected(
    addr: &str,
    req: &Value,
    opts: &ClientOptions,
    faults: Option<&TrackedMutex<NetFaultState>>,
) -> Result<Value, String> {
    let req = with_auto_idem(req, opts);
    let req_json = req.to_json();
    let timeout = opts.attempt_timeout_ms.map(Duration::from_millis);
    let mut last: Result<Value, String> = Err("no attempts made".into());
    for attempt in 1..=opts.retry.max_attempts.max(1) {
        if attempt > 1 {
            CLIENT_RETRIES.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(opts.retry.delay_before_ms(attempt - 1)));
        }
        let fault = faults.map(|f| f.lock().next_exchange().1).unwrap_or(None);
        last = match fault {
            None => request_once(addr, &req_json, timeout),
            Some(kind) => request_once_faulty(addr, &req_json, timeout, kind, faults),
        };
        if !retryable(&last) {
            return last;
        }
    }
    last
}

/// Give a retried `submit` an idempotency token if the caller didn't: the
/// token is what turns "at least once" into "exactly once".
fn with_auto_idem(req: &Value, opts: &ClientOptions) -> Value {
    if opts.retry.max_attempts <= 1 || req.get("op").and_then(Value::as_str) != Some("submit") {
        return req.clone();
    }
    let Some(Value::Obj(spec_fields)) = req.get("spec") else { return req.clone() };
    if req.get("spec").and_then(|sp| sp.get("idem")).and_then(Value::as_str).is_some() {
        return req.clone();
    }
    let token =
        format!("auto-{}-{}", std::process::id(), NEXT_IDEM.fetch_add(1, Ordering::Relaxed));
    // The spec may already carry an explicit `"idem": null`; replace it
    // rather than appending a shadowed duplicate key.
    let mut spec_fields = spec_fields.clone();
    match spec_fields.iter_mut().find(|(k, _)| k == "idem") {
        Some((_, v)) => *v = s(token),
        None => spec_fields.push(("idem".into(), s(token))),
    }
    let Value::Obj(fields) = req else { return req.clone() };
    let fields = fields
        .iter()
        .map(|(k, v)| {
            (k.clone(), if k == "spec" { Value::Obj(spec_fields.clone()) } else { v.clone() })
        })
        .collect();
    Value::Obj(fields)
}

/// One exchange with a client-side fault applied to the outgoing request.
fn request_once_faulty(
    addr: &str,
    req_json: &str,
    timeout: Option<Duration>,
    kind: NetFaultKind,
    faults: Option<&TrackedMutex<NetFaultState>>,
) -> Result<Value, String> {
    match kind {
        NetFaultKind::Stall => {
            let ms = faults.map(|f| f.lock().stall_millis()).unwrap_or(0);
            std::thread::sleep(Duration::from_millis(ms));
            request_once(addr, req_json, timeout)
        }
        NetFaultKind::Corrupt => {
            // Break the leading '{' so the server *detects* the corruption
            // and replies "bad request" instead of acting on a wrong value.
            let mut bytes = req_json.as_bytes().to_vec();
            bytes[0] ^= 0x04;
            request_once(addr, &String::from_utf8_lossy(&bytes), timeout)
        }
        NetFaultKind::Disconnect => {
            let _ = connect(addr)?;
            Err(format!("injected disconnect before sending to {addr}"))
        }
        NetFaultKind::TornFrame => {
            let mut stream = connect(addr)?;
            let mut text = String::with_capacity(req_json.len() + 1);
            text.push_str(req_json);
            text.push('\n');
            let half = text.len() / 2;
            let _ = stream.write_all(&text.as_bytes()[..half]).and_then(|()| stream.flush());
            drop(stream);
            Err(format!("injected torn frame while sending to {addr}"))
        }
    }
}

/// Wait for a daemon to answer at `addr`: one ping round trip per attempt,
/// with the policy's seeded backoff between attempts. Replaces hand-rolled
/// "ping until it answers" startup polling in tests and the CLI.
pub fn connect_with_retry(addr: &str, policy: &NetRetryPolicy) -> Result<(), String> {
    let ping = obj(vec![("op", s("ping"))]).to_json();
    let mut last = String::from("no attempts made");
    for attempt in 1..=policy.max_attempts.max(1) {
        if attempt > 1 {
            CLIENT_RETRIES.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(policy.delay_before_ms(attempt - 1)));
        }
        match request_once(addr, &ping, Some(Duration::from_secs(10))) {
            Ok(v) if v.get("ok").and_then(Value::as_bool) == Some(true) => return Ok(()),
            Ok(v) => last = format!("unexpected ping reply: {}", v.to_json()),
            Err(e) => last = e,
        }
    }
    Err(format!("daemon at {addr} never came up: {last}"))
}

/// Client side: a convenience wrapper building the request from a spec.
/// Inline input is shipped in the request; a path input is sent as a path
/// for the daemon to read (it must be visible to the daemon).
pub fn request_submit(addr: &str, spec: &crate::job::JobSpec) -> Result<Value, String> {
    request(addr, &submit_value(spec))
}

/// Build the `submit` request object for `spec` (shared by the one-shot
/// and retrying clients).
pub fn submit_value(spec: &crate::job::JobSpec) -> Value {
    let mut fields = match spec_to_value(spec) {
        Value::Obj(fields) => fields,
        _ => unreachable!("spec_to_value returns an object"),
    };
    match &spec.input {
        crate::job::JobInput::Inline(bytes) => {
            fields.push(("xml".into(), s(String::from_utf8_lossy(bytes).into_owned())))
        }
        crate::job::JobInput::Path(path) => {
            fields.push(("input".into(), s(path.display().to_string())))
        }
    }
    obj(vec![("op", s("submit")), ("spec", Value::Obj(fields))])
}

/// Client side: stream a done job's output in bounded chunks via
/// `fetch_chunk`, reassembling the full text. Keeps each response line
/// (and the server's per-request buffer) at roughly `chunk_len` bytes no
/// matter how large the output is.
pub fn request_fetch_chunked(addr: &str, id: u64, chunk_len: u64) -> Result<String, String> {
    let mut out = String::new();
    let mut offset = 0u64;
    loop {
        let resp = request(
            addr,
            &obj(vec![
                ("op", s("fetch_chunk")),
                ("id", n(id)),
                ("offset", n(offset)),
                ("len", n(chunk_len)),
            ]),
        )?;
        if resp.get("ok").and_then(Value::as_bool) != Some(true) {
            let msg = resp.get("error").and_then(Value::as_str).unwrap_or("fetch_chunk failed");
            return Err(msg.to_string());
        }
        let chunk = resp.get("chunk").and_then(Value::as_str).unwrap_or("");
        let eof = resp.get("eof").and_then(Value::as_bool).unwrap_or(true);
        out.push_str(chunk);
        offset += chunk.len() as u64;
        if eof {
            return Ok(out);
        }
        if chunk.is_empty() {
            return Err(format!("fetch_chunk stalled at offset {offset} without eof"));
        }
    }
}

fn connect(addr: &str) -> Result<Stream, String> {
    match parse_addr(addr)? {
        Addr::Unix(path) => UnixStream::connect(&path)
            .map(Stream::Unix)
            .map_err(|e| format!("connect {path:?}: {e}")),
        Addr::Tcp(hostport) => TcpStream::connect(&hostport)
            .map(Stream::Tcp)
            .map_err(|e| format!("connect {hostport}: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_parse() {
        assert_eq!(parse_addr("unix:/tmp/x.sock"), Ok(Addr::Unix(PathBuf::from("/tmp/x.sock"))));
        assert_eq!(parse_addr("127.0.0.1:7070"), Ok(Addr::Tcp("127.0.0.1:7070".into())));
        assert!(parse_addr("unix:").is_err());
        assert!(parse_addr("nonsense").is_err());
        assert!(parse_addr("host:notaport").is_err());
        // Rejection messages say what shape was expected.
        let err = parse_addr("nonsense").unwrap_err();
        assert!(err.contains("expected unix:/path or host:port"), "{err}");
        assert!(err.contains("nonsense"), "message names the bad input: {err}");
        let err = parse_addr("unix:").unwrap_err();
        assert!(err.contains("socket path"), "{err}");
        let err = parse_addr(":9999").unwrap_err();
        assert!(err.contains("expected unix:"), "empty host rejected: {err}");
    }

    fn start_daemon(
        tag: &str,
        opts: ServeOptions,
    ) -> (String, std::path::PathBuf, std::thread::JoinHandle<Result<(), String>>) {
        use crate::server::{Server, ServerConfig};
        let dir = std::env::temp_dir().join(format!("nxsrv-net-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let sock = format!("unix:{}", dir.join("srv.sock").display());
        let server = Server::start(ServerConfig::new(2, dir.join("jobs"))).unwrap();
        let addr = sock.clone();
        let daemon = std::thread::spawn(move || serve_with(server, &addr, opts));
        connect_with_retry(&sock, &NetRetryPolicy::retries(300, 10, 7)).unwrap();
        (sock, dir, daemon)
    }

    #[test]
    fn protocol_round_trips_over_a_unix_socket() {
        use crate::job::{JobInput, JobSpec};

        let (sock, dir, daemon) = start_daemon("rt", ServeOptions::default());

        let spec = JobSpec {
            input: JobInput::Inline(b"<r><x k=\"2\"/><x k=\"1\"/></r>".to_vec()),
            default_rule: Some("@k".into()),
            ..JobSpec::default()
        };
        let resp = request_submit(&sock, &spec).unwrap();
        assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true), "{}", resp.to_json());
        let id = resp.get("id").and_then(Value::as_u64).unwrap();

        let resp =
            request(&sock, &obj(vec![("op", s("wait")), ("id", n(id)), ("timeout_ms", n(30_000))]))
                .unwrap();
        let job = resp.get("job").expect("wait returns the job");
        assert_eq!(job.get("state").and_then(Value::as_str), Some("done"), "{}", resp.to_json());

        let resp = request(&sock, &obj(vec![("op", s("fetch")), ("id", n(id))])).unwrap();
        let xml = resp.get("output").and_then(Value::as_str).unwrap();
        assert!(xml.contains("<x k=\"1\"></x><x k=\"2\"></x>"), "sorted by @k: {xml}");

        // Chunked fetch with a tiny chunk reassembles the same bytes.
        let chunked = request_fetch_chunked(&sock, id, 16).unwrap();
        assert_eq!(chunked, xml, "chunked fetch must equal one-shot fetch");
        let resp = request(
            &sock,
            &obj(vec![("op", s("fetch_chunk")), ("id", n(id)), ("offset", n(4)), ("len", n(16))]),
        )
        .unwrap();
        assert_eq!(resp.get("eof").and_then(Value::as_bool), Some(false));
        assert_eq!(resp.get("chunk").and_then(Value::as_str).map(str::len), Some(16));

        let resp = request(&sock, &obj(vec![("op", s("stats"))])).unwrap();
        let stats = resp.get("stats").unwrap();
        assert_eq!(stats.get("done").and_then(Value::as_u64), Some(1));
        assert!(stats.get("conns_accepted").and_then(Value::as_u64).unwrap() >= 1);
        assert_eq!(stats.get("draining").and_then(Value::as_bool), Some(false));

        // Unknown ops and malformed lines error without killing the server.
        let resp = request(&sock, &obj(vec![("op", s("frobnicate"))])).unwrap();
        assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(false));

        let resp = request(&sock, &obj(vec![("op", s("shutdown"))])).unwrap();
        assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));
        daemon.join().unwrap().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn protocol_edges_error_without_closing_the_connection() {
        use crate::job::{JobInput, JobSpec};

        let (sock, dir, daemon) = start_daemon("edge", ServeOptions::default());

        // One connection, several exchanges: a malformed line gets a
        // structured error and the *same* connection keeps working.
        let mut stream = connect(&sock).unwrap();
        let mut send = |line: &str| -> Value {
            stream.write_all(line.as_bytes()).unwrap();
            stream.write_all(b"\n").unwrap();
            stream.flush().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut resp = String::new();
            reader.read_line(&mut resp).unwrap();
            parse(resp.trim()).unwrap()
        };
        let resp = send("{not json");
        assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(false));
        assert!(resp.get("error").and_then(Value::as_str).unwrap().contains("bad request"));
        let resp = send("{\"op\":\"ping\"}");
        assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true), "conn survived");
        drop(stream);

        // wait with timeout_ms:0 returns the current state immediately.
        let spec = JobSpec {
            input: JobInput::Inline(b"<r><x k=\"1\"/></r>".to_vec()),
            default_rule: Some("@k".into()),
            ..JobSpec::default()
        };
        let id = request_submit(&sock, &spec).unwrap().get("id").and_then(Value::as_u64).unwrap();
        let resp =
            request(&sock, &obj(vec![("op", s("wait")), ("id", n(id)), ("timeout_ms", n(0))]))
                .unwrap();
        assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true), "{}", resp.to_json());
        assert!(resp.get("job").is_some(), "timeout 0 still reports the job");

        // Let it finish, then fetch_chunk past EOF: empty chunk, eof true.
        request(&sock, &obj(vec![("op", s("wait")), ("id", n(id)), ("timeout_ms", n(30_000))]))
            .unwrap();
        let total = request(
            &sock,
            &obj(vec![("op", s("fetch_chunk")), ("id", n(id)), ("offset", n(0)), ("len", n(64))]),
        )
        .unwrap()
        .get("total")
        .and_then(Value::as_u64)
        .unwrap();
        let resp = request(
            &sock,
            &obj(vec![
                ("op", s("fetch_chunk")),
                ("id", n(id)),
                ("offset", n(total + 1000)),
                ("len", n(64)),
            ]),
        )
        .unwrap();
        assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true), "{}", resp.to_json());
        assert_eq!(resp.get("chunk").and_then(Value::as_str), Some(""));
        assert_eq!(resp.get("eof").and_then(Value::as_bool), Some(true));

        // An oversized request line is rejected with a structured error.
        let (tiny_sock, tiny_dir, tiny_daemon) =
            start_daemon("tiny", ServeOptions { max_line_bytes: 128, ..ServeOptions::default() });
        let mut stream = connect(&tiny_sock).unwrap();
        let huge = format!("{{\"op\":\"ping\",\"pad\":\"{}\"}}\n", "x".repeat(4096));
        stream.write_all(huge.as_bytes()).unwrap();
        stream.flush().unwrap();
        let mut reader = BufReader::new(stream);
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        let resp = parse(resp.trim()).unwrap();
        assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(false));
        assert!(
            resp.get("error").and_then(Value::as_str).unwrap().contains("line too long"),
            "{}",
            resp.to_json()
        );
        let resp = request(&tiny_sock, &obj(vec![("op", s("stats"))])).unwrap();
        assert_eq!(
            resp.get("stats").and_then(|st| st.get("lines_too_long")).and_then(Value::as_u64),
            Some(1)
        );
        request(&tiny_sock, &obj(vec![("op", s("shutdown"))])).unwrap();
        tiny_daemon.join().unwrap().unwrap();
        let _ = std::fs::remove_dir_all(&tiny_dir);

        // Unknown shutdown modes are rejected; the daemon stays up.
        let resp = request(&sock, &obj(vec![("op", s("shutdown")), ("mode", s("later"))])).unwrap();
        assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(false));
        request(&sock, &obj(vec![("op", s("shutdown"))])).unwrap();
        daemon.join().unwrap().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn idle_deadline_reaps_silent_connections() {
        let opts =
            ServeOptions { idle_timeout_ms: 60, request_timeout_ms: 60, ..ServeOptions::default() };
        let (sock, dir, daemon) = start_daemon("idle", opts);
        // Open a connection and send nothing: the daemon must reap it.
        let stream = connect(&sock).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let stats = request(&sock, &obj(vec![("op", s("stats"))])).unwrap();
            let timed_out = stats
                .get("stats")
                .and_then(|st| st.get("conns_timed_out"))
                .and_then(Value::as_u64)
                .unwrap();
            if timed_out >= 1 {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "idle connection never reaped");
            std::thread::sleep(Duration::from_millis(10));
        }
        drop(stream);
        request(&sock, &obj(vec![("op", s("shutdown"))])).unwrap();
        daemon.join().unwrap().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retrying_client_survives_scripted_response_faults() {
        use crate::job::{JobInput, JobSpec};

        // Every fault kind takes a turn corrupting a response; the
        // retrying client must converge on exactly one job.
        let plan = NetFaultPlan::new(5)
            .at_exchange(0, NetFaultKind::Disconnect)
            .at_exchange(1, NetFaultKind::Corrupt)
            .at_exchange(2, NetFaultKind::TornFrame)
            .stall_ms(5);
        let opts = ServeOptions { fault_plan: Some(plan), ..ServeOptions::default() };
        let (sock, dir, daemon) = start_daemon("flt", opts);

        let spec = JobSpec {
            input: JobInput::Inline(b"<r><x k=\"2\"/><x k=\"1\"/></r>".to_vec()),
            default_rule: Some("@k".into()),
            ..JobSpec::default()
        };
        let copts = ClientOptions::retries(8, 5, 11);
        // The startup ping already burned some exchanges; submit twice with
        // the same explicit token to prove dedup across faulted ACKs.
        let mut req = submit_value(&JobSpec { idem: Some("edge-test".into()), ..spec });
        let first = request_with_retry(&sock, &req, &copts).unwrap();
        assert_eq!(first.get("ok").and_then(Value::as_bool), Some(true), "{}", first.to_json());
        let id = first.get("id").and_then(Value::as_u64).unwrap();
        let again = request_with_retry(&sock, &req, &copts).unwrap();
        assert_eq!(again.get("id").and_then(Value::as_u64), Some(id), "token adopts same job");

        let resp = request_with_retry(
            &sock,
            &obj(vec![("op", s("wait")), ("id", n(id)), ("timeout_ms", n(30_000))]),
            &copts,
        )
        .unwrap();
        assert_eq!(
            resp.get("job").and_then(|j| j.get("state")).and_then(Value::as_str),
            Some("done"),
            "{}",
            resp.to_json()
        );

        let stats = request_with_retry(&sock, &obj(vec![("op", s("stats"))]), &copts).unwrap();
        let stats = stats.get("stats").unwrap();
        assert!(stats.get("conns_faulted").and_then(Value::as_u64).unwrap() >= 3);
        assert!(stats.get("duplicate_submits").and_then(Value::as_u64).unwrap() >= 1);
        assert!(stats.get("client_retries").and_then(Value::as_u64).unwrap() >= 1);

        // Auto-idempotency: with retries on and no token, the client adds
        // one, so even an unscripted resubmit of the same *object* stays
        // a distinct job from a fresh submit of the same spec.
        req = submit_value(&JobSpec {
            input: JobInput::Inline(b"<r><y k=\"1\"/></r>".to_vec()),
            default_rule: Some("@k".into()),
            ..JobSpec::default()
        });
        let sent = with_auto_idem(&req, &copts);
        assert!(
            sent.get("spec").and_then(|sp| sp.get("idem")).and_then(Value::as_str).is_some(),
            "retrying submit gains a token: {}",
            sent.to_json()
        );

        let resp = request_with_retry(&sock, &obj(vec![("op", s("shutdown"))]), &copts).unwrap();
        assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));
        daemon.join().unwrap().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drain_shutdown_parks_queued_jobs_and_reports() {
        use crate::job::{JobInput, JobSpec};
        use crate::server::{Server, ServerConfig};

        let (sock, dir, daemon) = start_daemon("drain", ServeOptions::default());
        let spec = JobSpec {
            input: JobInput::Inline(b"<r><x k=\"2\"/><x k=\"1\"/></r>".to_vec()),
            default_rule: Some("@k".into()),
            ..JobSpec::default()
        };
        let id = request_submit(&sock, &spec).unwrap().get("id").and_then(Value::as_u64).unwrap();
        request(&sock, &obj(vec![("op", s("wait")), ("id", n(id)), ("timeout_ms", n(30_000))]))
            .unwrap();

        let resp = request(
            &sock,
            &obj(vec![("op", s("shutdown")), ("mode", s("drain")), ("timeout_ms", n(10_000))]),
        )
        .unwrap();
        assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true), "{}", resp.to_json());
        assert_eq!(resp.get("drained").and_then(Value::as_bool), Some(true));
        daemon.join().unwrap().unwrap();

        // The drained directory reopens with the finished job intact.
        let server = Server::open(ServerConfig::new(1, dir.join("jobs"))).unwrap();
        let st = server.status(id).expect("drained job survived the restart");
        assert_eq!(st.state, crate::job::JobState::Done);
        assert_eq!(server.stats().drains, 0, "a fresh open starts undrained");
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
