//! Wire protocol: newline-delimited JSON over a Unix or TCP socket.
//!
//! # Grammar
//!
//! One request per line, one response per line, UTF-8, no framing beyond
//! the newline. Every request is an object with an `"op"` field:
//!
//! ```text
//! {"op":"ping"}
//! {"op":"submit","spec":{...}}          -> {"ok":true,"id":3}
//! {"op":"status","id":3}                -> {"ok":true,"job":{...}}
//! {"op":"wait","id":3,"timeout_ms":N}   -> {"ok":true,"job":{...}}
//! {"op":"fetch","id":3}                 -> {"ok":true,"output":"<xml.."}
//! {"op":"fetch_chunk","id":3,
//!        "offset":0,"len":65536}        -> {"ok":true,"chunk":"..",
//!                                           "offset":0,"total":N,"eof":false}
//! {"op":"cancel","id":3}                -> {"ok":true,"canceled":true}
//! {"op":"list"}                         -> {"ok":true,"jobs":[...]}
//! {"op":"stats"}                        -> {"ok":true,"stats":{...}}
//! {"op":"shutdown"}                     -> {"ok":true}
//! ```
//!
//! Failures are `{"ok":false,"error":"..."}`; a full queue additionally
//! sets `"busy":true` so clients can distinguish backpressure (retry
//! later) from rejection (fix the job).
//!
//! Addresses are `unix:/path/to.sock` or `host:port`.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::job::{spec_from_value, spec_to_value};
use crate::json::{b, n, obj, parse, s, Value};
use crate::server::{JobStatus, Server, ServerStats, SubmitError};

/// A parsed listen/connect address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Addr {
    /// `unix:/path/to.sock`
    Unix(PathBuf),
    /// `host:port`
    Tcp(String),
}

/// Parse `unix:/path` or `host:port`.
pub fn parse_addr(addr: &str) -> Result<Addr, String> {
    if let Some(path) = addr.strip_prefix("unix:") {
        if path.is_empty() {
            return Err("unix: address needs a socket path".into());
        }
        return Ok(Addr::Unix(PathBuf::from(path)));
    }
    match addr.rsplit_once(':') {
        Some((host, port)) if !host.is_empty() && port.parse::<u16>().is_ok() => {
            Ok(Addr::Tcp(addr.to_string()))
        }
        _ => Err(format!("bad address {addr:?}: expected unix:/path or host:port")),
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl std::io::Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(st) => st.read(buf),
            Stream::Tcp(st) => st.read(buf),
        }
    }
}

impl std::io::Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(st) => st.write(buf),
            Stream::Tcp(st) => st.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Unix(st) => st.flush(),
            Stream::Tcp(st) => st.flush(),
        }
    }
}

impl Stream {
    fn try_clone(&self) -> std::io::Result<Stream> {
        Ok(match self {
            Stream::Unix(st) => Stream::Unix(st.try_clone()?),
            Stream::Tcp(st) => Stream::Tcp(st.try_clone()?),
        })
    }
}

/// Serve `server` on `addr` until a client sends `{"op":"shutdown"}`.
/// Blocks the calling thread; on return the listener is closed, running
/// jobs have finished, and queued jobs are parked in their manifests.
pub fn serve(server: Server, addr: &str) -> Result<(), String> {
    let parsed = parse_addr(addr)?;
    let listener = match &parsed {
        Addr::Unix(path) => {
            // A dead daemon leaves its socket file behind; reclaim it.
            let _ = std::fs::remove_file(path);
            Listener::Unix(UnixListener::bind(path).map_err(|e| format!("bind {path:?}: {e}"))?)
        }
        Addr::Tcp(hostport) => {
            Listener::Tcp(TcpListener::bind(hostport).map_err(|e| format!("bind {hostport}: {e}"))?)
        }
    };
    match &listener {
        Listener::Unix(l) => l.set_nonblocking(true),
        Listener::Tcp(l) => l.set_nonblocking(true),
    }
    .map_err(|e| format!("set_nonblocking: {e}"))?;

    let server = Arc::new(server);
    let stop = Arc::new(AtomicBool::new(false));
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        let accepted = match &listener {
            Listener::Unix(l) => l.accept().map(|(st, _)| Stream::Unix(st)),
            Listener::Tcp(l) => l.accept().map(|(st, _)| Stream::Tcp(st)),
        };
        match accepted {
            Ok(stream) => {
                let server = server.clone();
                let stop = stop.clone();
                conns.push(std::thread::spawn(move || {
                    handle_conn(&server, &stop, stream);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                conns.retain(|h| !h.is_finished());
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(format!("accept: {e}")),
        }
    }
    for handle in conns {
        let _ = handle.join();
    }
    if let Addr::Unix(path) = &parsed {
        let _ = std::fs::remove_file(path);
    }
    // Last reference: drops the Server, which joins the worker pool.
    drop(server);
    Ok(())
}

fn handle_conn(server: &Server, stop: &AtomicBool, stream: Stream) {
    let Ok(writer) = stream.try_clone() else { return };
    let mut writer = std::io::BufWriter::new(writer);
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let (resp, shutdown) = match parse(&line) {
            Ok(req) => dispatch(server, &req),
            Err(e) => (err_value(&format!("bad request: {e}"), false), false),
        };
        let mut text = resp.to_json();
        text.push('\n');
        if writer.write_all(text.as_bytes()).is_err() || writer.flush().is_err() {
            break;
        }
        if shutdown {
            stop.store(true, Ordering::SeqCst);
            break;
        }
    }
}

fn err_value(msg: &str, busy: bool) -> Value {
    let mut fields = vec![("ok", b(false)), ("error", s(msg))];
    if busy {
        fields.push(("busy", b(true)));
    }
    obj(fields)
}

fn req_id(req: &Value) -> Result<u64, Value> {
    req.get("id").and_then(Value::as_u64).ok_or_else(|| err_value("missing numeric \"id\"", false))
}

/// Map one request to one response; the bool asks the accept loop to stop.
fn dispatch(server: &Server, req: &Value) -> (Value, bool) {
    let op = req.get("op").and_then(Value::as_str).unwrap_or("");
    match op {
        "ping" => (obj(vec![("ok", b(true))]), false),
        "submit" => {
            let spec = match req.get("spec") {
                Some(v) => spec_from_value(v).and_then(|mut spec| {
                    // The input rides next to the spec fields: "xml" carries
                    // the document inline; "input" names a daemon-visible path.
                    if let Some(xml) = v.get("xml").and_then(Value::as_str) {
                        spec.input = crate::job::JobInput::Inline(xml.as_bytes().to_vec());
                        Ok(spec)
                    } else if let Some(path) = v.get("input").and_then(Value::as_str) {
                        spec.input = crate::job::JobInput::Path(PathBuf::from(path));
                        Ok(spec)
                    } else {
                        Err("spec needs \"xml\" (inline document) or \"input\" (path)".into())
                    }
                }),
                None => Err("missing \"spec\"".into()),
            };
            match spec {
                Ok(spec) => match server.submit(spec) {
                    Ok(id) => (obj(vec![("ok", b(true)), ("id", n(id))]), false),
                    Err(SubmitError::Busy(msg)) => (err_value(&msg, true), false),
                    Err(SubmitError::Invalid(msg)) => (err_value(&msg, false), false),
                },
                Err(e) => (err_value(&e, false), false),
            }
        }
        "status" => match req_id(req) {
            Ok(id) => match server.status(id) {
                Some(st) => (obj(vec![("ok", b(true)), ("job", status_value(&st))]), false),
                None => (err_value(&format!("no such job {id}"), false), false),
            },
            Err(resp) => (resp, false),
        },
        "wait" => match req_id(req) {
            Ok(id) => {
                let timeout = req.get("timeout_ms").and_then(Value::as_u64).unwrap_or(60_000);
                match server.wait(id, Duration::from_millis(timeout)) {
                    Some(st) => (obj(vec![("ok", b(true)), ("job", status_value(&st))]), false),
                    None => (err_value(&format!("no such job {id}"), false), false),
                }
            }
            Err(resp) => (resp, false),
        },
        "fetch" => match req_id(req) {
            Ok(id) => match server.fetch_output(id) {
                Ok(bytes) => (
                    obj(vec![
                        ("ok", b(true)),
                        ("output", s(String::from_utf8_lossy(&bytes).into_owned())),
                    ]),
                    false,
                ),
                Err(e) => (err_value(&e, false), false),
            },
            Err(resp) => (resp, false),
        },
        "fetch_chunk" => match req_id(req) {
            Ok(id) => {
                let offset = req.get("offset").and_then(Value::as_u64).unwrap_or(0);
                // Clamp so a chunk always makes progress (at least one full
                // UTF-8 character) and bounds the response line.
                let len =
                    req.get("len").and_then(Value::as_u64).unwrap_or(64 * 1024).clamp(16, 1 << 20);
                match server.fetch_output_chunk(id, offset, len) {
                    Ok((chunk, total, eof)) => (
                        obj(vec![
                            ("ok", b(true)),
                            ("chunk", s(String::from_utf8_lossy(&chunk).into_owned())),
                            ("offset", n(offset)),
                            ("total", n(total)),
                            ("eof", b(eof)),
                        ]),
                        false,
                    ),
                    Err(e) => (err_value(&e, false), false),
                }
            }
            Err(resp) => (resp, false),
        },
        "cancel" => match req_id(req) {
            Ok(id) => (obj(vec![("ok", b(true)), ("canceled", b(server.cancel(id)))]), false),
            Err(resp) => (resp, false),
        },
        "list" => {
            let jobs = server.list().iter().map(status_value).collect();
            (obj(vec![("ok", b(true)), ("jobs", Value::Arr(jobs))]), false)
        }
        "stats" => (obj(vec![("ok", b(true)), ("stats", stats_value(&server.stats()))]), false),
        "shutdown" => (obj(vec![("ok", b(true))]), true),
        other => (err_value(&format!("unknown op {other:?}"), false), false),
    }
}

fn status_value(st: &JobStatus) -> Value {
    let mut fields = vec![
        ("id", n(st.id)),
        ("state", s(st.state.name())),
        ("output", s(st.output.display().to_string())),
        ("resumed", b(st.resumed)),
    ];
    if let Some(e) = &st.error {
        fields.push(("error", s(e)));
    }
    if let Some(latency) = st.latency {
        fields.push(("latency_ms", Value::Num(latency.as_secs_f64() * 1000.0)));
    }
    if let Some(report) = &st.report {
        fields.push((
            "report",
            obj(vec![
                ("records", n(report.n_records)),
                ("input_bytes", n(report.input_bytes)),
                ("logical_reads", n(report.io.total_reads())),
                ("logical_writes", n(report.io.total_writes())),
                ("physical_total", n(report.io.grand_total_physical())),
                ("external_sorts", n(report.external_sorts as u64)),
                ("resumed", b(report.resumed)),
                ("committed_passes_skipped", n(report.committed_passes_skipped as u64)),
                ("degraded", b(report.degraded)),
                ("repairs", n(report.repairs)),
                ("quarantined_blocks", n(report.quarantined_blocks)),
                ("elapsed_ms", Value::Num(report.elapsed.as_secs_f64() * 1000.0)),
            ]),
        ));
    }
    obj(fields)
}

fn stats_value(st: &ServerStats) -> Value {
    obj(vec![
        ("workers", n(st.workers as u64)),
        ("queue_depth", n(st.queue_depth as u64)),
        ("queued", n(st.queued as u64)),
        ("running", n(st.running as u64)),
        ("done", n(st.done as u64)),
        ("failed", n(st.failed as u64)),
        ("canceled", n(st.canceled as u64)),
        ("interrupted", n(st.interrupted as u64)),
        ("submitted", n(st.submitted)),
        ("resumed", n(st.resumed)),
        ("budget_total", n(st.budget_total as u64)),
        ("budget_used", n(st.budget_used as u64)),
        ("budget_high_water", n(st.budget_high_water as u64)),
        ("budget_waiters", n(st.budget_waiters as u64)),
        ("lock_recoveries", n(st.lock_recoveries)),
        ("locksan_violations", n(st.locksan_violations)),
    ])
}

/// Client side: send one request line to `addr`, read one response line.
pub fn request(addr: &str, req: &Value) -> Result<Value, String> {
    let mut stream = connect(addr)?;
    let mut text = req.to_json();
    text.push('\n');
    stream
        .write_all(text.as_bytes())
        .and_then(|()| stream.flush())
        .map_err(|e| format!("send to {addr}: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| format!("read from {addr}: {e}"))?;
    if line.trim().is_empty() {
        return Err(format!("server at {addr} closed the connection"));
    }
    parse(line.trim())
}

/// Client side: a convenience wrapper building the request from a spec.
/// Inline input is shipped in the request; a path input is sent as a path
/// for the daemon to read (it must be visible to the daemon).
pub fn request_submit(addr: &str, spec: &crate::job::JobSpec) -> Result<Value, String> {
    let mut fields = match spec_to_value(spec) {
        Value::Obj(fields) => fields,
        _ => unreachable!("spec_to_value returns an object"),
    };
    match &spec.input {
        crate::job::JobInput::Inline(bytes) => {
            fields.push(("xml".into(), s(String::from_utf8_lossy(bytes).into_owned())))
        }
        crate::job::JobInput::Path(path) => {
            fields.push(("input".into(), s(path.display().to_string())))
        }
    }
    request(addr, &obj(vec![("op", s("submit")), ("spec", Value::Obj(fields))]))
}

/// Client side: stream a done job's output in bounded chunks via
/// `fetch_chunk`, reassembling the full text. Keeps each response line
/// (and the server's per-request buffer) at roughly `chunk_len` bytes no
/// matter how large the output is.
pub fn request_fetch_chunked(addr: &str, id: u64, chunk_len: u64) -> Result<String, String> {
    let mut out = String::new();
    let mut offset = 0u64;
    loop {
        let resp = request(
            addr,
            &obj(vec![
                ("op", s("fetch_chunk")),
                ("id", n(id)),
                ("offset", n(offset)),
                ("len", n(chunk_len)),
            ]),
        )?;
        if resp.get("ok").and_then(Value::as_bool) != Some(true) {
            let msg = resp.get("error").and_then(Value::as_str).unwrap_or("fetch_chunk failed");
            return Err(msg.to_string());
        }
        let chunk = resp.get("chunk").and_then(Value::as_str).unwrap_or("");
        let eof = resp.get("eof").and_then(Value::as_bool).unwrap_or(true);
        out.push_str(chunk);
        offset += chunk.len() as u64;
        if eof {
            return Ok(out);
        }
        if chunk.is_empty() {
            return Err(format!("fetch_chunk stalled at offset {offset} without eof"));
        }
    }
}

fn connect(addr: &str) -> Result<Stream, String> {
    match parse_addr(addr)? {
        Addr::Unix(path) => UnixStream::connect(&path)
            .map(Stream::Unix)
            .map_err(|e| format!("connect {path:?}: {e}")),
        Addr::Tcp(hostport) => TcpStream::connect(&hostport)
            .map(Stream::Tcp)
            .map_err(|e| format!("connect {hostport}: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_parse() {
        assert_eq!(parse_addr("unix:/tmp/x.sock"), Ok(Addr::Unix(PathBuf::from("/tmp/x.sock"))));
        assert_eq!(parse_addr("127.0.0.1:7070"), Ok(Addr::Tcp("127.0.0.1:7070".into())));
        assert!(parse_addr("unix:").is_err());
        assert!(parse_addr("nonsense").is_err());
        assert!(parse_addr("host:notaport").is_err());
    }

    #[test]
    fn protocol_round_trips_over_a_unix_socket() {
        use crate::job::{JobInput, JobSpec};
        use crate::server::{Server, ServerConfig};

        let dir = std::env::temp_dir().join(format!("nxsrv-net-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let sock = format!("unix:{}", dir.join("srv.sock").display());
        let server = Server::start(ServerConfig::new(2, dir.join("jobs"))).unwrap();
        let addr = sock.clone();
        let daemon = std::thread::spawn(move || serve(server, &addr));

        // The daemon needs a beat to bind; ping until it answers.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            match request(&sock, &obj(vec![("op", s("ping"))])) {
                Ok(v) if v.get("ok").and_then(Value::as_bool) == Some(true) => break,
                _ if std::time::Instant::now() > deadline => panic!("daemon never came up"),
                _ => std::thread::sleep(Duration::from_millis(10)),
            }
        }

        let spec = JobSpec {
            input: JobInput::Inline(b"<r><x k=\"2\"/><x k=\"1\"/></r>".to_vec()),
            default_rule: Some("@k".into()),
            ..JobSpec::default()
        };
        let resp = request_submit(&sock, &spec).unwrap();
        assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true), "{}", resp.to_json());
        let id = resp.get("id").and_then(Value::as_u64).unwrap();

        let resp =
            request(&sock, &obj(vec![("op", s("wait")), ("id", n(id)), ("timeout_ms", n(30_000))]))
                .unwrap();
        let job = resp.get("job").expect("wait returns the job");
        assert_eq!(job.get("state").and_then(Value::as_str), Some("done"), "{}", resp.to_json());

        let resp = request(&sock, &obj(vec![("op", s("fetch")), ("id", n(id))])).unwrap();
        let xml = resp.get("output").and_then(Value::as_str).unwrap();
        assert!(xml.contains("<x k=\"1\"></x><x k=\"2\"></x>"), "sorted by @k: {xml}");

        // Chunked fetch with a tiny chunk reassembles the same bytes.
        let chunked = request_fetch_chunked(&sock, id, 16).unwrap();
        assert_eq!(chunked, xml, "chunked fetch must equal one-shot fetch");
        let resp = request(
            &sock,
            &obj(vec![("op", s("fetch_chunk")), ("id", n(id)), ("offset", n(4)), ("len", n(16))]),
        )
        .unwrap();
        assert_eq!(resp.get("eof").and_then(Value::as_bool), Some(false));
        assert_eq!(resp.get("chunk").and_then(Value::as_str).map(str::len), Some(16));

        let resp = request(&sock, &obj(vec![("op", s("stats"))])).unwrap();
        let stats = resp.get("stats").unwrap();
        assert_eq!(stats.get("done").and_then(Value::as_u64), Some(1));

        // Unknown ops and malformed lines error without killing the server.
        let resp = request(&sock, &obj(vec![("op", s("frobnicate"))])).unwrap();
        assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(false));

        let resp = request(&sock, &obj(vec![("op", s("shutdown"))])).unwrap();
        assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));
        daemon.join().unwrap().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
