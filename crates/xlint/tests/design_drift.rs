//! DESIGN.md's "Enforced invariants" table is generated from
//! `xlint::RULES` (`cargo run -p xlint -- --rules-table`). This test fails
//! when the two drift — add a rule, or reword one, and the doc must be
//! regenerated in the same PR.

use std::path::Path;

#[test]
fn design_md_rule_table_matches_the_registry() {
    let design = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")).join("DESIGN.md");
    let text = std::fs::read_to_string(&design).expect("read DESIGN.md");

    let doc_rows: Vec<&str> =
        text.lines().filter(|l| l.starts_with("| **R")).map(str::trim_end).collect();

    let expected: Vec<String> = xlint::RULES
        .iter()
        .map(|(id, title, summary)| format!("| **{id}** {title} | {summary} |"))
        .collect();

    assert_eq!(
        doc_rows.len(),
        expected.len(),
        "DESIGN.md carries {} rule rows, the registry has {} rules; \
         regenerate with `cargo run -p xlint -- --rules-table`",
        doc_rows.len(),
        expected.len()
    );
    for (doc, exp) in doc_rows.iter().zip(&expected) {
        assert_eq!(
            doc, exp,
            "DESIGN.md rule row drifted from xlint::RULES; \
             regenerate with `cargo run -p xlint -- --rules-table`"
        );
    }
}
