//! Property tests for the masking lexer: banned tokens hidden inside
//! strings, raw strings, or comments must never be misclassified as code,
//! and masking must preserve the file's shape (length and line structure).

use proptest::prelude::*;
use xlint::lexer::{mask, tokens};

proptest! {
    /// A banned call inside a plain string literal never survives masking,
    /// while the code around the literal does.
    #[test]
    fn string_contents_are_never_code(pad in "[a-z 0-9]{0,20}") {
        let src = format!("fn f() {{\n    let s = \"{pad} x.unwrap() {pad}\";\n    real();\n}}\n");
        let m = mask(&src);
        prop_assert!(!m.code.contains("unwrap"), "leaked from string: {}", m.code);
        prop_assert!(m.code.contains("real();"));
        prop_assert!(m.code.contains("let s ="));
    }

    /// Same for raw strings — including contents with quotes and hashes the
    /// plain-string scanner would trip over.
    #[test]
    fn raw_string_contents_are_never_code(pad in "[a-z\" ]{0,20}") {
        let src = format!("let s = r#\"{pad} panic!(\"x\") {pad}\"#;\nafter();\n");
        let m = mask(&src);
        prop_assert!(!m.code.contains("panic"), "leaked from raw string: {}", m.code);
        prop_assert!(m.code.contains("after();"));
    }

    /// Same for block comments, nested or not.
    #[test]
    fn block_comment_contents_are_never_code(pad in "[a-z \n]{0,20}") {
        let src = format!("a();\n/* {pad} x.expect(\"no\") {pad} */\nb();\n");
        let m = mask(&src);
        prop_assert!(!m.code.contains("expect"), "leaked from comment: {}", m.code);
        prop_assert!(m.code.contains("a();"));
        prop_assert!(m.code.contains("b();"));
    }

    /// Masking arbitrary soup (unbalanced quotes, stray slashes, hash runs)
    /// never panics, never changes the length, and keeps every newline in
    /// place — the invariant that makes reported line numbers trustworthy.
    #[test]
    fn masking_preserves_shape(soup in "[a-z\"'/*#\\\\ \n{}()!._-]{0,80}") {
        let m = mask(&soup);
        prop_assert_eq!(m.code.len(), soup.len());
        let nl = |s: &str| {
            s.bytes().enumerate().filter(|&(_, b)| b == b'\n').map(|(i, _)| i).collect::<Vec<_>>()
        };
        prop_assert_eq!(nl(&m.code), nl(&soup));
    }

    /// Identifiers outside any literal always survive masking and tokenize
    /// back out unchanged.
    #[test]
    fn code_outside_literals_is_kept(name in "[a-z]{1,12}") {
        let src = format!("fn {name}() {{ {name}_inner(); }} // trailing {name}\n");
        let m = mask(&src);
        let toks = tokens(&m.code);
        prop_assert!(toks.iter().any(|t| t.text == name), "lost ident in {}", m.code);
        prop_assert!(
            toks.iter().any(|t| t.text == format!("{name}_inner")),
            "lost call in {}",
            m.code
        );
        // The trailing comment's copy is gone: the ident appears exactly twice.
        let n = toks.iter().filter(|t| t.text.contains(name.as_str())).count();
        prop_assert_eq!(n, 2);
    }
}
