//! Golden fixtures: for every rule, a minimal source that fires it exactly
//! once, a clean twin, and the same source silenced by its pragma.

use xlint::{check_manifest, check_rust_file, check_sources};

fn rules_fired(rel: &str, src: &str) -> Vec<String> {
    check_rust_file(rel, src).into_iter().map(|f| f.rule.to_string()).collect()
}

#[test]
fn r1_block_device_outside_the_device_layer() {
    let bad = r#"
fn attach(dev: &dyn BlockDevice) -> u64 {
    dev_blocks(dev)
}
"#;
    assert_eq!(rules_fired("crates/merge/src/fake.rs", bad), ["R1"]);

    // The device layer itself may name the trait.
    assert_eq!(rules_fired("crates/extmem/src/sched.rs", bad), Vec::<String>::new());

    let silenced = r#"
// xlint::allow(R1): fixture exception.
fn attach(dev: &dyn BlockDevice) -> u64 {
    dev_blocks(dev)
}
"#;
    assert_eq!(rules_fired("crates/merge/src/fake.rs", silenced), Vec::<String>::new());
}

#[test]
fn r2_panicking_calls_in_the_substrate() {
    let bad = r#"
fn take(x: Option<u8>) -> u8 {
    x.unwrap()
}
"#;
    assert_eq!(rules_fired("crates/extmem/src/fake.rs", bad), ["R2"]);

    // Outside extmem/core the rule does not apply.
    assert_eq!(rules_fired("crates/datagen/src/fake.rs", bad), Vec::<String>::new());

    // Test modules are exempt.
    let in_tests = r#"
fn prod(x: Option<u8>) -> Option<u8> {
    x
}
#[cfg(test)]
mod tests {
    fn t() {
        prod(Some(1)).unwrap();
        panic!("fine in tests");
    }
}
"#;
    assert_eq!(rules_fired("crates/extmem/src/fake.rs", in_tests), Vec::<String>::new());

    let silenced = r#"
fn take(x: Option<u8>) -> u8 {
    x.unwrap() // xlint::allow(R2)
}
"#;
    assert_eq!(rules_fired("crates/extmem/src/fake.rs", silenced), Vec::<String>::new());
}

#[test]
fn r3_counter_parity_in_stats() {
    // `writes` is wired through reset/snapshot/since but missing from the
    // Display impl: exactly one finding.
    let bad = r#"
struct Counters {
    reads: u64,
    writes: u64,
}
impl IoStats {
    fn reset(&self) {
        self.c.reads = 0;
        self.c.writes = 0;
    }
    fn snapshot(&self) -> IoSnapshot {
        IoSnapshot { total_reads: self.c.reads, total_writes: self.c.writes }
    }
}
impl IoSnapshot {
    fn since(&self, o: &IoSnapshot) -> IoSnapshot {
        IoSnapshot { total_reads: self.reads - o.reads, total_writes: self.writes - o.writes }
    }
}
impl fmt::Display for IoSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter) -> fmt::Result {
        rend(f, self.total_reads)
    }
}
"#;
    assert_eq!(rules_fired("crates/extmem/src/stats.rs", bad), ["R3"]);

    let good =
        bad.replace("rend(f, self.total_reads)", "rend(f, self.total_reads, self.total_writes)");
    assert_eq!(rules_fired("crates/extmem/src/stats.rs", &good), Vec::<String>::new());

    // Same parity gap, acknowledged with a pragma on the field.
    let silenced = bad.replace("    writes: u64,", "    writes: u64, // xlint::allow(R3)");
    assert_eq!(rules_fired("crates/extmem/src/stats.rs", &silenced), Vec::<String>::new());

    // The rule only runs on the real stats file; elsewhere it is silent.
    assert_eq!(rules_fired("crates/extmem/src/fake.rs", bad), Vec::<String>::new());
}

#[test]
fn r4_phase_stamp_without_restore() {
    let bad = r#"
fn merge(d: &Disk) {
    d.set_phase(IoPhase::Merge);
    work(d);
}
"#;
    assert_eq!(rules_fired("crates/extmem/src/fake.rs", bad), ["R4"]);

    let good = r#"
fn merge(d: &Disk) {
    let entry_phase = d.phase();
    d.set_phase(IoPhase::Merge);
    work(d);
    d.set_phase(entry_phase);
}
"#;
    assert_eq!(rules_fired("crates/extmem/src/fake.rs", good), Vec::<String>::new());

    let silenced = r#"
fn merge(d: &Disk) {
    d.set_phase(IoPhase::Merge); // xlint::allow(R4)
    work(d);
}
"#;
    assert_eq!(rules_fired("crates/extmem/src/fake.rs", silenced), Vec::<String>::new());
}

#[test]
fn r5_wildcard_arm_over_exterror() {
    let bad = r#"
fn transient(e: &ExtError) -> bool {
    match e {
        ExtError::Io(_) => true,
        _ => false,
    }
}
"#;
    assert_eq!(rules_fired("crates/extmem/src/fake.rs", bad), ["R5"]);

    // A binding arm (`other => ...`) is not a wildcard.
    let good = r#"
fn transient(e: &ExtError) -> bool {
    match e {
        ExtError::Io(_) => true,
        other => is_soft(other),
    }
}
"#;
    assert_eq!(rules_fired("crates/extmem/src/fake.rs", good), Vec::<String>::new());

    // A match with no ExtError in any pattern may use wildcards freely.
    let unrelated = r#"
fn classify(n: u32) -> bool {
    match n {
        0 => true,
        _ => false,
    }
}
"#;
    assert_eq!(rules_fired("crates/extmem/src/fake.rs", unrelated), Vec::<String>::new());

    let silenced = r#"
fn transient(e: &ExtError) -> bool {
    match e {
        ExtError::Io(_) => true,
        _ => false, // xlint::allow(R5)
    }
}
"#;
    assert_eq!(rules_fired("crates/extmem/src/fake.rs", silenced), Vec::<String>::new());
}

#[test]
fn r6_missing_forbid_unsafe_in_a_crate_root() {
    let bad = "//! A crate.\n\npub fn f() {}\n";
    assert_eq!(rules_fired("crates/fake/src/lib.rs", bad), ["R6"]);

    let good = "//! A crate.\n#![forbid(unsafe_code)]\n\npub fn f() {}\n";
    assert_eq!(rules_fired("crates/fake/src/lib.rs", good), Vec::<String>::new());

    // Non-root files are not checked.
    assert_eq!(rules_fired("crates/fake/src/util.rs", bad), Vec::<String>::new());

    let silenced = "// xlint::allow(R6)\npub fn f() {}\n";
    assert_eq!(rules_fired("crates/fake/src/lib.rs", silenced), Vec::<String>::new());
}

#[test]
fn r7_counter_mutator_outside_the_accounting_layer() {
    let bad = r#"
fn charge(s: &IoStats) {
    s.add_reads(IoCat::Sort, 1);
}
"#;
    assert_eq!(rules_fired("crates/merge/src/fake.rs", bad), ["R7"]);

    // The accounting layer itself is exempt.
    assert_eq!(rules_fired("crates/extmem/src/device.rs", bad), Vec::<String>::new());

    let silenced = r#"
fn charge(s: &IoStats) {
    s.add_reads(IoCat::Sort, 1); // xlint::allow(R7)
}
"#;
    assert_eq!(rules_fired("crates/merge/src/fake.rs", silenced), Vec::<String>::new());
}

#[test]
fn r8_non_path_dependency_in_a_manifest() {
    let bad = "[package]\nname = \"fake\"\n\n[dependencies]\nserde = \"1.0\"\n";
    let found = check_manifest("crates/fake/Cargo.toml", bad);
    assert_eq!(found.len(), 1);
    assert_eq!(found[0].rule, "R8");
    assert_eq!(found[0].line, 5);

    let good =
        "[package]\nname = \"fake\"\n\n[dependencies]\nfoo = { path = \"../foo\" }\nbar.workspace = true\n";
    assert!(check_manifest("crates/fake/Cargo.toml", good).is_empty());

    let silenced =
        "[package]\nname = \"fake\"\n\n[dependencies]\nserde = \"1.0\" # xlint::allow(R8)\n";
    assert!(check_manifest("crates/fake/Cargo.toml", silenced).is_empty());
}

#[test]
fn r9_journal_commit_without_a_barrier() {
    let bad = r#"
fn seal(j: &mut Journal) -> Result<()> {
    j.append_commit()
}
"#;
    assert_eq!(rules_fired("crates/core/src/fake.rs", bad), ["R9"]);

    // The sanctioned shape: barrier first, commit after, same body.
    let good = r#"
fn seal(d: &Disk, j: &mut Journal) -> Result<()> {
    d.cache_flush_all()?;
    d.io_barrier()?;
    j.append_commit()
}
"#;
    assert_eq!(rules_fired("crates/core/src/fake.rs", good), Vec::<String>::new());

    // A barrier *after* the commit does not make the commit sound.
    let late = r#"
fn seal(d: &Disk, j: &mut Journal) -> Result<()> {
    j.append_commit()?;
    d.io_barrier()
}
"#;
    assert_eq!(rules_fired("crates/core/src/fake.rs", late), ["R9"]);

    // The definition itself (`fn append_commit`) is not a call site.
    let def = r#"
fn append_commit(&mut self) -> Result<()> {
    self.append(&JournalRecord::Commit)
}
"#;
    assert_eq!(rules_fired("crates/extmem/src/fake.rs", def), Vec::<String>::new());

    // A barrier in the *enclosing* fn does not cover a nested fn's commit.
    let nested = r#"
fn outer(d: &Disk, j: &mut Journal) {
    d.io_barrier();
    fn inner(j: &mut Journal) {
        j.append_commit();
    }
    inner(j);
}
"#;
    assert_eq!(rules_fired("crates/core/src/fake.rs", nested), ["R9"]);

    // Test modules are exempt, and the pragma silences it.
    let in_tests = r#"
fn prod() {}
#[cfg(test)]
mod tests {
    fn t(j: &mut Journal) {
        j.append_commit().unwrap();
    }
}
"#;
    assert_eq!(rules_fired("crates/core/src/fake.rs", in_tests), Vec::<String>::new());

    let silenced = r#"
fn seal(j: &mut Journal) -> Result<()> {
    j.append_commit() // xlint::allow(R9)
}
"#;
    assert_eq!(rules_fired("crates/core/src/fake.rs", silenced), Vec::<String>::new());
}

#[test]
fn r10_exterror_transience_classification_must_be_total() {
    // `Corrupt` is swallowed by the binding arm: one finding, anchored on
    // the variant that was never named.
    let bad = r#"
enum ExtError {
    Io(Error),
    Corrupt(String),
}
impl ExtError {
    pub fn is_transient(&self) -> bool {
        match self {
            ExtError::Io(_) => true,
            other => false,
        }
    }
}
"#;
    assert_eq!(rules_fired("crates/extmem/src/error.rs", bad), ["R10"]);

    let good = bad.replace("other => false,", "ExtError::Corrupt(_) => false,");
    assert_eq!(rules_fired("crates/extmem/src/error.rs", &good), Vec::<String>::new());

    // A wildcard arm fires even when every variant is named (it would let
    // the *next* variant slip through unclassified). R5 convicts the same
    // line for its own reason.
    let wild = good.replace(
        "ExtError::Corrupt(_) => false,",
        "ExtError::Corrupt(_) => false,\n            _ => false,",
    );
    assert_eq!(rules_fired("crates/extmem/src/error.rs", &wild), ["R10", "R5"]);

    // The rule only runs on the real error.rs; elsewhere it is silent.
    assert_eq!(rules_fired("crates/extmem/src/fake.rs", bad), Vec::<String>::new());

    // A file without the classifier at all is a finding, not a pass.
    let gone = "enum ExtError { Io(Error) }\n";
    assert_eq!(rules_fired("crates/extmem/src/error.rs", gone), ["R10"]);

    let silenced = bad.replace("    Corrupt(String),", "    Corrupt(String), // xlint::allow(R10)");
    assert_eq!(rules_fired("crates/extmem/src/error.rs", &silenced), Vec::<String>::new());
}

#[test]
fn r11_arbiter_acquired_while_core_is_held() {
    // `grab_frames` transitively acquires the arbiter lock; calling it
    // from inside a core hold region inverts the arbiter-before-core
    // order.
    let bad = r#"
fn grab_frames(arb: &BudgetArbiter) -> usize {
    let st = arb.lock_state();
    st.free
}
fn schedule(sh: &Shared) -> usize {
    let core = sh.lock_core();
    grab_frames(&sh.arbiter) + core.queue.len()
}
"#;
    assert_eq!(rules_fired("crates/server/src/fake.rs", bad), ["R11"]);

    // Clean twin: read the arbiter *before* taking core.
    let good = r#"
fn grab_frames(arb: &BudgetArbiter) -> usize {
    let st = arb.lock_state();
    st.free
}
fn schedule(sh: &Shared) -> usize {
    let free = grab_frames(&sh.arbiter);
    let core = sh.lock_core();
    free + core.queue.len()
}
"#;
    assert_eq!(rules_fired("crates/server/src/fake.rs", good), Vec::<String>::new());

    // Dropping the guard ends the hold region.
    let dropped = r#"
fn grab_frames(arb: &BudgetArbiter) -> usize {
    let st = arb.lock_state();
    st.free
}
fn schedule(sh: &Shared) -> usize {
    let core = sh.lock_core();
    let depth = core.queue.len();
    drop(core);
    grab_frames(&sh.arbiter) + depth
}
"#;
    assert_eq!(rules_fired("crates/server/src/fake.rs", dropped), Vec::<String>::new());

    let silenced = bad.replace(
        "    grab_frames(&sh.arbiter) + core.queue.len()",
        "    // xlint::allow(R11)\n    grab_frames(&sh.arbiter) + core.queue.len()",
    );
    assert_eq!(rules_fired("crates/server/src/fake.rs", &silenced), Vec::<String>::new());
}

#[test]
fn r11_sees_the_acquisition_across_files() {
    // The acquiring helper lives in another file; only the workspace-wide
    // call graph can convict the caller.
    let helper = r#"
fn grab_frames(arb: &BudgetArbiter) -> usize {
    let st = arb.lock_state();
    st.free
}
"#;
    let caller = r#"
fn schedule(sh: &Shared) -> usize {
    let core = sh.lock_core();
    grab_frames(&sh.arbiter) + core.queue.len()
}
"#;
    let findings = check_sources(&[
        ("crates/server/src/budget_helper.rs", helper),
        ("crates/server/src/fake.rs", caller),
    ]);
    let fired: Vec<(String, String)> =
        findings.iter().map(|f| (f.file.clone(), f.rule.to_string())).collect();
    assert_eq!(fired, [("crates/server/src/fake.rs".to_string(), "R11".to_string())]);

    // The same caller linted alone is blind to the helper's acquisition —
    // the conviction genuinely needs the cross-file pass.
    assert_eq!(rules_fired("crates/server/src/fake.rs", caller), Vec::<String>::new());
}

#[test]
fn r12_blocking_call_while_core_is_held() {
    let bad = r#"
fn chew(d: &Disk) -> Result<()> {
    d.read_block(0, &mut buf)
}
fn pump(sh: &Shared, d: &Disk) -> Result<()> {
    let core = sh.lock_core();
    chew(d)
}
"#;
    assert_eq!(rules_fired("crates/server/src/fake.rs", bad), ["R12"]);

    // Clean twin: do the I/O after releasing the lock.
    let good = r#"
fn chew(d: &Disk) -> Result<()> {
    d.read_block(0, &mut buf)
}
fn pump(sh: &Shared, d: &Disk) -> Result<()> {
    let id = { let core = sh.lock_core(); core.next };
    chew(d)
}
"#;
    assert_eq!(rules_fired("crates/server/src/fake.rs", good), Vec::<String>::new());

    let silenced = bad.replace("    chew(d)\n}", "    // xlint::allow(R12)\n    chew(d)\n}");
    assert_eq!(rules_fired("crates/server/src/fake.rs", &silenced), Vec::<String>::new());
}

#[test]
fn r12_condvar_wait_needs_a_predicate_loop() {
    // An `if`-gated wait misses spurious wakeups.
    let bad = r#"
fn park(sh: &Shared) {
    let mut core = sh.lock_core();
    if core.queue.is_empty() {
        core = sh.cv.wait(core);
    }
}
"#;
    assert_eq!(rules_fired("crates/server/src/fake.rs", bad), ["R12"]);

    let good = bad.replace("if core.queue.is_empty()", "while core.queue.is_empty()");
    assert_eq!(rules_fired("crates/server/src/fake.rs", &good), Vec::<String>::new());

    let silenced = bad.replace(
        "        core = sh.cv.wait(core);",
        "        // xlint::allow(R12)\n        core = sh.cv.wait(core);",
    );
    assert_eq!(rules_fired("crates/server/src/fake.rs", &silenced), Vec::<String>::new());
}

#[test]
fn r13_concurrency_primitives_outside_the_sanctioned_sites() {
    let bad = "use std::sync::Mutex;\n\nstruct S {\n    m: Mutex<u32>,\n}\n";
    assert_eq!(rules_fired("crates/extmem/src/pool.rs", bad), ["R13", "R13"]);

    // The server crate, the arbiter, and the sanitizer are sanctioned.
    assert_eq!(rules_fired("crates/server/src/fake.rs", bad), Vec::<String>::new());
    assert_eq!(rules_fired("crates/extmem/src/arbiter.rs", bad), Vec::<String>::new());

    // Atomics are covered by prefix; test code is exempt.
    let atomics = "fn hot() {\n    let c = AtomicU64::new(0);\n}\n";
    assert_eq!(rules_fired("crates/core/src/run.rs", atomics), ["R13"]);
    let in_test = format!("#[cfg(test)]\nmod tests {{\n{atomics}}}\n");
    assert_eq!(rules_fired("crates/core/src/run.rs", &in_test), Vec::<String>::new());

    let silenced = bad.replace("    m: Mutex<u32>,", "    m: Mutex<u32>, // xlint::allow(R13)");
    assert_eq!(rules_fired("crates/extmem/src/pool.rs", &silenced), ["R13"]);
}

#[test]
fn r14_guard_held_across_a_durability_barrier() {
    let bad = r#"
fn persist(d: &Disk) -> Result<()> {
    d.io_barrier()
}
fn commit_all(sh: &Shared, d: &Disk) -> Result<()> {
    let core = sh.lock_core();
    persist(d)
}
"#;
    assert_eq!(rules_fired("crates/server/src/fake.rs", bad), ["R14"]);

    // Both lock classes are covered: an arbiter guard is just as wrong.
    let arb = bad.replace("sh.lock_core()", "sh.arbiter.lock_state()");
    assert_eq!(rules_fired("crates/server/src/fake.rs", &arb), ["R14"]);

    // Clean twin: release before flushing.
    let good = r#"
fn persist(d: &Disk) -> Result<()> {
    d.io_barrier()
}
fn commit_all(sh: &Shared, d: &Disk) -> Result<()> {
    let core = sh.lock_core();
    drop(core);
    persist(d)
}
"#;
    assert_eq!(rules_fired("crates/server/src/fake.rs", good), Vec::<String>::new());

    let silenced = bad.replace("    persist(d)\n}", "    // xlint::allow(R14)\n    persist(d)\n}");
    assert_eq!(rules_fired("crates/server/src/fake.rs", &silenced), Vec::<String>::new());
}

#[test]
fn r15_poison_recovery_outside_the_audited_helper() {
    let bad = r#"
fn grab(m: &Mutex<u32>) -> u32 {
    let g = m.lock().unwrap_or_else(|p| p.into_inner());
    *g
}
"#;
    assert_eq!(rules_fired("crates/server/src/fake.rs", bad), ["R15"]);

    // The audited helper itself is the one sanctioned site.
    assert_eq!(rules_fired("crates/extmem/src/locksan.rs", bad), Vec::<String>::new());

    // `unwrap_or_else` without `into_inner` nearby is not the pattern.
    let good = bad.replace("|p| p.into_inner()", "|_| panic!()");
    assert_eq!(
        rules_fired("crates/server/src/fake.rs", &good),
        Vec::<String>::new(),
        "only the poisoning-recovery shape fires"
    );

    let silenced = bad.replace(
        "    let g = m.lock().unwrap_or_else(|p| p.into_inner());",
        "    // xlint::allow(R15)\n    let g = m.lock().unwrap_or_else(|p| p.into_inner());",
    );
    assert_eq!(rules_fired("crates/server/src/fake.rs", &silenced), Vec::<String>::new());
}

#[test]
fn findings_format_as_file_line_rule_message() {
    let found = check_rust_file(
        "crates/extmem/src/fake.rs",
        "fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n",
    );
    assert_eq!(found.len(), 1);
    let line = found[0].to_string();
    assert!(line.starts_with("crates/extmem/src/fake.rs:2: R2 — "), "unexpected format: {line}");
}

#[test]
fn the_workspace_itself_is_clean() {
    let root = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let findings = xlint::check_workspace(root).expect("walk workspace");
    assert!(
        findings.is_empty(),
        "xlint found violations:\n{}",
        findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
    );
}
