//! Workspace-approximate call graph over the symbol pass, and the
//! precomputed "may" sets the concurrency rules (R11–R14) consume.
//!
//! Functions are keyed by bare name; same-named functions across files
//! and crates are merged (callee sets union). See the module docs of
//! [`crate::symbols`] for why that approximation is the right direction
//! for these rules.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Masked, Tok};
use crate::symbols;

/// Calls that park the thread or perform device/socket I/O. Transitive
/// callers of these must not run while the server core lock is held (R12).
/// `wait`/`wait_timeout` are deliberately absent: a condvar wait under the
/// lock is the one sanctioned block, checked separately for the
/// predicate-loop shape.
pub const BLOCKING_SEEDS: &[&str] = &[
    "sleep",
    "read_block",
    "write_block",
    "read_line",
    "read_exact",
    "accept",
    "recv",
    // The hardened daemon edge (PR 10): the bounded framer parks on the
    // socket, and connecting (with or without retries) parks on the dial.
    "read_frame",
    "fill_buf",
    "connect",
    "connect_with_retry",
];

/// Calls that publish a durability point. Holding a lock guard across one
/// couples an in-memory critical section to device flushing (R14).
pub const BARRIER_SEEDS: &[&str] = &["io_barrier", "checkpoint", "cache_flush", "cache_flush_all"];

/// Name-merging cutoff: a function name defined more than this many times
/// across the scanned set is a *hub* (`new`, `default`, `fmt`, ...).
/// Merging a hub's bodies relates dozens of unrelated functions, so taint
/// flowing through one is pure noise; [`CallGraph::reach`] treats hubs as
/// opaque (they neither join a may-set nor propagate one) unless the name
/// is itself a seed.
pub const HUB_DEF_LIMIT: usize = 3;

/// The merged, name-keyed call graph of every file fed to
/// [`add_file`](CallGraph::add_file).
#[derive(Debug, Default)]
pub struct CallGraph {
    calls: BTreeMap<String, BTreeSet<String>>,
    defs: BTreeMap<String, usize>,
}

impl CallGraph {
    /// An empty graph.
    pub fn new() -> Self {
        CallGraph::default()
    }

    /// Merge every non-test function definition in `toks` into the graph.
    /// Definitions inside `#[cfg(test)]` spans are skipped: test helpers
    /// sleep, spin, and shadow production names freely, and feeding them
    /// to the name-merged graph taints those names for every caller.
    pub fn add_file(&mut self, toks: &[Tok], m: &Masked) {
        for def in symbols::fn_defs(toks) {
            if m.in_test(toks[def.open].pos) {
                continue;
            }
            *self.defs.entry(def.name.clone()).or_default() += 1;
            let entry = self.calls.entry(def.name).or_default();
            for (_, callee) in symbols::calls_in(toks, def.open, def.close) {
                entry.insert(callee.to_string());
            }
        }
    }

    /// Number of distinct function names in the table.
    pub fn len(&self) -> usize {
        self.calls.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.calls.is_empty()
    }

    /// The names that may — directly or transitively — call any of
    /// `seeds`, including the seed names themselves. Reverse reachability
    /// by fixpoint: a function joins the set when any of its callees is in
    /// it. Hub names (more than [`HUB_DEF_LIMIT`] definitions) never join
    /// unless seeded — see the constant's docs.
    pub fn reach(&self, seeds: &[&str]) -> BTreeSet<String> {
        let mut out: BTreeSet<String> = seeds.iter().map(|s| s.to_string()).collect();
        loop {
            let mut grew = false;
            for (f, callees) in &self.calls {
                if !out.contains(f)
                    && self.defs.get(f).copied().unwrap_or(0) <= HUB_DEF_LIMIT
                    && callees.iter().any(|c| out.contains(c))
                {
                    out.insert(f.clone());
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        out
    }
}

/// The whole-workspace analysis the per-file rule pass consumes: the call
/// graph plus its three fixpoint "may" sets, computed once.
#[derive(Debug)]
pub struct Analysis {
    /// The merged call graph.
    pub graph: CallGraph,
    /// Names that may (transitively) acquire the arbiter lock.
    pub may_arbiter: BTreeSet<String>,
    /// Names that may (transitively) acquire the server core lock.
    pub may_core: BTreeSet<String>,
    /// Names that may (transitively) block (sleep, device/socket I/O).
    pub may_block: BTreeSet<String>,
    /// Names that may (transitively) hit a durability barrier.
    pub may_barrier: BTreeSet<String>,
}

impl Analysis {
    /// Seal a populated graph into its fixpoint sets.
    pub fn build(graph: CallGraph) -> Self {
        let may_arbiter = graph.reach(symbols::ARBITER_ACQUIRERS);
        let may_core = graph.reach(symbols::CORE_ACQUIRERS);
        let may_block = graph.reach(BLOCKING_SEEDS);
        let may_barrier = graph.reach(BARRIER_SEEDS);
        Analysis { graph, may_arbiter, may_core, may_block, may_barrier }
    }

    /// The analysis of a single file in isolation (used by
    /// [`crate::check_rust_file`]; workspace runs feed every file first).
    pub fn of_tokens(toks: &[Tok], m: &Masked) -> Self {
        let mut graph = CallGraph::new();
        graph.add_file(toks, m);
        Analysis::build(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn analysis_of(src: &str) -> Analysis {
        let m = lexer::mask(src);
        let toks = lexer::tokens(&m.code);
        Analysis::of_tokens(&toks, &m)
    }

    #[test]
    fn reach_is_transitive_across_functions() {
        let a = analysis_of(
            "fn leaf(d: &D) { d.write_block(0, buf); }\n\
             fn mid(d: &D) { leaf(d); }\n\
             fn top(d: &D) { mid(d); }\n\
             fn clean() { let x = 1; }\n",
        );
        assert!(a.may_block.contains("leaf"));
        assert!(a.may_block.contains("mid"));
        assert!(a.may_block.contains("top"));
        assert!(!a.may_block.contains("clean"));
    }

    #[test]
    fn same_named_functions_merge_conservatively() {
        let mut graph = CallGraph::new();
        for src in [
            "fn helper() { nothing(); }\nfn entry() { helper(); }\n",
            "fn helper(a: &A) { let st = a.lock_state(); }\n",
        ] {
            let m = lexer::mask(src);
            let toks = lexer::tokens(&m.code);
            graph.add_file(&toks, &m);
        }
        let a = Analysis::build(graph);
        assert!(a.may_arbiter.contains("helper"), "merged name carries both bodies' callees");
        assert!(a.may_arbiter.contains("entry"), "reachability flows through the merged name");
    }

    #[test]
    fn hub_names_do_not_carry_taint() {
        // Four `fn new` definitions push the name over HUB_DEF_LIMIT; the
        // one body that blocks must not taint every caller of `new`.
        let a = analysis_of(
            "fn new(d: &D) -> J { d.write_block(0, buf); J }\n\
             impl A { fn new() -> A { A } }\n\
             impl B { fn new() -> B { B } }\n\
             impl C { fn new() -> C { C } }\n\
             fn caller() { let j = J::new(); }\n",
        );
        assert!(!a.may_block.contains("new"), "hub name stays opaque");
        assert!(!a.may_block.contains("caller"));
    }

    #[test]
    fn test_definitions_stay_out_of_the_graph() {
        let a = analysis_of(
            "fn prod() { helper(); }\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn helper() { std::thread::sleep(d); }\n\
             }\n",
        );
        assert!(!a.may_block.contains("helper"), "test-only defs are skipped");
        assert!(!a.may_block.contains("prod"));
    }

    #[test]
    fn framer_and_dial_seeds_taint_their_callers() {
        // The daemon-edge seeds added for the hardened protocol layer:
        // reading a frame and dialing a peer both park the thread, so any
        // transitive caller lands in `may_block` (and R12 will flag it if
        // it runs under the core lock).
        let a = analysis_of(
            "fn pump(r: &mut R) -> Frame { read_frame(r, max, idle, req) }\n\
             fn handle(r: &mut R) { let f = pump(r); }\n\
             fn dial(addr: &str) { connect_with_retry(addr, &policy); }\n\
             fn boot(addr: &str) { dial(addr); }\n\
             fn pure() { let x = 2; }\n",
        );
        for name in ["pump", "handle", "dial", "boot"] {
            assert!(a.may_block.contains(name), "{name} should be block-tainted");
        }
        assert!(!a.may_block.contains("pure"));
    }

    #[test]
    fn macros_and_definitions_are_not_calls() {
        let a = analysis_of("fn f() { format!(\"{}\", 1); }\nfn sleep() {}\n");
        assert!(!a.may_block.contains("f"), "format! is a macro, fn sleep( is a definition");
    }
}
