//! `xlint` — the workspace's own static analyser.
//!
//! Clippy checks Rust; nothing checks *this repo's* layering rules: that
//! raw [`BlockDevice`] I/O stays confined to the accounting layer, that the
//! substrate reports failures instead of panicking, that every counter a
//! PR adds is actually wired through reset/snapshot/Display, and so on.
//! `xlint` closes that gap with a hand-rolled lexer (no `syn`, no
//! dependencies — the build is offline) and fifteen rules: ten lexical
//! ones (R1–R10) plus five concurrency rules (R11–R15) powered by a
//! cross-file symbol/call-graph pass (`symbols.rs`/`callgraph.rs`) that
//! tracks which functions may acquire the server-path locks.
//!
//! Run it with `cargo run -p xlint -- --deny` from the workspace root.
//! Findings print as `file:line: rule — message`; a finding is suppressed
//! by an inline `// xlint::allow(RULE)` pragma on the same line or the
//! line above.
//!
//! [`BlockDevice`]: ../nexsort_extmem/trait.BlockDevice.html

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod lexer;
pub mod rules;
pub mod symbols;

pub use callgraph::{Analysis, CallGraph};
pub use rules::{check_manifest, check_rust_file, check_sources, Finding, RULES};

use std::path::{Path, PathBuf};

/// Lint every `crates/*/src/**/*.rs` under `root`, plus the crate
/// manifests and the workspace manifest. Findings come back sorted by
/// (file, line, rule).
pub fn check_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    let mut rust_files = Vec::new();

    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut rust_files)?;
        }
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest)?;
            findings.extend(check_manifest(&rel_of(root, &manifest), &text));
        }
    }
    let root_manifest = root.join("Cargo.toml");
    if root_manifest.is_file() {
        let text = std::fs::read_to_string(&root_manifest)?;
        findings.extend(check_manifest("Cargo.toml", &text));
    }

    rust_files.sort();
    // Two-phase pass: build the workspace call graph over every file
    // first, then lint each file against the sealed analysis so the
    // concurrency rules see cross-crate reachability.
    let mut sources = Vec::new();
    for path in &rust_files {
        let text = std::fs::read_to_string(path)?;
        sources.push((rel_of(root, path), text));
    }
    let borrowed: Vec<(&str, &str)> =
        sources.iter().map(|(rel, text)| (rel.as_str(), text.as_str())).collect();
    findings.extend(check_sources(&borrowed));

    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(findings)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if entry.file_type()?.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_of(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
