//! A hand-rolled Rust lexer, in the spirit of the workspace's offline shims:
//! just enough of the language to *mask* everything that is not code.
//!
//! The linter's rules are lexical, so their one correctness obligation is to
//! never mistake the inside of a string, raw string, char literal, or
//! comment for code (or vice versa). [`mask`] produces a same-length copy of
//! the source in which every such byte is blanked to a space (newlines are
//! kept, so line numbers survive), plus the `xlint::allow(...)` suppression
//! pragmas found in comments and the spans of `#[cfg(test)]` modules.

use std::collections::HashMap;

/// The lexer's view of one source file.
pub struct Masked {
    /// The source with comments and literal contents blanked to spaces.
    /// Byte-for-byte the same length as the input; newlines are preserved.
    pub code: String,
    /// Rules suppressed per line: `// xlint::allow(R2)` registers `R2` on
    /// the line the comment ends on (a finding is suppressed by a pragma on
    /// its own line or on the line directly above).
    pub allows: HashMap<usize, Vec<String>>,
    /// Byte ranges (half-open) covered by `#[cfg(test)]` modules.
    pub test_spans: Vec<(usize, usize)>,
}

impl Masked {
    /// Whether `rule` is suppressed for a finding on `line` (1-based).
    pub fn allowed(&self, line: usize, rule: &str) -> bool {
        let hit = |l: usize| self.allows.get(&l).is_some_and(|v| v.iter().any(|r| r == rule));
        hit(line) || (line > 1 && hit(line - 1))
    }

    /// Whether byte offset `pos` falls inside a `#[cfg(test)]` module.
    pub fn in_test(&self, pos: usize) -> bool {
        self.test_spans.iter().any(|&(s, e)| pos >= s && pos < e)
    }
}

/// 1-based line number of byte offset `pos` in `src`.
pub fn line_of(src: &str, pos: usize) -> usize {
    src.as_bytes()[..pos.min(src.len())].iter().filter(|&&b| b == b'\n').count() + 1
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Record any `xlint::allow(a, b)` pragmas inside comment text `c`,
/// registering them on `line`.
fn collect_pragmas(c: &str, line: usize, allows: &mut HashMap<usize, Vec<String>>) {
    let mut rest = c;
    while let Some(i) = rest.find("xlint::allow(") {
        rest = &rest[i + "xlint::allow(".len()..];
        if let Some(close) = rest.find(')') {
            for rule in rest[..close].split(',') {
                let rule = rule.trim();
                if !rule.is_empty() {
                    allows.entry(line).or_default().push(rule.to_string());
                }
            }
            rest = &rest[close..];
        } else {
            break;
        }
    }
}

/// Blank comments and literals out of `src`. See the module docs.
pub fn mask(src: &str) -> Masked {
    let b = src.as_bytes();
    let mut out = b.to_vec();
    let mut allows = HashMap::new();
    let mut i = 0;
    let mut line = 1;
    // True when the previous retained byte continues an identifier, so a
    // raw-string prefix like the `r` of `r"..."` is not confused with the
    // tail of an identifier such as `var` in `var"` (not valid Rust anyway).
    let mut prev_ident = false;

    // Blank out[s..e] except newlines.
    let blank = |out: &mut Vec<u8>, s: usize, e: usize| {
        let e = e.min(out.len());
        for slot in &mut out[s..e] {
            if *slot != b'\n' {
                *slot = b' ';
            }
        }
    };

    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            line += 1;
            prev_ident = false;
            i += 1;
            continue;
        }
        // Line comment (also doc comments // /// //!).
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            let start = i;
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            collect_pragmas(&src[start..i], line, &mut allows);
            blank(&mut out, start, i);
            prev_ident = false;
            continue;
        }
        // Block comment, with nesting.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let start = i;
            let mut depth = 1;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == b'\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            collect_pragmas(&src[start..i], line, &mut allows);
            blank(&mut out, start, i);
            prev_ident = false;
            continue;
        }
        // Raw (byte) string: r"..."  r#"..."#  br##"..."##  etc.
        if (c == b'r' || c == b'b') && !prev_ident {
            let mut j = i;
            if b[j] == b'b' && j + 1 < b.len() && b[j + 1] == b'r' {
                j += 1;
            }
            if b[j] == b'r' {
                let mut k = j + 1;
                while k < b.len() && b[k] == b'#' {
                    k += 1;
                }
                if k < b.len() && b[k] == b'"' {
                    let hashes = k - (j + 1);
                    let close: Vec<u8> =
                        std::iter::once(b'"').chain(std::iter::repeat_n(b'#', hashes)).collect();
                    let start = i;
                    i = k + 1;
                    while i < b.len() {
                        if b[i] == b'\n' {
                            line += 1;
                            i += 1;
                        } else if b[i] == b'"' && b[i..].starts_with(&close) {
                            i += close.len();
                            break;
                        } else {
                            i += 1;
                        }
                    }
                    blank(&mut out, start, i);
                    prev_ident = false;
                    continue;
                }
            }
        }
        // Byte string b"..." falls through to plain string handling below
        // after consuming the prefix.
        if c == b'b' && !prev_ident && i + 1 < b.len() && (b[i + 1] == b'"' || b[i + 1] == b'\'') {
            i += 1; // the quote is handled on the next iteration
            prev_ident = false;
            // Treat the `b` itself as code (blank? keep): blank it so the
            // literal vanishes entirely.
            out[i - 1] = b' ';
            continue;
        }
        // String literal.
        if c == b'"' {
            let start = i;
            i += 1;
            while i < b.len() {
                match b[i] {
                    b'\\' => {
                        // A line continuation (`\` at end of line) still
                        // advances the line counter.
                        if i + 1 < b.len() && b[i + 1] == b'\n' {
                            line += 1;
                        }
                        // Clamp: a truncated escape must not run past EOF.
                        i = (i + 2).min(b.len());
                    }
                    b'\n' => {
                        line += 1;
                        i += 1;
                    }
                    b'"' => {
                        i += 1;
                        break;
                    }
                    _ => i += 1,
                }
            }
            blank(&mut out, start, i);
            prev_ident = false;
            continue;
        }
        // Char literal vs. lifetime.
        if c == b'\'' {
            if i + 1 < b.len() && b[i + 1] == b'\\' {
                // Escaped char literal: '\n', '\'', '\u{...}'.
                let start = i;
                i += 2;
                while i < b.len() && b[i] != b'\'' {
                    i += 1;
                }
                i = (i + 1).min(b.len());
                blank(&mut out, start, i);
                prev_ident = false;
                continue;
            }
            // 'x' is a char literal; 'ident (no closing quote) a lifetime.
            let mut k = i + 1;
            while k < b.len() && is_ident(b[k]) {
                k += 1;
            }
            if k > i + 1 && k < b.len() && b[k] == b'\'' && k == i + 2 {
                // Exactly one ident char then a quote: 'a' or '_'.
                blank(&mut out, i, k + 1);
                i = k + 1;
                prev_ident = false;
                continue;
            }
            if k == i + 1 && k < b.len() {
                // Non-ident single char: '+' etc.
                if k + 1 < b.len() && b[k + 1] == b'\'' {
                    blank(&mut out, i, k + 2);
                    i = k + 2;
                    prev_ident = false;
                    continue;
                }
            }
            // A lifetime: leave as code.
            i = k.max(i + 1);
            prev_ident = false;
            continue;
        }
        prev_ident = is_ident(c);
        i += 1;
    }

    let code = String::from_utf8_lossy(&out).into_owned();
    let test_spans = find_test_spans(&code);
    Masked { code, allows, test_spans }
}

/// Spans of `#[cfg(test)] mod ... { ... }` in masked code.
fn find_test_spans(code: &str) -> Vec<(usize, usize)> {
    let b = code.as_bytes();
    let mut spans = Vec::new();
    let mut from = 0;
    while let Some(off) = code[from..].find("#[cfg(test)]") {
        let attr = from + off;
        // Find the opening brace of the annotated item, then match it.
        if let Some(rel) = code[attr..].find('{') {
            let open = attr + rel;
            let mut depth = 0usize;
            let mut end = code.len();
            for (k, &ch) in b.iter().enumerate().skip(open) {
                if ch == b'{' {
                    depth += 1;
                } else if ch == b'}' {
                    depth -= 1;
                    if depth == 0 {
                        end = k + 1;
                        break;
                    }
                }
            }
            spans.push((attr, end));
            from = end;
        } else {
            break;
        }
    }
    spans
}

/// One lexical token of masked code: an identifier/number word or a single
/// punctuation byte, with its byte offset and 1-based line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tok<'a> {
    /// The token text (a word, or one punctuation character).
    pub text: &'a str,
    /// Byte offset in the (masked) source.
    pub pos: usize,
    /// 1-based line number.
    pub line: usize,
}

/// Split masked code into identifier/number words and punctuation bytes.
pub fn tokens(code: &str) -> Vec<Tok<'_>> {
    let b = code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < b.len() {
        if b[i] == b'\n' {
            line += 1;
            i += 1;
        } else if b[i].is_ascii_whitespace() {
            i += 1;
        } else if is_ident(b[i]) {
            let start = i;
            while i < b.len() && is_ident(b[i]) {
                i += 1;
            }
            out.push(Tok { text: &code[start..i], pos: start, line });
        } else {
            out.push(Tok { text: &code[i..i + 1], pos: i, line });
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let m = mask("let x = \"unwrap()\"; // unwrap()\nlet y = 1; /* panic! */");
        assert!(!m.code.contains("unwrap"));
        assert!(!m.code.contains("panic"));
        assert!(m.code.contains("let x ="));
        assert!(m.code.contains("let y = 1;"));
    }

    #[test]
    fn raw_strings_with_hashes_are_blanked() {
        let m = mask("let s = r#\"has \"quotes\" and unwrap()\"#; call();");
        assert!(!m.code.contains("unwrap"));
        assert!(m.code.contains("call();"));
        let m = mask("let s = br##\"x\"# still in\"##; after();");
        assert!(!m.code.contains("still in"));
        assert!(m.code.contains("after();"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let m = mask("let c = 'x'; fn f<'a>(v: &'a str) -> &'a str { v }");
        assert!(!m.code.contains("'x'"));
        assert!(m.code.contains("'a str"));
        let m = mask("let n = '\\n'; let q = '\\''; let p = '('; done();");
        assert!(!m.code.contains("'('"), "char-literal '(' must be blanked: {}", m.code);
        assert!(m.code.contains("done();"));
    }

    #[test]
    fn nested_block_comments() {
        let m = mask("a(); /* outer /* inner */ still comment */ b();");
        assert!(m.code.contains("a();") && m.code.contains("b();"));
        assert!(!m.code.contains("still"));
    }

    #[test]
    fn pragmas_are_collected_per_line() {
        let m = mask("x();\n// xlint::allow(R2, R5)\ny();\nz(); // xlint::allow(R1)\n");
        assert!(m.allowed(2, "R2") && m.allowed(2, "R5"));
        assert!(m.allowed(3, "R2"), "pragma applies to the following line");
        assert!(m.allowed(4, "R1"));
        assert!(!m.allowed(1, "R2"));
    }

    #[test]
    fn crlf_sources_keep_line_numbers_and_pragmas() {
        // Windows checkouts: `\r\n` line endings must not shift line
        // numbers, leak `\r` into tokens, or detach pragmas from the line
        // they cover.
        let src = "a();\r\n// xlint::allow(R2)\r\nb.unwrap();\r\nc();\r\n";
        let m = mask(src);
        assert!(m.allowed(3, "R2"), "pragma covers the line below across CRLF");
        assert!(!m.allowed(4, "R2"));
        let toks = tokens(&m.code);
        assert!(toks.iter().all(|t| !t.text.contains('\r')), "no \\r inside tokens");
        let c = toks.iter().find(|t| t.text == "c").expect("c survives");
        assert_eq!(c.line, 4);
    }

    #[test]
    fn trailing_backslash_string_continuation() {
        // A `\` before the newline continues the string literal onto the
        // next line; the continuation is still string content and must be
        // masked, while line accounting stays exact.
        let src = "let s = \"spans \\\n    unwrap() lines\";\nafter();\n";
        let m = mask(src);
        assert!(!m.code.contains("unwrap"), "continued string content is blanked");
        assert!(m.code.contains("after();"));
        assert_eq!(m.code.matches('\n').count(), src.matches('\n').count(), "newlines preserved");
        let toks = tokens(&m.code);
        let after = toks.iter().find(|t| t.text == "after").expect("after survives");
        assert_eq!(after.line, 3);
    }

    #[test]
    fn truncated_escape_at_eof_does_not_panic() {
        // A source ending mid-escape (backslash as the last byte of an
        // unterminated string) must mask to the end without panicking.
        for src in ["let s = \"dangling\\", "let c = '\\", "x(); // trail\\"] {
            let m = mask(src);
            assert_eq!(m.code.len(), src.len(), "mask preserves length for {src:?}");
        }
    }

    #[test]
    fn cfg_test_spans_cover_test_modules() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn more() {}\n";
        let m = mask(src);
        let unwrap_pos = m.code.find("unwrap").expect("unwrap is code here");
        assert!(m.in_test(unwrap_pos));
        let prod_pos = m.code.find("prod").expect("prod");
        assert!(!m.in_test(prod_pos));
        let more_pos = m.code.find("more").expect("more");
        assert!(!m.in_test(more_pos));
    }
}
