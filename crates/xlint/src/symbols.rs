//! Tier-1 symbol/scope pass over the masked token stream: function
//! definitions, approximate call sites, and lock-hold regions.
//!
//! Everything here is *lexical and approximate by design* — the same
//! trade-off the rest of xlint makes (no `syn`, no type information, the
//! build stays offline). Two choices make the approximation workable:
//!
//! * **Locks are identified by choke-point method names**, not variable
//!   names (string literals are blanked by the masking lexer, so
//!   `TrackedMutex::new("server.core", ..)` is unreadable statically).
//!   `Shared::lock_core` and `BudgetArbiter::lock_state` are the single
//!   sanctioned acquisition sites for the two server-path locks; every
//!   critical section starts with one of those calls, so the rules can
//!   find every hold region by finding those idents.
//! * **Functions are keyed by bare name** across the whole workspace;
//!   same-named functions are merged (their callees union). That is
//!   conservative in the direction we want for R11/R12/R14 — a merged
//!   name *may* reach a blocking seed — at the cost of needing a few
//!   well-known std method names excluded (see [`CALL_EXCLUDED`]).

use crate::lexer::Tok;

/// The lock classes the cross-file analysis tracks on the threaded server
/// path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LockClass {
    /// `BudgetArbiter`'s state lock (`arbiter.state`).
    Arbiter,
    /// The server's core lock over the job table (`server.core`).
    Core,
}

impl LockClass {
    /// Human name used in findings.
    pub fn describe(self) -> &'static str {
        match self {
            LockClass::Arbiter => "the arbiter lock (BudgetArbiter::lock_state)",
            LockClass::Core => "the server core lock (Shared::lock_core)",
        }
    }
}

/// The sanctioned acquisition choke points for the arbiter lock.
pub const ARBITER_ACQUIRERS: &[&str] = &["lock_state"];
/// The sanctioned acquisition choke points for the server core lock.
pub const CORE_ACQUIRERS: &[&str] = &["lock_core"];

/// Idents that look like calls but are control flow, bindings, or the
/// explicit-drop intrinsic. `drop` is excluded because almost every
/// `drop(guard)` is a *release*, and the one interesting case
/// (`BudgetLease::drop`) cannot be told apart by name.
pub const CALL_EXCLUDED: &[&str] =
    &["if", "while", "for", "match", "loop", "return", "fn", "let", "in", "move", "else", "drop"];

/// One function definition found in a token stream. `open`/`close` are
/// token indices spanning the body (`open` is the `{`, `close` is one past
/// the matching `}`), matching the convention of `fn_spans` in `rules.rs`.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// The bare function name (workspace-wide merge key).
    pub name: String,
    /// Token index of the body's opening `{`.
    pub open: usize,
    /// One past the token index of the body's closing `}`.
    pub close: usize,
}

/// A region of a function body during which a tracked lock guard is held:
/// from the acquiring call to the end of the innermost enclosing block, an
/// explicit `drop(<binding>)`, or the end of the statement for a guard
/// temporary.
#[derive(Debug, Clone)]
pub struct HoldRegion {
    /// Which lock the region holds.
    pub class: LockClass,
    /// Token index of the acquiring call's ident (`lock_core`/`lock_state`).
    pub acquire: usize,
    /// First token index of the region (the acquiring call itself).
    pub start: usize,
    /// One past the last token index of the region.
    pub end: usize,
}

// ---- shared token-walking helpers (also used by rules.rs) ----

/// 1-based line of the token at byte offset `pos`.
pub(crate) fn line_at(toks: &[Tok], pos: usize) -> usize {
    match toks.binary_search_by(|t| t.pos.cmp(&pos)) {
        Ok(k) => toks[k].line,
        Err(k) => toks.get(k.saturating_sub(1)).map_or(1, |t| t.line),
    }
}

/// First `{` at or after `from`, stopping at a `;` (a bodiless item).
pub(crate) fn body_open(toks: &[Tok], from: usize) -> Option<usize> {
    for (k, t) in toks.iter().enumerate().skip(from) {
        match t.text {
            "{" => return Some(k),
            ";" => return None,
            _ => {}
        }
    }
    None
}

/// Matching `}` for the `{` at token index `open`.
pub(crate) fn brace_match(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        match t.text {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

fn is_ident_tok(text: &str) -> bool {
    text.chars().next().is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Every named `fn` definition in the stream, nested fns included.
pub fn fn_defs(toks: &[Tok]) -> Vec<FnDef> {
    let mut defs = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text == "fn" {
            let name = toks.get(i + 1).map(|t| t.text).filter(|t| is_ident_tok(t));
            if let (Some(name), Some(open)) = (name, body_open(toks, i)) {
                if let Some(close) = brace_match(toks, open) {
                    defs.push(FnDef { name: name.to_string(), open, close: close + 1 });
                    i = open + 1; // descend so nested fns get their own defs
                    continue;
                }
            }
        }
        i += 1;
    }
    defs
}

/// Approximate call sites in `toks[start..end]`: an ident directly
/// followed by `(` that is not a definition (`fn name(`), a macro
/// (`name!(` never matches — the `!` separates them), or an excluded
/// pseudo-call. Returns `(token index, callee name)` pairs.
pub fn calls_in<'a>(toks: &[Tok<'a>], start: usize, end: usize) -> Vec<(usize, &'a str)> {
    let mut out = Vec::new();
    for i in start..end.min(toks.len()) {
        let t = toks[i].text;
        if !is_ident_tok(t) || CALL_EXCLUDED.contains(&t) {
            continue;
        }
        if toks.get(i + 1).map(|n| n.text) != Some("(") {
            continue;
        }
        if i > 0 && toks[i - 1].text == "fn" {
            continue;
        }
        out.push((i, t));
    }
    out
}

/// Token index (exclusive) of the end of the innermost `{ .. }` block
/// containing token `i` within the body `toks[open..close]`. Falls back to
/// `close` when `i` sits directly in the outermost body.
fn enclosing_block_end(toks: &[Tok], open: usize, close: usize, i: usize) -> usize {
    for &blk in enclosing_opens(toks, open, close, i).iter().rev() {
        if blk == open {
            continue; // the fn body itself; close already covers it
        }
        return brace_match(toks, blk).map(|c| c + 1).unwrap_or(close);
    }
    close
}

/// Open-brace token indices of every block enclosing token `i` within
/// `toks[open..close]`, outermost first (starting with `open` itself).
fn enclosing_opens(toks: &[Tok], open: usize, close: usize, i: usize) -> Vec<usize> {
    let mut stack = Vec::new();
    for (k, t) in toks.iter().enumerate().take(close.min(i + 1)).skip(open) {
        match t.text {
            "{" => stack.push(k),
            "}" => {
                stack.pop();
            }
            _ => {}
        }
    }
    stack
}

/// Lock-hold regions in the function body `toks[open..close]`: each call
/// to a sanctioned acquirer starts a region. A `let`-bound guard is held
/// to the end of the innermost enclosing block or to an explicit
/// `drop(<binding>)`; a guard temporary is held to the end of its
/// statement.
pub fn hold_regions(toks: &[Tok], open: usize, close: usize) -> Vec<HoldRegion> {
    let mut out = Vec::new();
    for (i, name) in calls_in(toks, open, close) {
        let class = if CORE_ACQUIRERS.contains(&name) {
            LockClass::Core
        } else if ARBITER_ACQUIRERS.contains(&name) {
            LockClass::Arbiter
        } else {
            continue;
        };
        let end = match binding_of(toks, open, i) {
            Some(binding) => {
                let block_end = enclosing_block_end(toks, open, close, i);
                explicit_drop(toks, i, block_end, binding).unwrap_or(block_end)
            }
            None => statement_end(toks, i, close),
        };
        out.push(HoldRegion { class, acquire: i, start: i, end });
    }
    out
}

/// The binding name when the call at token `i` is the right-hand side of
/// `let [mut] <name> = <receiver>.call(..)`; `None` for temporaries.
fn binding_of<'a>(toks: &[Tok<'a>], open: usize, i: usize) -> Option<&'a str> {
    let mut j = i;
    // Walk back over the receiver chain: idents, `.`, `::`, `&`.
    while j > open + 1 {
        let prev = toks[j - 1].text;
        if prev == "." || prev == ":" || prev == "&" || is_ident_tok(prev) {
            j -= 1;
            continue;
        }
        break;
    }
    if toks.get(j - 1).map(|t| t.text) != Some("=") {
        return None;
    }
    let mut k = j - 1; // the `=`
    if toks.get(k - 1).map(|t| t.text) == Some("=") {
        return None; // `==` comparison
    }
    let name = toks.get(k - 1).map(|t| t.text).filter(|t| is_ident_tok(t))?;
    k -= 1;
    if toks.get(k - 1).map(|t| t.text) == Some("mut") {
        k -= 1;
    }
    if toks.get(k - 1).map(|t| t.text) == Some("let") {
        Some(name)
    } else {
        None
    }
}

/// Token index one past an explicit `drop(<binding>)` between `from` and
/// `until`, if any.
fn explicit_drop(toks: &[Tok], from: usize, until: usize, binding: &str) -> Option<usize> {
    for k in from..until.min(toks.len()).saturating_sub(3) {
        if toks[k].text == "drop"
            && toks[k + 1].text == "("
            && toks[k + 2].text == binding
            && toks[k + 3].text == ")"
        {
            return Some(k + 4);
        }
    }
    None
}

/// One past the end of the statement containing the call at token `i`: the
/// first `;` at the call's own nesting depth, or the close of the
/// enclosing block, whichever comes first.
fn statement_end(toks: &[Tok], i: usize, close: usize) -> usize {
    let mut depth = 0isize;
    for (k, t) in toks.iter().enumerate().take(close.min(toks.len())).skip(i) {
        match t.text {
            "{" | "(" | "[" => depth += 1,
            "}" | ")" | "]" => {
                depth -= 1;
                if depth < 0 {
                    return k; // closing the enclosing block ends the statement
                }
            }
            ";" if depth == 0 => return k + 1,
            _ => {}
        }
    }
    close
}

/// Token indices of `Condvar::wait`-shaped calls: `<cv-ish>.wait(..)` /
/// `<cv-ish>.wait_timeout(..)` where the receiver ident names a condition
/// variable by convention (`cv`, `cond*`). The convention is what the
/// server and arbiter use; a condvar bound to another name simply is not
/// checked (lexical analysis cannot see types).
pub fn condvar_waits(toks: &[Tok]) -> Vec<usize> {
    let mut out = Vec::new();
    for i in 2..toks.len() {
        let t = toks[i].text;
        if (t == "wait" || t == "wait_timeout")
            && toks.get(i + 1).map(|n| n.text) == Some("(")
            && toks[i - 1].text == "."
        {
            let recv = toks[i - 2].text;
            if recv == "cv" || recv.starts_with("cv_") || recv.starts_with("cond") {
                out.push(i);
            }
        }
    }
    out
}

/// Whether the call at token `i` sits inside a `loop { .. }` or
/// `while .. { .. }` block within the body `toks[open..close]` — the
/// predicate-loop shape R12 requires around every `Condvar::wait`.
pub fn in_predicate_loop(toks: &[Tok], open: usize, close: usize, i: usize) -> bool {
    for &blk in enclosing_opens(toks, open, close, i).iter().rev() {
        if blk == 0 {
            continue;
        }
        if toks[blk - 1].text == "loop" {
            return true;
        }
        // Scan the block's header backwards to the previous statement
        // boundary; a `while` there makes this a predicate loop.
        let mut k = blk;
        while k > 0 {
            k -= 1;
            match toks[k].text {
                ";" | "{" | "}" => break,
                "while" => return true,
                _ => {}
            }
        }
    }
    false
}
