//! The repo-specific rules. Each rule is lexical, runs on the
//! [masked](crate::lexer::mask) source, and answers for one substrate
//! invariant (see DESIGN.md, "Enforced invariants").

use crate::callgraph::Analysis;
use crate::lexer::{self, Tok};
use crate::symbols::{self, body_open, brace_match, line_at, LockClass};

/// One finding, printed as `file:line: rule — message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Rule id (`R1`..`R15`).
    pub rule: &'static str,
    /// Human explanation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {} — {}", self.file, self.line, self.rule, self.message)
    }
}

/// The rule registry: `(id, title, summary)`. The DESIGN.md "Enforced
/// invariants" table is generated from this list (`--rules-table`), and a
/// drift test fails when the two disagree — keep summaries free of `|`.
pub const RULES: &[(&str, &str, &str)] = &[
    (
        "R1",
        "device confinement",
        "raw BlockDevice access appears only in the extmem device layer and the DiskBuilder \
         assembly site; everything else goes through Disk so no I/O bypasses the per-category \
         accounting the Section-4 lemmas are asserted against",
    ),
    (
        "R2",
        "no panics in the substrate",
        "no unwrap, expect, panic!, unreachable!, todo!, or unimplemented! in non-test extmem or \
         core code; every failure surfaces as ExtError or SortFailure, which is what makes the \
         fault-injection suite's recovery guarantees meaningful",
    ),
    (
        "R3",
        "counter parity",
        "every Counters field in stats.rs appears in reset, snapshot, since, and the IoSnapshot \
         Display impl, so a new counter cannot silently vanish from a reporting path the \
         experiments read",
    ),
    (
        "R4",
        "phase pair-restore",
        "a function that stamps set_phase(IoPhase::..) also restores a saved phase, so \
         deferred-write attribution survives nesting",
    ),
    (
        "R5",
        "no wildcard ExtError arms",
        "a match whose patterns name ExtError variants may not have a bare `_ =>` arm: adding an \
         error variant forces every classification site to decide explicitly",
    ),
    (
        "R6",
        "forbid(unsafe_code)",
        "#![forbid(unsafe_code)] is present in every crate root; the whole reproduction is safe \
         Rust",
    ),
    (
        "R7",
        "accounting confinement",
        "the IoStats counter mutators are called only from device.rs and stats.rs, so logical \
         I/O accounting cannot drift (pragma'd exceptions: the staging helpers that roll setup \
         cost out of measurements)",
    ),
    (
        "R8",
        "path-only dependencies",
        "every manifest dependency resolves inside the workspace (path = or workspace = true): \
         the build is offline and the crates/shim-* stand-ins are the only registry substitutes",
    ),
    (
        "R9",
        "barrier-before-commit",
        "a journal Commit record is appended only after an io_barrier in the same function body \
         (Journal::checkpoint is the sanctioned wrapper), guarding the crash-consistency \
         contract the crash_recovery sweep relies on",
    ),
    (
        "R10",
        "total is_transient classification",
        "every ExtError variant appears explicitly in ExtError::is_transient and the function \
         has no wildcard arm; is_transient is the oracle behind the retry policy and exit-code \
         mapping",
    ),
    (
        "R11",
        "lock acquisition order",
        "the arbiter lock (BudgetArbiter::lock_state) is never acquired, even transitively, \
         while the server core lock (Shared::lock_core) is held: the global order is arbiter \
         before core, so the two-lock server path cannot deadlock",
    ),
    (
        "R12",
        "no blocking while holding core",
        "no device I/O, thread::sleep, or socket read may run, even transitively, while the \
         server core lock is held, and every Condvar wait sits inside a predicate loop",
    ),
    (
        "R13",
        "concurrency confinement",
        "Mutex, Condvar, Arc, atomics, and thread spawns appear only in the sanctioned sites \
         (crates/server, arbiter.rs, locksan.rs); the Rc/Cell sorting substrate stays provably \
         single-threaded",
    ),
    (
        "R14",
        "no guard across barriers",
        "arbiter and core lock guards are never held across io_barrier, checkpoint, or \
         cache_flush, even transitively: critical sections stay memory-only and never couple to \
         device flushing",
    ),
    (
        "R15",
        "audited poison recovery",
        "mutex-poisoning recovery (unwrap_or_else into_inner) lives only in locksan.rs's \
         recover_poison helper, which counts every recovery into server stats instead of \
         silently swallowing the panic",
    ),
];

/// Files allowed to name `BlockDevice`: the device layer itself, plus its
/// one sanctioned assembly site (`DiskBuilder`). Front ends (cli, server,
/// bench) must go through the builder, not name devices directly.
const R1_ALLOW: &[&str] = &[
    "crates/extmem/src/device.rs",
    "crates/extmem/src/fault.rs",
    "crates/extmem/src/sched.rs",
    "crates/extmem/src/pool.rs",
    "crates/extmem/src/lib.rs",
    "crates/extmem/src/build.rs",
];

/// Files allowed to call the raw counter mutators.
const R7_ALLOW: &[&str] = &["crates/extmem/src/device.rs", "crates/extmem/src/stats.rs"];

/// The counter mutators R7 confines.
const R7_MUTATORS: &[&str] = &[
    "add_reads",
    "add_writes",
    "sub_reads",
    "sub_writes",
    "add_phys_reads",
    "add_phys_writes",
    "sub_phys_reads",
    "sub_phys_writes",
    "add_retries",
    "add_backoff",
    "add_cache_event",
    "add_sched_event",
];

/// Panicking constructs R2 bans in non-test substrate/sorter code.
const R2_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
const R2_METHODS: &[&str] = &["unwrap", "expect"];

fn is_crate_root(rel: &str) -> bool {
    let parts: Vec<&str> = rel.split('/').collect();
    parts.len() == 4
        && parts[0] == "crates"
        && parts[2] == "src"
        && (parts[3] == "lib.rs" || parts[3] == "main.rs")
}

/// Lint one Rust source file in isolation: the cross-file rules (R11–R14)
/// see only this file's call graph. `rel` is the workspace-relative path,
/// which selects each rule's scope.
pub fn check_rust_file(rel: &str, src: &str) -> Vec<Finding> {
    let m = lexer::mask(src);
    let toks = lexer::tokens(&m.code);
    let analysis = Analysis::of_tokens(&toks, &m);
    check_masked(rel, &m, &toks, &analysis)
}

/// Lint a set of sources as one workspace: the call graph is built over
/// all of them first, so R11–R14 see cross-file (and cross-crate)
/// reachability. Findings come back sorted by (file, line, rule).
pub fn check_sources(files: &[(&str, &str)]) -> Vec<Finding> {
    let prepared: Vec<(&str, lexer::Masked)> =
        files.iter().map(|&(rel, src)| (rel, lexer::mask(src))).collect();
    let mut graph = crate::callgraph::CallGraph::new();
    let toks: Vec<Vec<Tok>> = prepared.iter().map(|(_, m)| lexer::tokens(&m.code)).collect();
    for ((_, m), t) in prepared.iter().zip(&toks) {
        graph.add_file(t, m);
    }
    let analysis = Analysis::build(graph);
    let mut findings = Vec::new();
    for ((rel, m), t) in prepared.iter().zip(&toks) {
        findings.extend(check_masked(rel, m, t, &analysis));
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings
}

/// The per-file rule pass over an already-masked source, with the
/// workspace [`Analysis`] supplied by the caller. Suppressed findings are
/// filtered here.
pub fn check_masked(
    rel: &str,
    m: &lexer::Masked,
    toks: &[Tok],
    analysis: &Analysis,
) -> Vec<Finding> {
    let mut out = Vec::new();

    let in_tests_dir = rel.starts_with("tests/") || rel.contains("/tests/");
    let non_test = |pos: usize| !in_tests_dir && !m.in_test(pos);

    rule_r1(rel, toks, &non_test, &mut out);
    rule_r2(rel, toks, &non_test, &mut out);
    rule_r4(rel, toks, &non_test, &mut out);
    rule_r5(rel, toks, &non_test, &mut out);
    rule_r7(rel, toks, &non_test, &mut out);
    rule_r9(rel, toks, &non_test, &mut out);
    rule_r11(rel, toks, analysis, &non_test, &mut out);
    rule_r12(rel, toks, analysis, &non_test, &mut out);
    rule_r13(rel, toks, &non_test, &mut out);
    rule_r14(rel, toks, analysis, &non_test, &mut out);
    rule_r15(rel, toks, &non_test, &mut out);
    if is_crate_root(rel) {
        rule_r6(rel, &m.code, &mut out);
    }
    if rel == "crates/extmem/src/stats.rs" {
        rule_r3(rel, toks, &mut out);
    }
    if rel == "crates/extmem/src/error.rs" {
        rule_r10(rel, toks, &mut out);
    }

    let mut findings: Vec<Finding> =
        out.into_iter().filter(|f| !m.allowed(f.line, f.rule)).collect();
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

fn push(out: &mut Vec<Finding>, rel: &str, code_pos_line: usize, rule: &'static str, msg: String) {
    out.push(Finding { file: rel.to_string(), line: code_pos_line, rule, message: msg });
}

/// R1: the `BlockDevice` trait (raw, unaccounted I/O) stays inside the
/// device layer; everything else goes through `Disk`.
fn rule_r1(rel: &str, toks: &[Tok], non_test: &dyn Fn(usize) -> bool, out: &mut Vec<Finding>) {
    if R1_ALLOW.contains(&rel) {
        return;
    }
    for t in toks {
        if t.text == "BlockDevice" && non_test(t.pos) {
            push(
                out,
                rel,
                line_at(toks, t.pos),
                "R1",
                "raw BlockDevice access outside the extmem device layer; go through Disk"
                    .to_string(),
            );
        }
    }
}

/// R2: the substrate (`extmem`) and the sorter (`core`) report failures as
/// `ExtError`/`SortFailure`; they never panic in non-test code.
fn rule_r2(rel: &str, toks: &[Tok], non_test: &dyn Fn(usize) -> bool, out: &mut Vec<Finding>) {
    if !(rel.starts_with("crates/extmem/src/") || rel.starts_with("crates/core/src/")) {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if !non_test(t.pos) {
            continue;
        }
        let next = toks.get(i + 1).map(|n| n.text);
        if R2_MACROS.contains(&t.text) && next == Some("!") {
            push(
                out,
                rel,
                line_at(toks, t.pos),
                "R2",
                format!("`{}!` in non-test code; return ExtError/SortFailure instead", t.text),
            );
        }
        if R2_METHODS.contains(&t.text) && next == Some("(") && i > 0 && toks[i - 1].text == "." {
            push(
                out,
                rel,
                line_at(toks, t.pos),
                "R2",
                format!("`.{}()` in non-test code; return ExtError/SortFailure instead", t.text),
            );
        }
    }
}

/// R3: every `Counters` field is wired through `reset`, `snapshot`, `since`,
/// and the `IoSnapshot` `Display` impl — counter parity, so a new counter
/// cannot silently vanish from one of the reporting paths.
fn rule_r3(rel: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    let Some(fields_span) = struct_span(toks, "Counters") else {
        push(out, rel, 1, "R3", "struct Counters not found".to_string());
        return;
    };
    // Field names: `ident :` pairs at depth 1 of the struct body.
    let mut fields: Vec<(&str, usize)> = Vec::new();
    let mut depth = 0usize;
    for i in fields_span.0..fields_span.1 {
        match toks[i].text {
            "{" | "[" | "(" => depth += 1,
            "}" | "]" | ")" => depth = depth.saturating_sub(1),
            _ => {
                if depth == 1
                    && toks.get(i + 1).map(|t| t.text) == Some(":")
                    && toks[i].text.chars().next().is_some_and(|c| c.is_ascii_lowercase())
                {
                    fields.push((toks[i].text, toks[i].pos));
                }
            }
        }
    }
    let paths: Vec<(&str, Option<(usize, usize)>)> = vec![
        ("fn reset", fn_span(toks, "reset")),
        ("fn snapshot", fn_span(toks, "snapshot")),
        ("fn since", fn_span(toks, "since")),
        ("Display for IoSnapshot", display_span(toks, "IoSnapshot")),
    ];
    for (field, pos) in fields {
        for (what, span) in &paths {
            let present =
                span.is_some_and(|(s, e)| toks[s..e].iter().any(|t| t.text.contains(field)));
            if !present {
                push(
                    out,
                    rel,
                    line_at(toks, pos),
                    "R3",
                    format!("counter `{field}` does not appear in {what}"),
                );
            }
        }
    }
}

/// R4: a function that stamps a literal phase (`set_phase(IoPhase::..)`)
/// must also restore a saved one (`set_phase(<ident>)`) — the pair-restore
/// idiom that keeps failure attribution correct across nesting.
fn rule_r4(rel: &str, toks: &[Tok], non_test: &dyn Fn(usize) -> bool, out: &mut Vec<Finding>) {
    for (start, end) in fn_spans(toks) {
        let body = &toks[start..end];
        let mut first_stamp: Option<usize> = None;
        let mut restored = false;
        for (i, t) in body.iter().enumerate() {
            if t.text != "set_phase" || body.get(i + 1).map(|n| n.text) != Some("(") {
                continue;
            }
            let arg = body.get(i + 2).map(|n| n.text).unwrap_or("");
            if arg == "IoPhase" {
                if first_stamp.is_none() && non_test(t.pos) {
                    first_stamp = Some(t.pos);
                }
            } else if body.get(i + 3).map(|n| n.text) == Some(")")
                && arg.chars().next().is_some_and(|c| c.is_ascii_lowercase())
            {
                restored = true;
            }
        }
        if let Some(pos) = first_stamp {
            if !restored {
                push(
                    out,
                    rel,
                    line_at(toks, pos),
                    "R4",
                    "set_phase(IoPhase::..) stamped but no saved phase is restored in this \
                     function"
                        .to_string(),
                );
            }
        }
    }
}

/// R5: a `match` whose arms name `ExtError::` variants may not have a
/// wildcard `_ =>` arm — new error variants must be classified explicitly.
fn rule_r5(rel: &str, toks: &[Tok], non_test: &dyn Fn(usize) -> bool, out: &mut Vec<Finding>) {
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text == "match" {
            if let Some(open) = toks[i..].iter().position(|t| t.text == "{").map(|p| p + i) {
                if let Some(close) = brace_match(toks, open) {
                    check_match_arms(rel, toks, open, close, non_test, out);
                }
            }
        }
        i += 1;
    }
}

fn check_match_arms(
    rel: &str,
    toks: &[Tok],
    open: usize,
    close: usize,
    non_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Finding>,
) {
    // Pattern regions: from an arm's start to its top-level `=>`.
    let mut depth = 0usize;
    let mut arm_start = open + 1;
    let mut names_exterror = false;
    let mut wildcard_at: Option<usize> = None;
    let mut k = open;
    while k < close {
        match toks[k].text {
            "{" | "[" | "(" => depth += 1,
            "}" | "]" | ")" => depth = depth.saturating_sub(1),
            "=" if depth == 1 && toks.get(k + 1).map(|t| t.text) == Some(">") => {
                let pat = &toks[arm_start..k];
                if pat.iter().any(|t| t.text == "ExtError") {
                    names_exterror = true;
                }
                if pat.len() == 1 && pat[0].text == "_" {
                    wildcard_at = Some(pat[0].pos);
                }
                // Skip to the end of the arm body: a `,` at depth 1 or a
                // braced body's closing `}`.
                k += 2;
                let mut bdepth = 0usize;
                while k < close {
                    match toks[k].text {
                        "{" | "[" | "(" => bdepth += 1,
                        "}" | "]" | ")" => {
                            if bdepth == 0 {
                                break;
                            }
                            bdepth -= 1;
                            if bdepth == 0 && toks[k].text == "}" {
                                k += 1;
                                break;
                            }
                        }
                        "," if bdepth == 0 => {
                            k += 1;
                            break;
                        }
                        _ => {}
                    }
                    k += 1;
                }
                arm_start = k;
                continue;
            }
            _ => {}
        }
        k += 1;
    }
    if names_exterror {
        if let Some(pos) = wildcard_at {
            if non_test(pos) {
                push(
                    out,
                    rel,
                    line_at(toks, pos),
                    "R5",
                    "wildcard `_ =>` arm in a match over ExtError; list the variants".to_string(),
                );
            }
        }
    }
}

/// R6: every crate root opts out of `unsafe` for good.
fn rule_r6(rel: &str, code: &str, out: &mut Vec<Finding>) {
    let has = code
        .split_whitespace()
        .collect::<Vec<_>>()
        .join(" ")
        .replace(' ', "")
        .contains("#![forbid(unsafe_code)]");
    if !has {
        push(out, rel, 1, "R6", "crate root is missing #![forbid(unsafe_code)]".to_string());
    }
}

/// R7: only the accounting layer mutates the counters, so logical I/O
/// accounting cannot drift.
fn rule_r7(rel: &str, toks: &[Tok], non_test: &dyn Fn(usize) -> bool, out: &mut Vec<Finding>) {
    if R7_ALLOW.contains(&rel) {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if R7_MUTATORS.contains(&t.text)
            && toks.get(i + 1).map(|n| n.text) == Some("(")
            && non_test(t.pos)
        {
            push(
                out,
                rel,
                line_at(toks, t.pos),
                "R7",
                format!("counter mutator `{}` called outside the device/stats layer", t.text),
            );
        }
    }
}

/// R9: a journal `Commit` record asserts that every data write it covers is
/// already durable, so appending one is only sound after an I/O barrier:
/// each `.append_commit()` call must be preceded by `io_barrier` in the
/// same function body ([`Journal::checkpoint`] is the sanctioned wrapper).
///
/// [`Journal::checkpoint`]: ../nexsort_extmem/struct.Journal.html#method.checkpoint
fn rule_r9(rel: &str, toks: &[Tok], non_test: &dyn Fn(usize) -> bool, out: &mut Vec<Finding>) {
    let spans = fn_spans(toks);
    for (i, t) in toks.iter().enumerate() {
        if t.text != "append_commit"
            || toks.get(i + 1).map(|n| n.text) != Some("(")
            || i == 0
            || toks[i - 1].text != "."
            || !non_test(t.pos)
        {
            continue;
        }
        // The innermost fn body containing the call; a call outside any fn
        // (e.g. a const initialiser) has no barrier to find and fires.
        let span =
            spans.iter().filter(|&&(s, e)| s <= i && i < e).min_by_key(|&&(s, e)| e - s).copied();
        let guarded = span.is_some_and(|(s, _)| toks[s..i].iter().any(|t| t.text == "io_barrier"));
        if !guarded {
            push(
                out,
                rel,
                line_at(toks, t.pos),
                "R9",
                "journal commit appended without a preceding io_barrier() in this function; \
                 go through Journal::checkpoint"
                    .to_string(),
            );
        }
    }
}

/// R10: `ExtError::is_transient` is the oracle behind the retry policy and
/// the CLI's exit-code mapping, so its classification must be *total*:
/// every `ExtError` variant appears in the function by name, and no
/// wildcard `_ =>` arm swallows future variants. A binding arm
/// (`other => ...`) passes R5 but still hides any variant it absorbs, so
/// the per-variant presence check convicts it too. Runs only on the real
/// `crates/extmem/src/error.rs`.
fn rule_r10(rel: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    let Some((open, close)) = enum_span(toks, "ExtError") else {
        push(out, rel, 1, "R10", "enum ExtError not found".to_string());
        return;
    };
    // Variant names: uppercase idents at depth 1 of the enum body (field
    // types and attribute contents sit at depth >= 2).
    let mut variants: Vec<(&str, usize)> = Vec::new();
    let mut depth = 0usize;
    for tok in &toks[open..close] {
        match tok.text {
            "{" | "[" | "(" => depth += 1,
            "}" | "]" | ")" => depth = depth.saturating_sub(1),
            t => {
                if depth == 1 && t.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                    variants.push((t, tok.pos));
                }
            }
        }
    }
    let Some((s, e)) = fn_span(toks, "is_transient") else {
        push(out, rel, 1, "R10", "fn is_transient not found".to_string());
        return;
    };
    let body = &toks[s..e];
    for (variant, pos) in variants {
        if !body.iter().any(|t| t.text == variant) {
            push(
                out,
                rel,
                line_at(toks, pos),
                "R10",
                format!("ExtError variant `{variant}` is not classified in is_transient"),
            );
        }
    }
    for (k, t) in body.iter().enumerate() {
        if t.text == "_"
            && body.get(k + 1).map(|n| n.text) == Some("=")
            && body.get(k + 2).map(|n| n.text) == Some(">")
        {
            push(
                out,
                rel,
                line_at(toks, t.pos),
                "R10",
                "wildcard `_ =>` arm in is_transient; classify every variant explicitly"
                    .to_string(),
            );
        }
    }
}

/// Files sanctioned to use cross-thread primitives (R13): the server
/// crate (the one threaded component), the arbiter it leases frames
/// from, and the lock sanitizer's own instrumentation.
const R13_ALLOW_PREFIX: &str = "crates/server/src/";
const R13_ALLOW: &[&str] = &["crates/extmem/src/arbiter.rs", "crates/extmem/src/locksan.rs"];

/// Cross-thread primitives R13 confines (plus any `Atomic*`-prefixed
/// ident and `spawn`).
const R13_TOKENS: &[&str] =
    &["Mutex", "RwLock", "Condvar", "Arc", "TrackedMutex", "TrackedCondvar", "spawn"];

/// The one audited poisoning-recovery site R15 permits.
const R15_ALLOW: &[&str] = &["crates/extmem/src/locksan.rs"];

/// Call names the hold-region rules (R11/R12/R14) never flag: a condvar
/// wait under the lock is the one sanctioned block — the guard is released
/// while the thread is parked, so nothing is actually held across whatever
/// the merged `wait` name may reach. R12 separately checks every wait for
/// the predicate-loop shape.
const WAIT_CALLS: &[&str] = &["wait", "wait_timeout"];

/// Hold regions of `class` across every function body in the file.
fn regions_of(toks: &[Tok], class: LockClass) -> Vec<symbols::HoldRegion> {
    let mut all = Vec::new();
    for (open, close) in fn_spans(toks) {
        all.extend(
            symbols::hold_regions(toks, open, close).into_iter().filter(|r| r.class == class),
        );
    }
    all
}

/// Calls inside `region` excluding the acquiring call itself.
fn region_calls<'a>(toks: &[Tok<'a>], region: &symbols::HoldRegion) -> Vec<(usize, &'a str)> {
    symbols::calls_in(toks, region.start, region.end)
        .into_iter()
        .filter(|&(i, _)| i != region.acquire)
        .collect()
}

/// R11: the global lock order is arbiter before core. While the server
/// core lock is held, nothing may acquire the arbiter lock — directly or
/// through any function whose may-acquire set reaches `lock_state`.
fn rule_r11(
    rel: &str,
    toks: &[Tok],
    analysis: &Analysis,
    non_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Finding>,
) {
    for region in regions_of(toks, LockClass::Core) {
        for (i, callee) in region_calls(toks, &region) {
            if analysis.may_arbiter.contains(callee)
                && !WAIT_CALLS.contains(&callee)
                && non_test(toks[i].pos)
            {
                push(
                    out,
                    rel,
                    line_at(toks, toks[i].pos),
                    "R11",
                    format!(
                        "`{callee}` may acquire {} while {} is held; the global lock order \
                         is arbiter before core",
                        LockClass::Arbiter.describe(),
                        LockClass::Core.describe()
                    ),
                );
            }
        }
    }
}

/// R12: no blocking call while holding the server core lock, and every
/// `Condvar::wait` sits in a predicate loop.
fn rule_r12(
    rel: &str,
    toks: &[Tok],
    analysis: &Analysis,
    non_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Finding>,
) {
    for region in regions_of(toks, LockClass::Core) {
        for (i, callee) in region_calls(toks, &region) {
            if analysis.may_block.contains(callee)
                && !WAIT_CALLS.contains(&callee)
                && non_test(toks[i].pos)
            {
                push(
                    out,
                    rel,
                    line_at(toks, toks[i].pos),
                    "R12",
                    format!(
                        "`{callee}` may block (sleep, device or socket I/O) while {} is held",
                        LockClass::Core.describe()
                    ),
                );
            }
        }
    }
    let spans = fn_spans(toks);
    for i in symbols::condvar_waits(toks) {
        if !non_test(toks[i].pos) {
            continue;
        }
        let span =
            spans.iter().filter(|&&(s, e)| s <= i && i < e).min_by_key(|&&(s, e)| e - s).copied();
        let looped = span.is_some_and(|(s, e)| symbols::in_predicate_loop(toks, s, e, i));
        if !looped {
            push(
                out,
                rel,
                line_at(toks, toks[i].pos),
                "R12",
                "Condvar::wait outside a predicate loop; spurious wakeups make the awaited \
                 condition unreliable without `while !cond { .. }`"
                    .to_string(),
            );
        }
    }
}

/// R13: cross-thread primitives stay confined to the sanctioned
/// concurrency sites, keeping the Rc/Cell sorting substrate provably
/// single-threaded ahead of in-sort parallelism.
fn rule_r13(rel: &str, toks: &[Tok], non_test: &dyn Fn(usize) -> bool, out: &mut Vec<Finding>) {
    if rel.starts_with(R13_ALLOW_PREFIX) || R13_ALLOW.contains(&rel) {
        return;
    }
    for t in toks {
        if (R13_TOKENS.contains(&t.text) || t.text.starts_with("Atomic")) && non_test(t.pos) {
            push(
                out,
                rel,
                line_at(toks, t.pos),
                "R13",
                format!(
                    "cross-thread primitive `{}` outside the sanctioned concurrency sites \
                     (crates/server, arbiter.rs, locksan.rs)",
                    t.text
                ),
            );
        }
    }
}

/// R14: no lock guard (arbiter or core) held across a durability barrier.
fn rule_r14(
    rel: &str,
    toks: &[Tok],
    analysis: &Analysis,
    non_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Finding>,
) {
    for class in [LockClass::Arbiter, LockClass::Core] {
        for region in regions_of(toks, class) {
            for (i, callee) in region_calls(toks, &region) {
                if analysis.may_barrier.contains(callee)
                    && !WAIT_CALLS.contains(&callee)
                    && non_test(toks[i].pos)
                {
                    push(
                        out,
                        rel,
                        line_at(toks, toks[i].pos),
                        "R14",
                        format!(
                            "`{callee}` may reach a durability barrier (io_barrier/checkpoint/\
                             cache_flush) while {} is held",
                            class.describe()
                        ),
                    );
                }
            }
        }
    }
}

/// R15: the `unwrap_or_else(..into_inner())` poisoning-recovery pattern is
/// allowed only inside the audited `locksan::recover_poison` helper, which
/// counts recoveries instead of silently swallowing them.
fn rule_r15(rel: &str, toks: &[Tok], non_test: &dyn Fn(usize) -> bool, out: &mut Vec<Finding>) {
    if R15_ALLOW.contains(&rel) {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if t.text != "unwrap_or_else" || !non_test(t.pos) {
            continue;
        }
        let window = &toks[i + 1..toks.len().min(i + 14)];
        if window.iter().any(|n| n.text == "into_inner") {
            push(
                out,
                rel,
                line_at(toks, t.pos),
                "R15",
                "mutex-poisoning recovery outside the audited helper; route the lock through \
                 locksan::recover_poison (or TrackedMutex) so recoveries are counted"
                    .to_string(),
            );
        }
    }
}

/// R8: every dependency in a manifest must resolve inside the workspace
/// (`path = ...` or `workspace = true`): the build environment is offline.
pub fn check_manifest(rel: &str, src: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut in_deps = false;
    let mut allow_prev = false;
    for (idx, raw) in src.lines().enumerate() {
        let line = raw.trim();
        let allow_here = raw.contains("xlint::allow(R8)");
        if line.starts_with('[') {
            let section = line.trim_matches(['[', ']']);
            in_deps = section.ends_with("dependencies");
            allow_prev = allow_here;
            continue;
        }
        if in_deps
            && !line.is_empty()
            && !line.starts_with('#')
            && line.contains('=')
            && !line.contains("path")
            && !line.contains("workspace = true")
            && !line.contains("workspace=true")
            && !allow_here
            && !allow_prev
        {
            out.push(Finding {
                file: rel.to_string(),
                line: idx + 1,
                rule: "R8",
                message: "dependency does not resolve by path inside the workspace (offline \
                          build)"
                    .to_string(),
            });
        }
        allow_prev = allow_here;
    }
    out
}

// ---- token-walking helpers (line_at/body_open/brace_match live in symbols.rs) ----

/// Token span (exclusive) of `struct <name> { ... }`.
fn struct_span(toks: &[Tok], name: &str) -> Option<(usize, usize)> {
    for i in 0..toks.len().saturating_sub(1) {
        if toks[i].text == "struct" && toks[i + 1].text == name {
            let open = body_open(toks, i)?;
            let close = brace_match(toks, open)?;
            return Some((open, close + 1));
        }
    }
    None
}

/// Token span (exclusive) of `enum <name> { ... }`.
fn enum_span(toks: &[Tok], name: &str) -> Option<(usize, usize)> {
    for i in 0..toks.len().saturating_sub(1) {
        if toks[i].text == "enum" && toks[i + 1].text == name {
            let open = body_open(toks, i)?;
            let close = brace_match(toks, open)?;
            return Some((open, close + 1));
        }
    }
    None
}

/// Token span of the body of `fn <name>`.
fn fn_span(toks: &[Tok], name: &str) -> Option<(usize, usize)> {
    for i in 0..toks.len().saturating_sub(1) {
        if toks[i].text == "fn" && toks[i + 1].text == name {
            let open = body_open(toks, i)?;
            let close = brace_match(toks, open)?;
            return Some((open, close + 1));
        }
    }
    None
}

/// Token spans of every `fn` body in the file. Nested fns get their own
/// spans (overlapping with the enclosing one); closures are checked as
/// part of their enclosing span.
fn fn_spans(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut spans: Vec<(usize, usize)> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text == "fn" {
            if let Some(open) = body_open(toks, i) {
                if let Some(close) = brace_match(toks, open) {
                    spans.push((open, close + 1));
                    i = open + 1; // descend: nested fns get their own span too
                    continue;
                }
            }
        }
        i += 1;
    }
    spans
}

/// Token span of `impl ... Display for <name> { ... }`.
fn display_span(toks: &[Tok], name: &str) -> Option<(usize, usize)> {
    for i in 0..toks.len() {
        if toks[i].text == "impl" {
            // Look ahead a few tokens for `Display for <name>`.
            let window = &toks[i..toks.len().min(i + 8)];
            let mut saw_display = false;
            let mut saw_name = false;
            for (j, t) in window.iter().enumerate() {
                if t.text == "Display" {
                    saw_display = true;
                }
                if saw_display && t.text == "for" && window.get(j + 1).map(|n| n.text) == Some(name)
                {
                    saw_name = true;
                }
            }
            if saw_display && saw_name {
                let open = toks[i..].iter().position(|t| t.text == "{")? + i;
                let close = brace_match(toks, open)?;
                return Some((open, close + 1));
            }
        }
    }
    None
}
