//! CLI entry point:
//! `cargo run -p xlint -- [--deny] [--root DIR] [--list-rules] [--rules-table] [--json]`.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut list = false;
    let mut table = false;
    let mut json = false;
    // Default to the workspace root this binary was built in, so the tool
    // works no matter where `cargo run -p xlint` is invoked from.
    let mut root = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--deny" => deny = true,
            "--list-rules" => list = true,
            "--rules-table" => table = true,
            "--json" => json = true,
            "--root" => {
                let Some(dir) = args.next() else {
                    eprintln!("xlint: --root needs a directory");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(dir);
            }
            other => {
                eprintln!("xlint: unknown argument `{other}`");
                eprintln!(
                    "usage: xlint [--deny] [--root DIR] [--list-rules] [--rules-table] [--json]"
                );
                return ExitCode::from(2);
            }
        }
    }

    if list {
        for (id, title, summary) in xlint::RULES {
            println!("{id}  {title} — {summary}");
        }
        return ExitCode::SUCCESS;
    }
    if table {
        // The exact markdown rows DESIGN.md's "Enforced invariants" table
        // carries; the design_drift test fails when they diverge.
        println!("| Rule | Invariant it guards |");
        println!("|------|---------------------|");
        for (id, title, summary) in xlint::RULES {
            println!("| **{id}** {title} | {summary} |");
        }
        return ExitCode::SUCCESS;
    }

    match xlint::check_workspace(&root) {
        Ok(findings) => {
            if json {
                println!("{}", findings_json(&findings));
            } else {
                for f in &findings {
                    println!("{f}");
                }
            }
            if findings.is_empty() {
                eprintln!("xlint: clean");
                ExitCode::SUCCESS
            } else {
                eprintln!("xlint: {} finding(s)", findings.len());
                if deny {
                    ExitCode::FAILURE
                } else {
                    ExitCode::SUCCESS
                }
            }
        }
        Err(e) => {
            eprintln!("xlint: {e}");
            ExitCode::from(2)
        }
    }
}

/// Machine-readable findings: a JSON array of
/// `{"file", "line", "rule", "message"}` objects (hand-rolled — the build
/// is offline, no serde).
fn findings_json(findings: &[xlint::Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&f.file),
            f.line,
            f.rule,
            json_escape(&f.message)
        ));
    }
    out.push_str(if findings.is_empty() { "]" } else { "\n]" });
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
