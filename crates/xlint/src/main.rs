//! CLI entry point: `cargo run -p xlint -- [--deny] [--root DIR] [--list-rules]`.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut list = false;
    // Default to the workspace root this binary was built in, so the tool
    // works no matter where `cargo run -p xlint` is invoked from.
    let mut root = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--deny" => deny = true,
            "--list-rules" => list = true,
            "--root" => {
                let Some(dir) = args.next() else {
                    eprintln!("xlint: --root needs a directory");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(dir);
            }
            other => {
                eprintln!("xlint: unknown argument `{other}`");
                eprintln!("usage: xlint [--deny] [--root DIR] [--list-rules]");
                return ExitCode::from(2);
            }
        }
    }

    if list {
        for (id, what) in xlint::RULES {
            println!("{id}  {what}");
        }
        return ExitCode::SUCCESS;
    }

    match xlint::check_workspace(&root) {
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            if findings.is_empty() {
                eprintln!("xlint: clean");
                ExitCode::SUCCESS
            } else {
                eprintln!("xlint: {} finding(s)", findings.len());
                if deny {
                    ExitCode::FAILURE
                } else {
                    ExitCode::SUCCESS
                }
            }
        }
        Err(e) => {
            eprintln!("xlint: {e}");
            ExitCode::from(2)
        }
    }
}
